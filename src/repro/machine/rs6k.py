"""The IBM RISC System/6000 instance of the parametric model (Section 2.1).

* three unit types (fixed point, floating point, branch), one unit of each;
* most instructions execute in one cycle; multiply/divide are multi-cycle;
* four delay classes: delayed load (1), fixed compare -> branch (3),
  float op -> use (1), float compare -> branch (5).
"""

from __future__ import annotations

from ..ir.opcodes import Opcode, UnitType
from .model import DelayModel, MachineModel


def rs6k() -> MachineModel:
    """A fresh RS/6K machine description."""
    return MachineModel(
        name="rs6k",
        units={UnitType.FXU: 1, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(
            load_use=1,
            fixed_compare_branch=3,
            float_op_use=1,
            float_compare_branch=5,
        ),
        exec_times={
            Opcode.MUL: 5,
            Opcode.DIV: 19,
            Opcode.REM: 19,
            Opcode.FD: 17,
        },
    )


#: A shared default instance for read-only use.
RS6K = rs6k()
