"""The parametric machine description (Section 2 of the paper).

A superscalar machine is "a collection of functional units of ``m`` types,
where the machine has ``n_1, n_2, ..., n_m`` units of each type".  Each
instruction executes on any unit of its type, takes an integral number of
cycles, and pipeline constraints are modelled as integer *delays* on data
dependence edges: if ``I1`` (execution time ``t``) starts at cycle ``k`` and
the edge ``(I1, I2)`` carries delay ``d``, then ``I2`` should start no
earlier than ``k + t + d``.  Starting earlier is *legal* (hardware
interlocks stall at run time) but wasteful -- which is exactly what the
scheduler minimises and what the cycle simulator charges for.

The delay structure is parametric (``DelayModel``); the RS/6K instance in
:mod:`repro.machine.rs6k` uses the paper's four delay classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode, UnitType
from ..ir.operand import Reg, RegClass

#: An extension hook: returns a delay in cycles, or None to defer to the
#: built-in rules.  Receives (producer, consumer, register).
DelayRule = Callable[[Instruction, Instruction, Reg], "int | None"]


@dataclass(frozen=True)
class DelayModel:
    """Per-edge pipeline delays, in cycles (Section 2.1's four classes)."""

    #: delayed load: load -> use of the loaded register
    load_use: int = 1
    #: fixed point compare -> the branch testing its condition register
    fixed_compare_branch: int = 3
    #: floating point operation -> use of its result
    float_op_use: int = 1
    #: floating point compare -> the branch testing its condition register
    float_compare_branch: int = 5


@dataclass
class MachineModel:
    """A concrete machine: unit counts, execution times, delays."""

    name: str
    #: number of units of each type (the paper's ``n_1 .. n_m``)
    units: dict[UnitType, int]
    delays: DelayModel = field(default_factory=DelayModel)
    #: per-opcode execution-time overrides (else ``Opcode.info.cycles``)
    exec_times: dict[Opcode, int] = field(default_factory=dict)
    #: extension rules consulted before the built-in delay classes
    extra_delay_rules: list[DelayRule] = field(default_factory=list)
    #: optional cap on total instructions issued per cycle regardless of
    #: unit availability (None = limited only by the unit counts); lets a
    #: single-issue pipelined RISC be expressed with the same unit mix
    issue_width: int | None = None

    def __post_init__(self) -> None:
        for unit, count in self.units.items():
            if count < 0:
                raise ValueError(f"{self.name}: negative unit count for {unit}")

    # -- unit structure ------------------------------------------------------

    @property
    def unit_types(self) -> list[UnitType]:
        return [u for u, n in self.units.items() if n > 0]

    def unit_count(self, unit: UnitType) -> int:
        return self.units.get(unit, 0)

    @property
    def total_issue_width(self) -> int:
        """Maximum instructions issued per cycle across all units."""
        width = sum(self.units.values())
        if self.issue_width is not None:
            width = min(width, self.issue_width)
        return width

    # -- timing ---------------------------------------------------------------

    def exec_time(self, ins: Instruction) -> int:
        """Execution time of ``ins`` in cycles (the paper's ``E(I)``)."""
        return self.exec_times.get(ins.opcode, ins.opcode.info.cycles)

    def flow_delay(self, producer: Instruction, consumer: Instruction,
                   reg: Reg) -> int:
        """Delay on the flow-dependence edge producer --reg--> consumer.

        Only definition-to-use edges carry potentially non-zero delays
        (Section 4.2); anti- and output-dependence edges always carry zero
        and never reach this function.
        """
        for rule in self.extra_delay_rules:
            result = rule(producer, consumer, reg)
            if result is not None:
                return result
        d = self.delays
        op = producer.opcode
        # Delayed load: only the *loaded* register is late; the updated
        # base register of LU/STU is computed early by the fixed point unit.
        if op.is_load and producer.defs and reg == producer.defs[0]:
            return d.load_use
        if op.is_compare and reg.rclass is RegClass.CR:
            if op.unit is UnitType.FPU:
                return d.float_compare_branch
            return d.fixed_compare_branch
        if op.unit is UnitType.FPU and not op.is_compare and not op.is_load:
            return d.float_op_use
        return 0

    def result_latency(self, ins: Instruction, reg: Reg) -> int:
        """Cycles from issue of ``ins`` until ``reg`` is consumable:
        execution time plus the producer-side flow delay.  Used by the
        cycle simulator, which models the hardware interlocks."""
        return self.exec_time(ins) + self.flow_delay(ins, ins, reg)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}x{u.name}" for u, n in self.units.items() if n)
        return f"<MachineModel {self.name}: {parts}>"
