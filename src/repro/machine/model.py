"""The parametric machine description (Section 2 of the paper).

A superscalar machine is "a collection of functional units of ``m`` types,
where the machine has ``n_1, n_2, ..., n_m`` units of each type".  Each
instruction executes on any unit of its type, takes an integral number of
cycles, and pipeline constraints are modelled as integer *delays* on data
dependence edges: if ``I1`` (execution time ``t``) starts at cycle ``k`` and
the edge ``(I1, I2)`` carries delay ``d``, then ``I2`` should start no
earlier than ``k + t + d``.  Starting earlier is *legal* (hardware
interlocks stall at run time) but wasteful -- which is exactly what the
scheduler minimises and what the cycle simulator charges for.

The delay structure is parametric (``DelayModel``); the RS/6K instance in
:mod:`repro.machine.rs6k` uses the paper's four delay classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode, UnitType
from ..ir.operand import Reg, RegClass

#: An extension hook: returns a delay in cycles, or None to defer to the
#: built-in rules.  Receives (producer, consumer, register).
DelayRule = Callable[[Instruction, Instruction, Reg], "int | None"]


class MachineValidationError(ValueError):
    """A malformed machine description, rejected at construction time.

    Before this existed, a zero unit count or a negative delay surfaced
    only much later as a deep scheduler or simulator error; now every
    config is checked the moment it is built.
    """


def _is_int(value, minimum: int) -> bool:
    """A genuine int (bools are not counts) no smaller than ``minimum``."""
    return (isinstance(value, int) and not isinstance(value, bool)
            and value >= minimum)


@dataclass(frozen=True)
class DelayModel:
    """Per-edge pipeline delays, in cycles (Section 2.1's four classes)."""

    #: delayed load: load -> use of the loaded register
    load_use: int = 1
    #: fixed point compare -> the branch testing its condition register
    fixed_compare_branch: int = 3
    #: floating point operation -> use of its result
    float_op_use: int = 1
    #: floating point compare -> the branch testing its condition register
    float_compare_branch: int = 5

    def __post_init__(self) -> None:
        for name in ("load_use", "fixed_compare_branch", "float_op_use",
                     "float_compare_branch"):
            value = getattr(self, name)
            if not _is_int(value, 0):
                raise MachineValidationError(
                    f"delay {name} must be a non-negative integer, "
                    f"got {value!r}")


@dataclass(frozen=True)
class Cluster:
    """One issue cluster of a clustered-FU machine.

    Clustered machines partition their functional units into clusters
    with a private issue port: in one cycle a cluster may start at most
    ``issue_width`` instructions, only on its own units.  The clusters of
    a :class:`MachineModel` must partition its ``units`` exactly, so the
    flat unit counts (what the scheduler's capacity heuristics see) stay
    truthful; the per-cluster caps are a *timing* refinement charged by
    the cycle simulator.
    """

    name: str
    #: units owned by this cluster (a slice of the machine's ``units``)
    units: tuple[tuple[UnitType, int], ...]
    #: instructions this cluster may start per cycle
    issue_width: int

    def unit_count(self, unit: UnitType) -> int:
        for u, n in self.units:
            if u is unit:
                return n
        return 0


def cluster(name: str, units: dict[UnitType, int],
            issue_width: int) -> Cluster:
    """Build a :class:`Cluster` from a plain units dict."""
    return Cluster(name=name, units=tuple(units.items()),
                   issue_width=issue_width)


@dataclass(frozen=True)
class BufferModel:
    """Exposed-datapath result buffers (after Dahlem et al.).

    On an exposed-datapath machine a result lives in its functional
    unit's output buffer until a consumer reads it (bypassing the
    register file) or the unit's background writeback port retires it.
    ``capacities`` bounds the produced-but-not-yet-consumed results per
    unit type.  A consuming read frees the producer's slot for free;
    so does evicting a *stale* result (older than ``free_after`` cycles
    -- the idle writeback port has long since retired it).  What costs is
    starting a producer when the buffer is full of still-hot results: the
    forced drain of a hot result models the explicit move the compiler
    would have had to schedule, charged as ``drain_penalty`` extra cycles
    on the new producer's issue.  Schedules that consume results promptly
    and spread unit pressure (exactly what good global scheduling
    produces) pay fewer drains.
    """

    #: max outstanding unconsumed results per unit type
    capacities: tuple[tuple[UnitType, int], ...]
    #: issue-delay cycles charged per forced drain of a still-hot result
    drain_penalty: int = 2
    #: results older than this many cycles have been retired by the
    #: background writeback port: evicting them is free
    free_after: int = 4

    def capacity(self, unit: UnitType) -> "int | None":
        for u, n in self.capacities:
            if u is unit:
                return n
        return None


def buffers(capacities: dict[UnitType, int], drain_penalty: int = 2,
            free_after: int = 4) -> BufferModel:
    """Build a :class:`BufferModel` from a plain capacities dict."""
    return BufferModel(capacities=tuple(capacities.items()),
                       drain_penalty=drain_penalty, free_after=free_after)


@dataclass
class MachineModel:
    """A concrete machine: unit counts, execution times, delays."""

    name: str
    #: number of units of each type (the paper's ``n_1 .. n_m``)
    units: dict[UnitType, int]
    delays: DelayModel = field(default_factory=DelayModel)
    #: per-opcode execution-time overrides (else ``Opcode.info.cycles``)
    exec_times: dict[Opcode, int] = field(default_factory=dict)
    #: extension rules consulted before the built-in delay classes
    extra_delay_rules: list[DelayRule] = field(default_factory=list)
    #: optional cap on total instructions issued per cycle regardless of
    #: unit availability (None = limited only by the unit counts); lets a
    #: single-issue pipelined RISC be expressed with the same unit mix
    issue_width: int | None = None
    #: optional clustered-FU structure: clusters partition ``units`` and
    #: each adds a per-cycle issue cap over its own units
    clusters: tuple[Cluster, ...] | None = None
    #: optional exposed-datapath result buffers (Dahlem et al.)
    buffers: BufferModel | None = None

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        fail = MachineValidationError
        if not self.units:
            raise fail(f"{self.name}: machine has no functional units")
        for unit, count in self.units.items():
            if not isinstance(unit, UnitType):
                raise fail(f"{self.name}: unit key {unit!r} is not a "
                           f"UnitType")
            if not _is_int(count, 1):
                raise fail(f"{self.name}: unit count for {unit.name} must "
                           f"be a positive integer, got {count!r}")
        # delay values validate themselves in DelayModel.__post_init__
        if not isinstance(self.delays, DelayModel):
            raise fail(f"{self.name}: delays must be a DelayModel, "
                       f"got {self.delays!r}")
        for opcode, cycles in self.exec_times.items():
            if not _is_int(cycles, 1):
                raise fail(f"{self.name}: execution time for "
                           f"{getattr(opcode, 'name', opcode)!r} must be a "
                           f"positive integer, got {cycles!r}")
        if self.issue_width is not None and not _is_int(self.issue_width, 1):
            raise fail(f"{self.name}: issue_width must be a positive "
                       f"integer or None, got {self.issue_width!r}")
        if self.clusters is not None:
            self._validate_clusters()
        if self.buffers is not None:
            self._validate_buffers()

    def _validate_clusters(self) -> None:
        fail = MachineValidationError
        if not self.clusters:
            raise fail(f"{self.name}: clusters must be a non-empty "
                       f"sequence or None")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise fail(f"{self.name}: duplicate cluster names {names}")
        summed: dict[UnitType, int] = {}
        for c in self.clusters:
            if not _is_int(c.issue_width, 1):
                raise fail(f"{self.name}: cluster {c.name!r} issue_width "
                           f"must be a positive integer, "
                           f"got {c.issue_width!r}")
            if not c.units:
                raise fail(f"{self.name}: cluster {c.name!r} owns no units")
            for unit, count in c.units:
                if not _is_int(count, 1):
                    raise fail(f"{self.name}: cluster {c.name!r} count for "
                               f"{unit.name} must be a positive integer, "
                               f"got {count!r}")
                summed[unit] = summed.get(unit, 0) + count
        if summed != dict(self.units):
            raise fail(f"{self.name}: clusters must partition the machine "
                       f"units exactly (clusters sum to "
                       f"{ {u.name: n for u, n in summed.items()} }, "
                       f"machine has "
                       f"{ {u.name: n for u, n in self.units.items()} })")

    def _validate_buffers(self) -> None:
        fail = MachineValidationError
        if not isinstance(self.buffers, BufferModel):
            raise fail(f"{self.name}: buffers must be a BufferModel, "
                       f"got {self.buffers!r}")
        for unit, capacity in self.buffers.capacities:
            if not _is_int(capacity, 1):
                raise fail(f"{self.name}: buffer capacity for {unit.name} "
                           f"must be a positive integer, got {capacity!r}")
            if self.units.get(unit, 0) < 1:
                raise fail(f"{self.name}: buffer capacity given for "
                           f"{unit.name}, but the machine has no such unit")
        if not _is_int(self.buffers.drain_penalty, 0):
            raise fail(f"{self.name}: drain_penalty must be a non-negative "
                       f"integer, got {self.buffers.drain_penalty!r}")
        if not _is_int(self.buffers.free_after, 0):
            raise fail(f"{self.name}: free_after must be a non-negative "
                       f"integer, got {self.buffers.free_after!r}")

    # -- unit structure ------------------------------------------------------

    @property
    def unit_types(self) -> list[UnitType]:
        return [u for u, n in self.units.items() if n > 0]

    def unit_count(self, unit: UnitType) -> int:
        return self.units.get(unit, 0)

    @property
    def total_issue_width(self) -> int:
        """Maximum instructions issued per cycle across all units."""
        width = sum(self.units.values())
        if self.issue_width is not None:
            width = min(width, self.issue_width)
        return width

    # -- timing ---------------------------------------------------------------

    def exec_time(self, ins: Instruction) -> int:
        """Execution time of ``ins`` in cycles (the paper's ``E(I)``)."""
        return self.exec_times.get(ins.opcode, ins.opcode.info.cycles)

    def flow_delay(self, producer: Instruction, consumer: Instruction,
                   reg: Reg) -> int:
        """Delay on the flow-dependence edge producer --reg--> consumer.

        Only definition-to-use edges carry potentially non-zero delays
        (Section 4.2); anti- and output-dependence edges always carry zero
        and never reach this function.
        """
        for rule in self.extra_delay_rules:
            result = rule(producer, consumer, reg)
            if result is not None:
                return result
        d = self.delays
        op = producer.opcode
        # Delayed load: only the *loaded* register is late; the updated
        # base register of LU/STU is computed early by the fixed point unit.
        if op.is_load and producer.defs and reg == producer.defs[0]:
            return d.load_use
        if op.is_compare and reg.rclass is RegClass.CR:
            if op.unit is UnitType.FPU:
                return d.float_compare_branch
            return d.fixed_compare_branch
        if op.unit is UnitType.FPU and not op.is_compare and not op.is_load:
            return d.float_op_use
        return 0

    def result_latency(self, ins: Instruction, reg: Reg) -> int:
        """Cycles from issue of ``ins`` until ``reg`` is consumable:
        execution time plus the producer-side flow delay.  Used by the
        cycle simulator, which models the hardware interlocks."""
        return self.exec_time(ins) + self.flow_delay(ins, ins, reg)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}x{u.name}" for u, n in self.units.items() if n)
        return f"<MachineModel {self.name}: {parts}>"
