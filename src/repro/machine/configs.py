"""A family of machine configurations spanning the paper's design space.

Section 1 positions the framework as "based on the parametric description of
the machine architecture, which spans a range of superscalar and VLIW
machines", and Section 6 predicts "even bigger payoffs in machines with a
larger number of computational units".  These configurations back the
issue-width ablation bench and the design-space example.
"""

from __future__ import annotations

from ..ir.opcodes import Opcode, UnitType
from .model import DelayModel, MachineModel, buffers, cluster
from .rs6k import rs6k

#: RS/6K-style multi-cycle integer ops, shared by the whole family.
_EXEC_TIMES = {Opcode.MUL: 5, Opcode.DIV: 19, Opcode.REM: 19}


def scalar_pipelined() -> MachineModel:
    """A single-issue pipelined RISC: at most one instruction per cycle.

    The unit mix is the RS/6K one, but ``issue_width=1`` makes branches
    contend with computation for the single issue slot.  Delays are the
    RS/6K ones, so this isolates the value of multi-issue itself.
    """
    return MachineModel(
        name="scalar",
        units={UnitType.FXU: 1, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(),
        exec_times={Opcode.MUL: 5, Opcode.DIV: 19, Opcode.REM: 19},
        issue_width=1,
    )


def superscalar(width: int, name: str | None = None) -> MachineModel:
    """``width`` fixed point units + 1 FPU + 1 BRU, RS/6K delays.

    ``ss1 -> ss2 -> ss4 -> ss8`` is the zoo's monotone-width ladder: each
    rung strictly grows the fixed point capacity and the total issue
    width while delays stay fixed, so for any fixed instruction trace the
    simulator can only get faster rung over rung (the property the
    width-monotonicity suite pins for whole scheduled programs).
    """
    return MachineModel(
        name=name or f"ss{width}",
        units={UnitType.FXU: width, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(),
        exec_times=dict(_EXEC_TIMES),
    )


def clustered(name: str = "clus2x2") -> MachineModel:
    """A two-cluster machine with per-cluster issue constraints.

    Four fixed point units split 2+2 across two clusters, each cluster
    capped at two issues per cycle; the FPU and BRU live in cluster
    ``c0``, so branches and floating point contend with half the integer
    capacity.  The flat unit counts match ss4, making the cost of the
    clustered issue restriction directly measurable in the scorecard.
    """
    return MachineModel(
        name=name,
        units={UnitType.FXU: 4, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(),
        exec_times=dict(_EXEC_TIMES),
        clusters=(
            cluster("c0", {UnitType.FXU: 2, UnitType.FPU: 1,
                           UnitType.BRU: 1}, issue_width=2),
            cluster("c1", {UnitType.FXU: 2}, issue_width=2),
        ),
    )


def exposed_datapath(name: str = "xdp") -> MachineModel:
    """An exposed-datapath/buffered-unit machine after Dahlem et al.

    Two fixed point units whose results park in a three-entry output
    buffer (the FPU gets two entries) until a consumer reads them; when a
    buffer is full the oldest result is force-drained to the register
    file at a two-cycle issue penalty on the new producer.  Schedules
    that consume results promptly -- what global scheduling produces --
    pay fewer drains, so the machine rewards exactly the motions the
    paper's Section 6 predicts pay off on richer datapaths.
    """
    return MachineModel(
        name=name,
        units={UnitType.FXU: 2, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(),
        exec_times=dict(_EXEC_TIMES),
        buffers=buffers({UnitType.FXU: 3, UnitType.FPU: 2},
                        drain_penalty=2),
    )


def vliw_like(width: int = 8) -> MachineModel:
    """A wide machine in the VLIW spirit: many units of every type."""
    return MachineModel(
        name=f"vliw{width}",
        units={UnitType.FXU: width, UnitType.FPU: width // 2 or 1,
               UnitType.BRU: 2},
        delays=DelayModel(),
        exec_times={Opcode.MUL: 5, Opcode.DIV: 19, Opcode.REM: 19},
    )


def ideal_no_delays(width: int = 4) -> MachineModel:
    """A machine with no pipeline delays -- an upper-bound comparator."""
    return MachineModel(
        name=f"ideal{width}",
        units={UnitType.FXU: width, UnitType.FPU: width, UnitType.BRU: width},
        delays=DelayModel(load_use=0, fixed_compare_branch=0,
                          float_op_use=0, float_compare_branch=0),
    )


#: Name -> factory, for CLI-ish selection in benches and examples.
CONFIGS = {
    "rs6k": rs6k,
    "scalar": scalar_pipelined,
    "ss1": lambda: superscalar(1),
    "ss2": lambda: superscalar(2),
    "ss4": lambda: superscalar(4),
    "ss8": lambda: superscalar(8),
    "clus2x2": clustered,
    "xdp": exposed_datapath,
    "vliw8": vliw_like,
    "ideal4": ideal_no_delays,
}

#: The machine zoo in scorecard column order: the paper's RS/6000 first,
#: then the monotone-width ladder, then the structured shapes.
ZOO = ("rs6k", "scalar", "ss1", "ss2", "ss4", "ss8",
       "clus2x2", "xdp", "vliw8", "ideal4")
