"""A family of machine configurations spanning the paper's design space.

Section 1 positions the framework as "based on the parametric description of
the machine architecture, which spans a range of superscalar and VLIW
machines", and Section 6 predicts "even bigger payoffs in machines with a
larger number of computational units".  These configurations back the
issue-width ablation bench and the design-space example.
"""

from __future__ import annotations

from ..ir.opcodes import Opcode, UnitType
from .model import DelayModel, MachineModel
from .rs6k import rs6k


def scalar_pipelined() -> MachineModel:
    """A single-issue pipelined RISC: at most one instruction per cycle.

    The unit mix is the RS/6K one, but ``issue_width=1`` makes branches
    contend with computation for the single issue slot.  Delays are the
    RS/6K ones, so this isolates the value of multi-issue itself.
    """
    return MachineModel(
        name="scalar",
        units={UnitType.FXU: 1, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(),
        exec_times={Opcode.MUL: 5, Opcode.DIV: 19, Opcode.REM: 19},
        issue_width=1,
    )


def superscalar(width: int, name: str | None = None) -> MachineModel:
    """``width`` fixed point units + 1 FPU + 1 BRU, RS/6K delays."""
    return MachineModel(
        name=name or f"ss{width}",
        units={UnitType.FXU: width, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(),
        exec_times={Opcode.MUL: 5, Opcode.DIV: 19, Opcode.REM: 19},
    )


def vliw_like(width: int = 8) -> MachineModel:
    """A wide machine in the VLIW spirit: many units of every type."""
    return MachineModel(
        name=f"vliw{width}",
        units={UnitType.FXU: width, UnitType.FPU: width // 2 or 1,
               UnitType.BRU: 2},
        delays=DelayModel(),
        exec_times={Opcode.MUL: 5, Opcode.DIV: 19, Opcode.REM: 19},
    )


def ideal_no_delays(width: int = 4) -> MachineModel:
    """A machine with no pipeline delays -- an upper-bound comparator."""
    return MachineModel(
        name=f"ideal{width}",
        units={UnitType.FXU: width, UnitType.FPU: width, UnitType.BRU: width},
        delays=DelayModel(load_use=0, fixed_compare_branch=0,
                          float_op_use=0, float_compare_branch=0),
    )


#: Name -> factory, for CLI-ish selection in benches and examples.
CONFIGS = {
    "rs6k": rs6k,
    "scalar": scalar_pipelined,
    "ss2": lambda: superscalar(2),
    "ss4": lambda: superscalar(4),
    "vliw8": vliw_like,
    "ideal4": ideal_no_delays,
}
