"""Parametric machine descriptions (Section 2) and concrete instances."""

from .configs import (
    CONFIGS,
    ZOO,
    clustered,
    exposed_datapath,
    ideal_no_delays,
    scalar_pipelined,
    superscalar,
    vliw_like,
)
from .model import (
    BufferModel,
    Cluster,
    DelayModel,
    DelayRule,
    MachineModel,
    MachineValidationError,
    buffers,
    cluster,
)
from .rs6k import RS6K, rs6k

__all__ = [
    "BufferModel",
    "CONFIGS",
    "Cluster",
    "DelayModel",
    "DelayRule",
    "MachineModel",
    "MachineValidationError",
    "RS6K",
    "ZOO",
    "buffers",
    "cluster",
    "clustered",
    "exposed_datapath",
    "ideal_no_delays",
    "rs6k",
    "scalar_pipelined",
    "superscalar",
    "vliw_like",
]
