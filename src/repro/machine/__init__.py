"""Parametric machine descriptions (Section 2) and concrete instances."""

from .configs import CONFIGS, ideal_no_delays, scalar_pipelined, superscalar, vliw_like
from .model import DelayModel, DelayRule, MachineModel
from .rs6k import RS6K, rs6k

__all__ = [
    "CONFIGS",
    "DelayModel",
    "DelayRule",
    "MachineModel",
    "RS6K",
    "ideal_no_delays",
    "rs6k",
    "scalar_pipelined",
    "superscalar",
    "vliw_like",
]
