"""Reference (seed) implementations for the scheduling layer.

Companion to :mod:`repro.pdg.reference`, same contract: the code here is
the *behavioural baseline* for the event-driven scheduler inner loop, kept
byte-for-byte equivalent in observable output (schedules, motions, traces)
and deliberately scan-driven in cost.

* :func:`schedule_block_scan` -- the original Section 5.1 block pass: every
  inner iteration of every cycle rescans **all** pending candidates
  (readiness, earliest start, live-on-exit veto) and re-sorts the ready
  list.  ``schedule_region`` dispatches here when a custom ``priority_fn``
  is in play (ablation benches produce dynamic keys the event queue cannot
  precompute) or when the scan engine is forced via
  ``REPRO_SCHED_ENGINE=scan`` / :func:`scan_scheduler`.

* :class:`LiveOnExitTrackerReference` -- the seed liveness tracker whose
  ``record_motion`` runs two full ``reachable_from`` traversals per motion
  (the optimized tracker intersects precomputed reachability bitsets).

``pdg.reference.seed_pipeline()`` patches both in (plus
``DependenceStateReference``) so the perf suite measures the full seed
inner loop; ``tests/sched/test_event_scan_equivalence.py`` proves the two
engines produce identical assembly, motions and decision traces.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..ir.instruction import Instruction
from ..ir.opcodes import UnitType
from ..obs.events import CycleAdvance, MotionRecorded, SpeculationRenamed
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..pdg.pdg import RegionPDG
from .candidates import (
    Candidate,
    candidate_blocks,
    collect_candidates,
    collect_duplication_candidates,
)
from .ready import DependenceState
from .speculation import LiveOnExitTracker, try_rename_for_motion


@contextmanager
def scan_scheduler():
    """Force the preserved scan-driven block pass for the dynamic extent.

    The equivalence suite and the CI fuzz-smoke reference arm use this to
    run the whole pipeline on the seed inner loop without touching the
    environment.
    """
    from . import global_sched

    saved = global_sched._ENGINE
    global_sched._ENGINE = "scan"
    try:
        yield
    finally:
        global_sched._ENGINE = saved


@contextmanager
def reference_scheduler():
    """The full seed scheduler arm: scan-driven block pass *and* the
    traversal-based liveness tracker, for the dynamic extent.  This is
    the scheduler slice of ``pdg.reference.seed_pipeline()`` -- the
    microbench and equivalence tests use it when they want the seed
    inner loop without the reference DDG / uncached-analyses patches."""
    from . import driver

    with scan_scheduler():
        saved = driver.LiveOnExitTracker
        driver.LiveOnExitTracker = LiveOnExitTrackerReference
        try:
            yield
        finally:
            driver.LiveOnExitTracker = saved


class LiveOnExitTrackerReference(LiveOnExitTracker):
    """Seed live-on-exit tracker: per-motion graph traversals.

    ``record_motion`` re-walks the forward graph from the motion target and
    the reverse graph from the source on *every* motion, exactly as the
    original tracker did before reachability was precomputed as bitsets.
    """

    def __init__(self, live_out, forward, metrics=NULL_METRICS,
                 intern_cache=None):
        # intern_cache is accepted for interface compatibility with the
        # optimized tracker and ignored: the reference re-walks per motion
        super().__init__(live_out, forward)
        self._reverse = forward.reversed()

    def blocks_motion(self, ins: Instruction, target: str) -> bool:
        """Seed Section 5.3 veto: a set-membership loop per query (the
        optimized tracker answers from interned register bitmasks)."""
        live = self._live_out.get(target, set())
        return any(reg in live for reg in ins.reg_defs())

    def record_motion(self, ins: Instruction, src: str, dst: str) -> None:
        defs = ins.reg_defs()
        if not defs:
            return
        downstream = self._forward.reachable_from(dst)
        upstream = self._reverse.reachable_from(src)
        between = (downstream & upstream) - {src}
        between.add(dst)
        for label in between:
            live = self._live_out.setdefault(label, set())
            live.update(defs)


def schedule_block_scan(
    pdg: RegionPDG,
    label: str,
    level,
    live_tracker: LiveOnExitTracker,
    state: DependenceState,
    priorities: dict[int, tuple[int, int]],
    max_speculation: int,
    rename_on_demand: bool,
    carry_cycles: int | None,
    report,
    priority_fn,
    allow_duplication: bool,
    block_filter=None,
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
) -> None:
    """One block pass of Section 5.1, scan-driven (the seed inner loop)."""
    from .global_sched import (
        _DUP_FILL_WINDOW,
        _MAX_STALL,
        Motion,
        _note_block_entry,
        _place_duplicates,
        _trace_issue,
    )
    from ..obs.events import BlockEnd, UnitOccupancy

    func = pdg.func
    block = func.block(label)
    state.begin_block(carry_cycles=carry_cycles)

    equiv, speculative = candidate_blocks(pdg, label, level,
                                          max_speculation=max_speculation,
                                          block_filter=block_filter)
    pending: dict[int, Candidate] = {
        id(c.ins): c
        for c in collect_candidates(pdg, label, equiv, speculative)
    }
    if allow_duplication:
        for cand in collect_duplication_candidates(pdg, label):
            pending.setdefault(id(cand.ins), cand)
    if tracer.enabled or metrics.enabled:
        _note_block_entry(tracer, metrics, label, carry_cycles,
                          equiv, speculative, pending)
    #: ids of instructions whose live-on-exit veto was already reported
    #: this pass (the readiness scan re-evaluates them every cycle)
    vetoes_logged: set[int] = set()
    terminator = block.terminator
    own_remaining = {id(ins) for ins in block.instrs}
    issued_order: list[Instruction] = []
    machine = pdg.machine

    fill_budget = _DUP_FILL_WINDOW if any(
        c.duplicate_into for c in pending.values()) else 0

    def dup_fill_wanted(at_cycle: int) -> bool:
        if fill_budget <= 0:
            return False
        return any(
            c.duplicate_into
            and state.deps_satisfied(c.ins)
            and state.earliest_start(c.ins) <= at_cycle + 1
            for c in pending.values()
        )

    def sort_key(c: Candidate):
        # duplication is the costliest class: it ranks after useful
        # and speculative candidates (the paper's conservative order)
        return (1 if c.duplicate_into else 0,
                priority_fn(c.ins, useful=c.useful, priorities=priorities))

    cycle = 0
    stall = 0
    done = not own_remaining
    while not done:
        free = {unit: machine.unit_count(unit) for unit in UnitType}
        budget = machine.total_issue_width
        issued_this_cycle = False
        issued_count = 0
        cycle_traced = False
        hold_for_dup = dup_fill_wanted(cycle)

        progress = True
        while progress and budget > 0:
            progress = False
            ready = _ready_candidates(
                pending, state, cycle, terminator, own_remaining,
                live_tracker, label, pdg, rename_on_demand,
                hold_terminator=hold_for_dup,
                tracer=tracer, metrics=metrics, vetoes_logged=vetoes_logged,
            )
            ready.sort(key=sort_key)
            if not cycle_traced and (tracer.enabled or metrics.enabled):
                # the first readiness scan of the cycle is the pressure
                # snapshot: later scans see candidates unlocked mid-cycle
                cycle_traced = True
                if tracer.enabled:
                    tracer.emit(CycleAdvance(label=label, cycle=cycle,
                                             ready=len(ready)))
                if metrics.enabled:
                    metrics.observe("sched.ready", len(ready))
            for pos, cand in enumerate(ready):
                unit = cand.ins.unit
                if free.get(unit, 0) <= 0:
                    continue
                # issue!
                free[unit] -= 1
                budget -= 1
                state.mark_issued(cand.ins, cycle)
                issued_order.append(cand.ins)
                del pending[id(cand.ins)]
                own_remaining.discard(id(cand.ins))
                issued_this_cycle = True
                issued_count += 1
                progress = True
                if tracer.enabled:
                    _trace_issue(tracer, label, cycle, cand, machine, ready,
                                 pos, sort_key)
                if cand.home != label:
                    is_spec = not cand.useful and not cand.duplicate_into
                    report.motions.append(Motion(
                        cand.ins.uid, cand.ins.opcode.mnemonic,
                        cand.home, label, is_spec,
                        duplicated_into=cand.duplicate_into or (),
                    ))
                    if tracer.enabled:
                        tracer.emit(MotionRecorded(
                            uid=cand.ins.uid,
                            opcode=cand.ins.opcode.mnemonic,
                            src=cand.home, dst=label, speculative=is_spec,
                            duplicated_into=cand.duplicate_into or ()))
                    if metrics.enabled:
                        metrics.inc(
                            "sched.motions.speculative" if is_spec
                            else "sched.motions.duplicated"
                            if cand.duplicate_into else "sched.motions.useful")
                    func.block(cand.home).remove(cand.ins)
                    if cand.duplicate_into:
                        _place_duplicates(pdg, state, cand, report)
                    # Any upward motion extends the moved definition's live
                    # range down to its old home; record it so later
                    # speculative legality checks see fresh liveness.
                    live_tracker.record_motion(cand.ins, cand.home, label)
                if cand.ins is terminator:
                    done = True
                break  # re-evaluate readiness (0-weight edges) and priorities
            if (not own_remaining and terminator is None
                    and not dup_fill_wanted(cycle)):
                done = True
                break
            if done:
                break

        if tracer.enabled and issued_count:
            used = {
                unit.value: machine.unit_count(unit) - free.get(unit, 0)
                for unit in UnitType
                if machine.unit_count(unit) - free.get(unit, 0) > 0
            }
            tracer.emit(UnitOccupancy(label=label, cycle=cycle, used=used,
                                      issued=issued_count))
        if done:
            report.block_cycles[label] = cycle + 1
            break
        if not own_remaining or own_remaining == {id(terminator)}:
            fill_budget -= 1  # this cycle was borrowed for duplication
        stall = 0 if issued_this_cycle else stall + 1
        if stall > _MAX_STALL:
            stuck = sorted(f"I{pending[i].ins.uid}"
                           for i in own_remaining)
            raise RuntimeError(
                f"scheduler stalled in block {label}: remaining own "
                f"instructions {stuck} never became ready"
            )
        cycle += 1

    block.instrs = issued_order
    if tracer.enabled:
        tracer.emit(BlockEnd(label=label,
                             cycles=report.block_cycles.get(label, 0)))
    if metrics.enabled:
        metrics.inc("sched.blocks")


def _ready_candidates(
    pending: dict[int, Candidate],
    state: DependenceState,
    cycle: int,
    terminator: Instruction | None,
    own_remaining: set[int],
    live_tracker: LiveOnExitTracker,
    label: str,
    pdg: RegionPDG,
    rename_on_demand: bool,
    hold_terminator: bool = False,
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
    vetoes_logged: set[int] | None = None,
) -> list[Candidate]:
    """Candidates issuable at ``cycle``.

    The terminator is held back until it is the only own instruction left
    (branches close their block; their original order is preserved), and
    additionally while ``hold_terminator`` keeps the block open for an
    imminent duplicated motion.  Speculative candidates must pass the
    live-on-exit test *now* -- the sets grow as motions happen, so this is
    re-checked at issue time; a candidate blocked only by that test may
    get its definition renamed (Section 4.2's SSA-like renaming) when its
    def-use web is block-local.
    """
    from .global_sched import _note_veto

    ready: list[Candidate] = []
    for cand in pending.values():
        ins = cand.ins
        if terminator is not None and ins is terminator:
            if own_remaining != {id(ins)} or hold_terminator:
                continue
        elif ins.is_branch:
            continue  # foreign branches never move
        if not state.deps_satisfied(ins):
            continue
        if state.earliest_start(ins) > cycle:
            continue
        if (not cand.useful and not cand.duplicate_into
                and live_tracker.blocks_motion(ins, label)):
            # duplication needs no liveness test: every path into the
            # join still executes (a copy of) the definition
            if not rename_on_demand:
                _note_veto(tracer, metrics, vetoes_logged, live_tracker,
                           cand, label)
                continue
            observing = tracer.enabled or metrics.enabled
            regs = (live_tracker.blocking_regs(ins, label)
                    if observing else ())
            renamed = try_rename_for_motion(
                ins, pdg.func.block(cand.home), label, live_tracker,
                pdg.ddg, pdg.func, pdg.machine,
            )
            if not renamed:
                _note_veto(tracer, metrics, vetoes_logged, live_tracker,
                           cand, label, regs=regs)
                continue
            # the rename mutated the instruction, so this branch cannot
            # re-trigger: one event per successful rename
            if observing:
                if tracer.enabled:
                    tracer.emit(SpeculationRenamed(
                        label=label, uid=ins.uid,
                        opcode=ins.opcode.mnemonic, home=cand.home,
                        regs=tuple(str(r) for r in regs)))
                if metrics.enabled:
                    metrics.inc("sched.speculation.renamed")
        ready.append(cand)
    return ready


def schedule_block_reference(block, machine) -> int:
    """The seed basic-block list scheduler, verbatim: every inner
    iteration of every cycle rescans all pending instructions and re-sorts
    the ready list.  ``repro.sched.bb_sched.schedule_block`` re-hosted the
    pass on the dense substrate (CSR DDG, packed int keys, incremental
    readiness); this copy is the equivalence oracle and the measured
    baseline of the ``analysis``/``compile`` perf sections.

    ``DependenceState`` is resolved through the :mod:`~repro.sched.bb_sched`
    module at call time, so ``seed_pipeline()``'s state patch composes.
    """
    from ..pdg.data_deps import build_block_ddg
    from . import bb_sched
    from .heuristics import local_priorities

    if not block.instrs:
        return 0
    if len(block.instrs) == 1:
        return machine.exec_time(block.instrs[0])

    ddg = build_block_ddg(block, machine)
    priorities = local_priorities(block, ddg, machine)
    state = bb_sched.DependenceState(ddg, machine)
    state.begin_block()
    position = {id(ins): i for i, ins in enumerate(block.instrs)}

    def sort_key(ins):
        d, cp = priorities.get(id(ins), (0, 0))
        return (-d, -cp, position[id(ins)])

    terminator = block.terminator
    remaining = {id(ins) for ins in block.instrs}
    issued: list[Instruction] = []

    cycle = 0
    stall = 0
    while remaining:
        free = {unit: machine.unit_count(unit) for unit in UnitType}
        budget = machine.total_issue_width
        progress = True
        issued_this_cycle = False
        while progress and budget > 0:
            progress = False
            ready = []
            for ins in block.instrs:
                if id(ins) not in remaining:
                    continue
                if ins is terminator and remaining != {id(ins)}:
                    continue
                if not state.deps_satisfied(ins):
                    continue
                if state.earliest_start(ins) > cycle:
                    continue
                ready.append(ins)
            ready.sort(key=sort_key)
            for ins in ready:
                if free.get(ins.unit, 0) <= 0:
                    continue
                free[ins.unit] -= 1
                budget -= 1
                state.mark_issued(ins, cycle)
                issued.append(ins)
                remaining.discard(id(ins))
                progress = True
                issued_this_cycle = True
                break
        if not remaining:
            break
        stall = 0 if issued_this_cycle else stall + 1
        if stall > bb_sched._MAX_STALL:
            raise RuntimeError(
                f"basic-block scheduler stalled in {block.label}")
        cycle += 1

    block.instrs = issued
    return cycle + 1
