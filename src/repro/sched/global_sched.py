"""The global scheduling top-level process (Section 5.1).

Blocks of a region are visited in topological order.  For each block ``A``:

1. the candidate blocks ``C(A)`` are derived from the CSPDG (equivalent
   blocks for useful motion; immediate CSPDG successors for 1-branch
   speculative motion),
2. candidate instructions are collected (calls never move globally, stores
   never move speculatively, branches never move),
3. instructions are issued cycle by cycle against the parametric machine
   description: each cycle, ready candidates (all dependence predecessors
   fulfilled, earliest start reached) are issued into free functional-unit
   slots in the priority order of Section 5.2,
4. a speculative candidate is additionally required not to define any
   register live on exit from ``A``, with liveness updated dynamically
   after each speculative motion (Section 5.3),
5. ``A``'s terminator issues last, closing the block; foreign instructions
   that were issued are physically moved into ``A``.

The result: "the instructions in A are reordered and there might be
instructions external to A that are physically moved into A."

Step 3's inner loop is **event-driven** and runs on **struct-of-arrays
storage** (:mod:`repro.sched.soa`): the region's instructions are interned
to dense ints, dependence counters and earliest starts live in flat
``array('i')`` tables over a CSR snapshot of the DDG, and candidates enter
per-unit ready heaps exactly once -- when their last dependence
predecessor fulfills -- keyed by priority tuples *packed into single
ints* at collection time, with future earliest starts absorbed by a
timing wheel and speculative candidates re-judged only when a motion
actually grew a live-on-exit set their definitions appear in.  The seed's
scan-driven loop is preserved verbatim in :mod:`repro.sched.reference`
and selected by ``REPRO_SCHED_ENGINE=scan`` or automatically when a
dynamic ``priority_fn`` makes keys uncacheable (static all-int custom
orders can opt in via :class:`repro.sched.heuristics.StaticBlockPriority`);
both engines produce byte-identical schedules, motions and traces
(``tests/sched/test_event_scan_equivalence.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..ir.instruction import Instruction
from ..ir.opcodes import UnitType
from ..obs.events import (
    BlockBegin,
    BlockEnd,
    CandidateBlocksComputed,
    CandidatesCollected,
    CycleAdvance,
    Issue,
    MotionRecorded,
    PriorityDecision,
    RegionEnter,
    RegionExit,
    SpeculationRejected,
    SpeculationRenamed,
    UnitOccupancy,
)
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..pdg.pdg import RegionPDG
from ..pdg.data_deps import DepKind
from .candidates import (
    Candidate,
    ScheduleLevel,
    candidate_blocks,
    collect_candidates,
    collect_duplication_candidates,
)
from .heuristics import (
    PRIORITY_STEPS,
    compute_region_priorities,
    deciding_step,
    machine_free_exec,
    priority_key,
)
from .ready import DependenceState
from .soa import DenseDependenceState, DenseReadyQueue, pack_rows
from .soa import _ISSUED as _SEQ_ISSUED
from .speculation import LiveOnExitTracker, try_rename_for_motion

#: fixed unit order for the flattened per-cycle free-slot arrays
_UNIT_LIST = tuple(UnitType)

#: the full decision order of the sorted ready list: duplication class
#: first (a global_sched refinement), then the Section 5.2 steps
_FULL_PRIORITY_STEPS = ("duplication-class", *PRIORITY_STEPS)

#: Which block-pass inner loop to run: ``"soa"`` (the struct-of-arrays
#: event engine; ``"event"`` is accepted as an alias from the previous
#: generation) or ``"scan"`` (the preserved seed loop in
#: :mod:`repro.sched.reference`).  Overridable per-process via the
#: ``REPRO_SCHED_ENGINE`` environment variable, per-extent via
#: :func:`repro.sched.reference.scan_scheduler`, and forced to the scan
#: path whenever a custom ``priority_fn`` makes keys dynamic.
_ENGINE = os.environ.get("REPRO_SCHED_ENGINE", "soa")

#: Safety valve: a block pass that stalls this many consecutive cycles
#: without issuing anything indicates a dependence-state bug.
_MAX_STALL = 10_000

#: How many extra cycles a block may stay open to host duplicated motion
#: (Definition 6); bounds the code-size / schedule-length trade.
_DUP_FILL_WINDOW = 8


@dataclass(frozen=True)
class Motion:
    """One inter-block code motion performed by the scheduler."""

    uid: int
    opcode: str
    src: str
    dst: str
    speculative: bool
    #: blocks that received copies (Definition 6 duplication), if any
    duplicated_into: tuple[str, ...] = ()

    @property
    def duplicated(self) -> bool:
        return bool(self.duplicated_into)

    def __repr__(self) -> str:
        kind = "spec" if self.speculative else "useful"
        if self.duplicated:
            kind = f"dup[{','.join(self.duplicated_into)}]"
        return f"<Motion I{self.uid} {self.opcode} {self.src}->{self.dst} {kind}>"


@dataclass
class RegionScheduleReport:
    """What happened while scheduling one region."""

    header: str
    level: ScheduleLevel
    motions: list[Motion] = field(default_factory=list)
    #: local schedule length (cycles) per block, in visit order
    block_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def useful_motions(self) -> list[Motion]:
        return [m for m in self.motions if not m.speculative]

    @property
    def speculative_motions(self) -> list[Motion]:
        return [m for m in self.motions if m.speculative]


def schedule_region(
    pdg: RegionPDG,
    level: ScheduleLevel,
    live_tracker: LiveOnExitTracker,
    *,
    max_speculation: int = 1,
    rename_on_demand: bool = True,
    priority_fn=None,
    allow_duplication: bool = False,
    block_filter=None,
    region_kind: str = "region",
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
) -> RegionScheduleReport:
    """Globally schedule one region in place.  Returns a report.

    ``rename_on_demand`` enables the SSA-flavoured renaming of Section 4.2:
    a speculative candidate whose definition clashes with a live-on-exit
    register gets a fresh name when its def-use web is block-local (this is
    what turns I12's ``cr6`` into ``cr5`` in the paper's Figure 6).

    ``priority_fn(ins, useful, priorities) -> sortable`` overrides the
    Section 5.2 decision order; the heuristic-ordering ablation bench uses
    it (the paper: "experimentation and tuning are needed").

    ``tracer``/``metrics`` observe every decision (see :mod:`repro.obs`);
    the no-op defaults cost one guarded attribute load per site and must
    never perturb scheduling.
    """
    report = RegionScheduleReport(header=pdg.header, level=level)
    if level is ScheduleLevel.NONE:
        return report
    if tracer.enabled:
        tracer.emit(RegionEnter(header=pdg.header, region_kind=region_kind,
                                level=level.value,
                                blocks=tuple(pdg.topo_labels)))
    if metrics.enabled:
        metrics.inc("sched.regions")

    ddg_blocks = [pdg.block(label) for label in pdg.topo_labels]
    priorities = compute_region_priorities(ddg_blocks, pdg.ddg, pdg.machine)

    if _ENGINE not in ("soa", "event") or (
            priority_fn is not None
            and not getattr(priority_fn, "static_block_keys", False)):
        # custom priority functions with dynamic keys cannot be packed at
        # collection time; ablation benches (and the forced reference
        # arm) take the preserved scan-driven pass.  Static all-int
        # custom orders (StaticBlockPriority) stay on the dense engine.
        from .reference import schedule_block_scan as block_pass
        state = DependenceState(pdg.ddg, pdg.machine)
    else:
        block_pass = _schedule_block
        state = DenseDependenceState(pdg.ddg, pdg.machine, metrics)

    previous: str | None = None
    for node in pdg.topo_labels:
        if pdg.is_abstract(node):
            # Passing an inner loop: its barrier is now "done", releasing
            # dependences of downstream instructions on the loop's effects.
            for barrier in pdg.block(node).instrs:
                state.mark_prefulfilled(barrier)
            previous = None  # timing does not carry across opaque loops
            continue
        # Carry the previous pass's timing across the block boundary when
        # control actually flows that way (see DependenceState.begin_block).
        carry = None
        if previous is not None and previous in pdg.forward.preds(node):
            carry = report.block_cycles.get(previous)
        block_pass(pdg, node, level, live_tracker, state, priorities,
                   max_speculation, rename_on_demand, carry, report,
                   priority_fn or priority_key, allow_duplication,
                   block_filter, tracer, metrics)
        previous = node
    if metrics.enabled and state.invalidations:
        metrics.inc("sched.ddg_invalidations", state.invalidations)
    if tracer.enabled:
        tracer.emit(RegionExit(header=pdg.header, motions=len(report.motions),
                               speculative_motions=len(
                                   report.speculative_motions)))
    return report


def _schedule_block(
    pdg: RegionPDG,
    label: str,
    level: ScheduleLevel,
    live_tracker: LiveOnExitTracker,
    state: DenseDependenceState,
    priorities: dict[int, tuple[int, int]],
    max_speculation: int,
    rename_on_demand: bool,
    carry_cycles: int | None,
    report: RegionScheduleReport,
    priority_fn,
    allow_duplication: bool,
    block_filter=None,
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
) -> None:
    func = pdg.func
    block = func.block(label)
    machine = pdg.machine
    state.begin_block(carry_cycles=carry_cycles)

    equiv, speculative = candidate_blocks(pdg, label, level,
                                          max_speculation=max_speculation,
                                          block_filter=block_filter)
    pending: dict[int, Candidate] = {
        id(c.ins): c
        for c in collect_candidates(pdg, label, equiv, speculative)
    }
    if allow_duplication:
        for cand in collect_duplication_candidates(pdg, label):
            pending.setdefault(id(cand.ins), cand)
    observing = tracer.enabled or metrics.enabled
    if observing:
        _note_block_entry(tracer, metrics, label, carry_cycles,
                          equiv, speculative, pending)
    #: ids of instructions whose live-on-exit veto was already reported
    #: this pass (re-judgments would otherwise repeat it)
    vetoes_logged: set[int] = set()
    terminator = block.terminator
    term_id = id(terminator) if terminator is not None else None
    own_remaining = {id(ins) for ins in block.instrs}
    issued_order: list[Instruction] = []

    # priority rows are static per block pass (usefulness, D/CP and the
    # uid tie-break never change; renames keep the uid): compute each
    # candidate's full sort tuple exactly once at collection time, then
    # pack the rows into single ints so the heaps compare machine ints
    cands = list(pending.values())
    if priority_fn is priority_key:
        get_pr = priorities.get
        rows = []
        for c in cands:
            ins = c.ins
            pr = get_pr(id(ins))
            d, cp = pr if pr is not None else (0, machine_free_exec(ins))
            rows.append((1 if c.duplicate_into else 0,
                         0 if c.useful else 1, -d, -cp, ins.uid))
    else:
        # a StaticBlockPriority custom order: all-int rows, packable
        rows = [(1 if c.duplicate_into else 0,
                 *priority_fn(c.ins, useful=c.useful, priorities=priorities))
                for c in cands]
    pkeys = pack_rows(rows)
    if metrics.enabled:
        metrics.inc("sched.soa.packed_keys", len(rows))
    if tracer.enabled:
        # decision tracing wants the unpacked (dup-class, priority-tuple)
        # form; rebuilt off the hot path, only when a tracer listens
        nested_keys = [(row[0], tuple(row[1:])) for row in rows]

    queue = DenseReadyQueue(state, cands, pkeys, terminator, metrics)
    term_seq = queue.term_seq
    dup_seqs = queue.duplication_seqs
    seq_status = queue.status
    seq_units = queue.units
    seq_idx = queue.seq_idx
    #: how many candidates the seed scan would revisit per scan point
    unissued = len(pending)

    # Definition 6 extension: a block may stay open for a few extra
    # cycles to catch join instructions that are about to become ready
    # (otherwise blocks whose own work finishes instantly -- an arm's
    # single AI plus its jump -- would never host a duplicated motion).
    fill_budget = _DUP_FILL_WINDOW if dup_seqs else 0

    def dup_fill_wanted(at_cycle: int) -> bool:
        if fill_budget <= 0:
            return False
        state._sync()  # a duplication may just have mutated the graph
        limit = at_cycle + 1
        for s in dup_seqs:
            if seq_status[s] == _SEQ_ISSUED:
                continue
            i = seq_idx[s]
            if i < 0 or (state.deps_satisfied_idx(i)
                         and state.earliest_start_idx(i) <= limit):
                return True
        return False

    def trace_snapshot(chosen_seq: int, with_term: bool):
        """The seed scheduler's sorted ready list, for issue tracing."""
        snap = queue.ready_seqs(include_term=with_term)
        pos = snap.index(chosen_seq)
        keys = {id(queue.cands[s].ins): nested_keys[s] for s in snap}
        return ([queue.cands[s] for s in snap], pos,
                lambda c: keys[id(c.ins)])

    term_idx = -1 if terminator is None else state.index_of(terminator)
    unit_counts = [machine.unit_count(unit) for unit in _UNIT_LIST]
    cycle = 0
    stall = 0
    done = not own_remaining
    try:
        while not done:
            queue.begin_cycle(cycle)
            free = unit_counts.copy()
            budget = machine.total_issue_width
            issued_this_cycle = False
            issued_count = 0
            cycle_traced = False
            hold_for_dup = dup_fill_wanted(cycle)

            progress = True
            while progress and budget > 0:
                progress = False
                queue.scan_start()
                while True:
                    seq = queue.next_evaluation()
                    if seq < 0:
                        break
                    _judge_speculative(seq, queue, live_tracker, label,
                                       pdg, rename_on_demand, vetoes_logged,
                                       tracer, metrics)
                term_ready = (
                    terminator is not None
                    and not hold_for_dup
                    and own_remaining == {term_id}
                    and (term_idx < 0
                         or (state.deps_satisfied_idx(term_idx)
                             and state.earliest_start_idx(term_idx)
                             <= cycle))
                )
                if metrics.enabled:
                    metrics.inc("sched.queue.scan_points")
                    metrics.inc("sched.queue.seed_scan_visits", unissued)
                if not cycle_traced and observing:
                    # the first scan point of the cycle is the pressure
                    # snapshot: later ones see candidates unlocked mid-cycle
                    cycle_traced = True
                    n_ready = queue.ready_count + (1 if term_ready else 0)
                    if tracer.enabled:
                        tracer.emit(CycleAdvance(label=label, cycle=cycle,
                                                 ready=n_ready))
                    if metrics.enabled:
                        metrics.observe("sched.ready", n_ready)
                seq = queue.select(free)
                if (term_ready and free[seq_units[term_seq]] > 0
                        and (seq < 0 or pkeys[term_seq] < pkeys[seq])):
                    seq = term_seq
                if seq >= 0:
                    # issue!
                    cand = queue.cands[seq]
                    ins = cand.ins
                    free[seq_units[seq]] -= 1
                    budget -= 1
                    if tracer.enabled:
                        ready_cands, pos, key_fn = trace_snapshot(
                            seq, term_ready)
                    if seq == term_seq:
                        queue.retire_terminator()
                    else:
                        queue.pop_issue(seq)
                    i = seq_idx[seq]
                    if i >= 0:
                        state.mark_issued_idx(i, cycle)
                    issued_order.append(ins)
                    unissued -= 1
                    own_remaining.discard(id(ins))
                    issued_this_cycle = True
                    issued_count += 1
                    progress = True
                    if tracer.enabled:
                        _trace_issue(tracer, label, cycle, cand, machine,
                                     ready_cands, pos, key_fn)
                    if cand.home != label:
                        is_spec = not cand.useful and not cand.duplicate_into
                        report.motions.append(Motion(
                            ins.uid, ins.opcode.mnemonic,
                            cand.home, label, is_spec,
                            duplicated_into=cand.duplicate_into or (),
                        ))
                        if tracer.enabled:
                            tracer.emit(MotionRecorded(
                                uid=ins.uid,
                                opcode=ins.opcode.mnemonic,
                                src=cand.home, dst=label, speculative=is_spec,
                                duplicated_into=cand.duplicate_into or ()))
                        if metrics.enabled:
                            metrics.inc(
                                "sched.motions.speculative" if is_spec
                                else "sched.motions.duplicated"
                                if cand.duplicate_into
                                else "sched.motions.useful")
                        func.block(cand.home).remove(ins)
                        if cand.duplicate_into:
                            _place_duplicates(pdg, state, cand, report)
                        # Any upward motion extends the moved definition's
                        # live range down to its old home; record it so later
                        # speculative legality checks see fresh liveness.
                        live_tracker.record_motion(ins, cand.home, label)
                        queue.note_liveness_grown(ins.reg_defs())
                    if ins is terminator:
                        done = True
                if (not own_remaining and terminator is None
                        and not dup_fill_wanted(cycle)):
                    done = True
                    break
                if done:
                    break

            if tracer.enabled and issued_count:
                used = {}
                for unit_idx, unit in enumerate(_UNIT_LIST):
                    busy = unit_counts[unit_idx] - free[unit_idx]
                    if busy > 0:
                        used[unit.value] = busy
                tracer.emit(UnitOccupancy(label=label, cycle=cycle, used=used,
                                          issued=issued_count))
            if done:
                report.block_cycles[label] = cycle + 1
                break
            if not own_remaining or own_remaining == {term_id}:
                fill_budget -= 1  # this cycle was borrowed for duplication
            stall = 0 if issued_this_cycle else stall + 1
            if stall > _MAX_STALL:
                stuck = sorted(f"I{pending[i].ins.uid}"
                               for i in own_remaining)
                raise RuntimeError(
                    f"scheduler stalled in block {label}: remaining own "
                    f"instructions {stuck} never became ready"
                )
            cycle += 1
    finally:
        queue.detach()

    block.instrs = issued_order
    if tracer.enabled:
        tracer.emit(BlockEnd(label=label,
                             cycles=report.block_cycles.get(label, 0)))
    if metrics.enabled:
        metrics.inc("sched.blocks")


def _judge_speculative(seq, queue, live_tracker, label, pdg,
                       rename_on_demand, vetoes_logged, tracer, metrics):
    """Judge one speculative candidate's Section 5.3 veto, exactly as the
    scan engine would at the same scan point: pass -> heap, veto ->
    rename attempt (Section 4.2) or park."""
    cand = queue.cands[seq]
    ins = cand.ins
    if not live_tracker.blocks_motion(ins, label):
        queue.promote(seq)
        return
    if not rename_on_demand:
        _note_veto(tracer, metrics, vetoes_logged, live_tracker, cand, label)
        queue.park(seq)
        return
    observing = tracer.enabled or metrics.enabled
    regs = live_tracker.blocking_regs(ins, label) if observing else ()
    renamed = try_rename_for_motion(
        ins, pdg.func.block(cand.home), label, live_tracker,
        pdg.ddg, pdg.func, pdg.machine,
    )
    if not renamed:
        _note_veto(tracer, metrics, vetoes_logged, live_tracker,
                   cand, label, regs=regs)
        queue.park(seq)
        return
    # the rename mutated the instruction (and the DDG), so this veto
    # cannot re-trigger: one event per successful rename
    if observing:
        if tracer.enabled:
            tracer.emit(SpeculationRenamed(
                label=label, uid=ins.uid,
                opcode=ins.opcode.mnemonic, home=cand.home,
                regs=tuple(str(r) for r in regs)))
        if metrics.enabled:
            metrics.inc("sched.speculation.renamed")
    queue.promote(seq)
    queue.note_graph_mutation()


def _note_block_entry(tracer, metrics, label: str, carry_cycles: int | None,
                      equiv: list[str], speculative: list[str],
                      pending: dict[int, Candidate]) -> None:
    """Off-hot-path bookkeeping when a traced/measured block pass opens."""
    own = useful = spec = dup = 0
    for cand in pending.values():
        if cand.home == label:
            own += 1
        elif cand.duplicate_into:
            dup += 1
        elif cand.useful:
            useful += 1
        else:
            spec += 1
    if tracer.enabled:
        tracer.emit(BlockBegin(label=label, carry_cycles=carry_cycles))
        tracer.emit(CandidateBlocksComputed(
            label=label, equiv=tuple(equiv), speculative=tuple(speculative)))
        tracer.emit(CandidatesCollected(label=label, own=own, useful=useful,
                                        speculative=spec, duplication=dup))
    if metrics.enabled:
        metrics.inc("sched.candidates.own", own)
        metrics.inc("sched.candidates.useful", useful)
        metrics.inc("sched.candidates.speculative", spec)
        metrics.inc("sched.candidates.duplication", dup)


def _trace_issue(tracer, label: str, cycle: int, cand: Candidate, machine,
                 ready: list[Candidate], pos: int, sort_key) -> None:
    """Emit the issue event and, when a runner-up was waiting, which step
    of the decision order separated the two."""
    klass = ("own" if cand.home == label
             else "useful" if cand.useful
             else "duplicated" if cand.duplicate_into
             else "speculative")
    tracer.emit(Issue(label=label, cycle=cycle, uid=cand.ins.uid,
                      opcode=cand.ins.opcode.mnemonic,
                      unit=cand.ins.unit.value, home=cand.home, klass=klass,
                      exec_cycles=machine.exec_time(cand.ins)))
    if pos + 1 < len(ready):
        runner_up = ready[pos + 1]
        winner_key, runner_key = sort_key(cand), sort_key(runner_up)
        # flatten (dup-class, priority-tuple) so the step names line up
        if isinstance(winner_key[1], tuple):
            step = deciding_step((winner_key[0], *winner_key[1]),
                                 (runner_key[0], *runner_key[1]),
                                 _FULL_PRIORITY_STEPS)
        elif winner_key[0] != runner_key[0]:
            step = "duplication-class"
        else:
            step = "custom-priority"
        tracer.emit(PriorityDecision(
            label=label, cycle=cycle, winner_uid=cand.ins.uid,
            runner_up_uid=runner_up.ins.uid, step=step))


def _note_veto(tracer, metrics, vetoes_logged: set[int] | None,
               live_tracker: LiveOnExitTracker, cand: Candidate, label: str,
               regs: tuple = ()) -> None:
    """Report a Section 5.3 live-on-exit veto, once per candidate per
    block pass (the readiness scan re-evaluates every cycle)."""
    if not (tracer.enabled or metrics.enabled):
        return
    if vetoes_logged is None or id(cand.ins) in vetoes_logged:
        return
    vetoes_logged.add(id(cand.ins))
    if not regs:
        regs = live_tracker.blocking_regs(cand.ins, label)
    if tracer.enabled:
        tracer.emit(SpeculationRejected(
            label=label, uid=cand.ins.uid, opcode=cand.ins.opcode.mnemonic,
            home=cand.home, regs=tuple(str(r) for r in regs)))
    if metrics.enabled:
        metrics.inc("sched.speculation.rejected_live")


def _place_duplicates(pdg: RegionPDG, state,
                      cand: Candidate, report: RegionScheduleReport) -> None:
    """Append copies of a duplicated instruction to the join's other
    predecessors and thread them into the dependence graph so later block
    passes order them correctly."""
    func = pdg.func
    for pred_label in cand.duplicate_into:
        pred = func.block(pred_label)
        copy = cand.ins.clone()
        copy.comment = (cand.ins.comment + " (dup)").strip()
        func.assign_uid(copy)
        func.note_registers(copy)
        # dependences from the predecessor's existing instructions
        for existing in pred.instrs:
            _add_pair_edges(pdg, existing, copy)
        pred.insert_before_terminator(copy)
        # the join's remaining instructions that depended on the original
        # must now also wait for (and stay below) the copy
        for edge in tuple(pdg.ddg.succs(cand.ins)):
            pdg.ddg.add_edge(copy, edge.dst, edge.kind, edge.delay, edge.reg)
        if pred_label in report.block_cycles:
            # that block's pass already ran: the copy stays at its end,
            # and downstream readiness must not wait on it forever
            state.mark_prefulfilled(copy)


def _add_pair_edges(pdg: RegionPDG, src, dst) -> None:
    """Conservative dependence edges ``src -> dst`` from current operands."""
    machine = pdg.machine
    src_defs = set(src.reg_defs())
    src_uses = set(src.reg_uses())
    for reg in dst.reg_uses():
        if reg in src_defs:
            pdg.ddg.add_edge(src, dst, DepKind.FLOW,
                             machine.flow_delay(src, dst, reg), reg)
    for reg in dst.reg_defs():
        if reg in src_uses:
            pdg.ddg.add_edge(src, dst, DepKind.ANTI, 0, reg)
        if reg in src_defs:
            pdg.ddg.add_edge(src, dst, DepKind.OUTPUT, 0, reg)
    if (src.touches_memory and dst.touches_memory
            and (src.writes_memory or dst.writes_memory)):
        pdg.ddg.add_edge(src, dst, DepKind.MEM, 0)
