"""Dependence-state bookkeeping for the cycle-driven schedulers.

Tracks which instructions have been *fulfilled* ("its data dependences to
the following instructions are marked as fulfilled", Section 5.1) and the
earliest start cycle each not-yet-issued instruction may receive within the
block currently being scheduled.

Timing is local to each block pass (blocks are scheduled one at a time and
each starts its own cycle count at 0): instructions issued in *earlier*
blocks are fulfilled with no timing constraint, while instructions issued
earlier in the *current* pass constrain their successors by
``start + weight`` where ``weight`` is ``E(src) + delay`` for flow edges
and 0 for anti/output/memory edges (which only require issue order).

Both queries the schedulers make on their inner loop --
:meth:`DependenceState.deps_satisfied` and
:meth:`~DependenceState.earliest_start` -- are maintained *incrementally*:
issuing an instruction decrements an unfulfilled-predecessor counter and
folds ``start + weight`` into a cached earliest start for each successor,
instead of every query re-walking the predecessor edges.  The caches are
keyed to :attr:`DataDependenceGraph.version`, so graph mutation mid-region
(speculative renaming rewrites edges, Definition-6 duplication adds them)
transparently drops and lazily rebuilds them.

On top of the counters sits :class:`ReadyQueue`, the event-driven ready
structure of the global scheduler: per-unit-type heaps of issuable
candidates keyed by their precomputed Section 5.2 priority tuple, a
time-indexed pending wheel for candidates whose dependences are satisfied
but whose earliest start lies in the future, and a parked set for
speculative candidates vetoed by the live-on-exit test.  A candidate is
pushed when its last predecessor fulfills (the :class:`DependenceState`
listener fires as the unfulfilled-pred counter reaches zero) and its
earliest-start cycle arrives -- instead of the seed scheduler's rescan of
every pending candidate at every scan point.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..ir.instruction import Instruction
from ..ir.opcodes import UnitType
from ..machine.model import MachineModel
from ..obs.metrics import NULL_METRICS
from ..pdg.data_deps import DataDependenceGraph, DepEdge, DepKind


class DependenceState:
    """Fulfilment and earliest-start tracking over one region's DDG."""

    def __init__(self, ddg: DataDependenceGraph, machine: MachineModel):
        self.ddg = ddg
        self.machine = machine
        self._fulfilled: set[int] = set()
        #: start cycles of instructions issued in the *current* block pass
        self._local_start: dict[int, int] = {}
        #: shifted start cycles carried over from the previous block pass
        #: (negative values: "issued that many cycles before this block")
        self._carry_start: dict[int, int] = {}
        #: lazily-filled count of not-yet-fulfilled predecessors
        self._blocked: dict[int, int] = {}
        #: lazily-filled earliest start within the current pass
        self._earliest: dict[int, int] = {}
        self._ddg_version = ddg.version
        #: observability: how many times a DDG version bump forced the
        #: derived caches to be dropped (mid-region renames/duplication)
        self.invalidations = 0
        #: optional callback fired with an instruction whose unfulfilled
        #: predecessor counter just reached zero (the event-driven ready
        #: queue subscribes for the duration of one block pass)
        self._listener = None

    def set_listener(self, listener) -> None:
        """Subscribe ``listener(ins)`` to blocked-count zero crossings.

        Only counters already materialized in the ``_blocked`` cache fire
        (a lazily computed count of zero is visible to the subscriber via
        :meth:`deps_satisfied` at subscription time); after a DDG version
        bump the cleared cache fires nothing until the subscriber
        re-queries, which is exactly the rebuild protocol
        :class:`ReadyQueue` follows.
        """
        self._listener = listener

    def edge_weight(self, edge: DepEdge) -> int:
        """Minimum start-to-start separation the edge imposes."""
        if edge.kind is DepKind.FLOW:
            return self.machine.exec_time(edge.src) + edge.delay
        return 0

    def _sync(self) -> None:
        """Drop derived caches if the DDG changed under us.

        Fulfilment and issue times are facts about the schedule, not the
        graph, so they survive; the per-instruction counters and earliest
        starts are derived from edges and must be rebuilt lazily.
        """
        if self._ddg_version != self.ddg.version:
            self._ddg_version = self.ddg.version
            self._blocked.clear()
            self._earliest.clear()
            self.invalidations += 1

    # -- pass lifecycle -----------------------------------------------------

    def begin_block(self, *, carry_cycles: int | None = None) -> None:
        """Start a new block pass.

        With ``carry_cycles`` (the schedule length of the pass that just
        ended, when that block is a control-flow predecessor of the new
        one), the previous pass's issue times are carried over shifted by
        that length: an instruction issued at its local cycle ``c``
        appears to the new pass as issued at ``c - carry_cycles``.  This
        makes delays that straddle the block boundary visible -- e.g. a
        compare at the end of the predecessor holds this block's branch
        back for the remaining delay cycles, which is exactly the window
        the rotated-loop second pass fills with next-iteration instructions
        (the paper's partial software pipelining).  Older passes stop
        constraining timing entirely.
        """
        if carry_cycles is None:
            self._carry_start = {}
        else:
            self._carry_start = {
                key: start - carry_cycles
                for key, start in self._local_start.items()
            }
        self._local_start.clear()
        # every cached earliest start was relative to the old pass's clock
        self._earliest.clear()

    # -- state transitions ------------------------------------------------------

    def mark_prefulfilled(self, ins: Instruction) -> None:
        """``ins`` completed in an earlier block (or is an abstract-loop
        barrier whose node was passed): fulfilled, timing-neutral."""
        self._sync()
        if id(ins) in self._fulfilled:
            return
        self._fulfilled.add(id(ins))
        blocked = self._blocked
        listener = self._listener
        for edge in self.ddg.succs(ins):
            key = id(edge.dst)
            if key in blocked:
                count = blocked[key] - 1
                blocked[key] = count
                if count == 0 and listener is not None:
                    listener(edge.dst)

    def mark_issued(self, ins: Instruction, cycle: int) -> None:
        self._sync()
        first = id(ins) not in self._fulfilled
        self._fulfilled.add(id(ins))
        self._local_start[id(ins)] = cycle
        blocked = self._blocked
        earliest = self._earliest
        listener = self._listener
        exec_time = self.machine.exec_time
        flow = DepKind.FLOW
        for edge in self.ddg.succs(ins):
            key = id(edge.dst)
            if first and key in blocked:
                count = blocked[key] - 1
                blocked[key] = count
                if count == 0 and listener is not None:
                    listener(edge.dst)
            if key in earliest:
                # edge_weight inlined: issue-time fan-out is a hot path
                if edge.kind is flow:
                    bound = cycle + exec_time(edge.src) + edge.delay
                else:
                    bound = cycle
                if bound > earliest[key]:
                    earliest[key] = bound

    # -- queries -----------------------------------------------------------------

    def is_fulfilled(self, ins: Instruction) -> bool:
        return id(ins) in self._fulfilled

    def deps_satisfied(self, ins: Instruction) -> bool:
        """Are all dependence predecessors of ``ins`` fulfilled?"""
        self._sync()
        count = self._blocked.get(id(ins))
        if count is None:
            fulfilled = self._fulfilled
            count = sum(
                1 for edge in self.ddg.preds(ins)
                if id(edge.src) not in fulfilled
            )
            self._blocked[id(ins)] = count
        return count == 0

    def earliest_start(self, ins: Instruction) -> int:
        """Earliest cycle ``ins`` may start in the current pass, assuming
        :meth:`deps_satisfied`.  Pre-fulfilled predecessors contribute 0."""
        self._sync()
        cached = self._earliest.get(id(ins))
        if cached is not None:
            return cached
        earliest = 0
        local = self._local_start
        carry = self._carry_start
        for edge in self.ddg.preds(ins):
            start = local.get(id(edge.src))
            if start is None:
                start = carry.get(id(edge.src))
            if start is not None:
                bound = start + self.edge_weight(edge)
                if bound > earliest:
                    earliest = bound
        self._earliest[id(ins)] = earliest
        return earliest

    def start_of(self, ins: Instruction) -> int | None:
        """Issue cycle within the current pass (None if not issued here)."""
        return self._local_start.get(id(ins))


# -- event-driven ready structure --------------------------------------------

#: entry lifecycle states (module-level ints: attribute loads off the hot path)
_WAITING = 0   #: some dependence predecessor is still unfulfilled
_TIMED = 1     #: dependences satisfied, earliest start is in the future (wheel)
_PENDING = 2   #: issuable once judged -- sitting in an evaluation queue
_READY = 3     #: judged issuable, resident in its unit heap
_PARKED = 4    #: vetoed by the live-on-exit test (or rename failed)
_ISSUED = 5    #: scheduled; terminal


class _QueueEntry:
    """One candidate's queue-resident state (identity-keyed, mutable)."""

    __slots__ = ("cand", "key", "seq", "unit_idx", "needs_veto",
                 "status", "epoch", "queued", "flagged")

    def __init__(self, cand, key, seq, unit_idx, needs_veto):
        self.cand = cand
        self.key = key              # full static sort key, computed once
        self.seq = seq              # collection order == seed scan order
        self.unit_idx = unit_idx
        self.needs_veto = needs_veto
        self.status = _WAITING
        self.epoch = 0              # stamps heap items for lazy deletion
        self.queued = False         # resident in an evaluation queue?
        self.flagged = False        # liveness grew under a heap resident

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<_QueueEntry I{self.cand.ins.uid} seq={self.seq} "
                f"status={self.status}>")


class ReadyQueue:
    """Event-driven ready bookkeeping for one Section 5.1 block pass.

    Equivalence contract with the scan engine
    (:func:`repro.sched.reference.schedule_block_scan`): at every scan
    point the set of heap residents equals the seed scheduler's ready
    list, heap order equals its sorted order (keys are total: source
    order breaks every tie), and the veto/rename evaluations performed
    between scan points happen for exactly the candidates the seed scan
    would have *re-judged to a different answer* -- in the seed's
    iteration order (``seq``).  Three mechanisms carry that contract:

    * activations: :class:`DependenceState` notifies when a candidate's
      last predecessor fulfills; the earliest-start delay is absorbed by
      a time-indexed wheel.  Activations are staged and judged at the
      next scan point, like the seed scan would first see them.
    * liveness flags: a reg -> candidate inverted index marks only the
      heap residents whose definitions actually became live for
      re-judgment (live-on-exit sets grow monotonically, so a veto or a
      failed rename is otherwise permanent between graph mutations).
    * rebuilds: any DDG version bump (Section 4.2 rename, Definition 6
      duplication) reclassifies every unissued candidate.  A mid-scan
      rename rebuild gates re-activations on ``seq``: the seed scan
      judges candidates before the renamer on the pre-rename graph and
      candidates after it on the post-rename graph, so judgments at
      ``seq <= drain_seq`` are preserved for the rest of the scan and
      requalified at the next scan point.
    """

    def __init__(self, state: DependenceState, items, terminator,
                 metrics=NULL_METRICS):
        """``items``: iterable of ``(candidate, key)`` in collection
        order, the key being the full precomputed sort tuple.  The
        terminator (pull-checked by the scheduler, never queued) and
        foreign branches (never issuable) are filtered here but still
        receive entries/sequence numbers so comparisons stay aligned."""
        self._state = state
        self._m = metrics if metrics.enabled else None
        self._heaps: list[list] = [[] for _ in UnitType]
        unit_index = {unit: idx for idx, unit in enumerate(UnitType)}
        self._wheel: dict[int, list[_QueueEntry]] = {}
        self._current: list = []          # (seq, entry): judged this scan
        self._staged: list[_QueueEntry] = []  # judged at the next scan point
        self._by_id: dict[int, _QueueEntry] = {}
        self._entries: list[_QueueEntry] = []
        self._index: dict = {}            # Reg -> [speculative heap entries]
        self._live = 0                    # heap residents == seed ready count
        self._cycle = 0
        self._drain_seq = -1              # last seq judged this scan
        self._requalify = False           # stale pre-mutation judgments exist
        self.terminator_entry: _QueueEntry | None = None
        self.duplication_entries: list[_QueueEntry] = []

        seq = 0
        for cand, key in items:
            ins = cand.ins
            entry = _QueueEntry(
                cand, key, seq, unit_index[ins.unit],
                not cand.useful and not cand.duplicate_into)
            seq += 1
            if terminator is not None and ins is terminator:
                self.terminator_entry = entry
                continue
            if ins.is_branch:
                continue  # foreign branches never move
            self._entries.append(entry)
            self._by_id[id(ins)] = entry
            if cand.duplicate_into:
                self.duplication_entries.append(entry)

        self._version = state.ddg.version
        for entry in self._entries:
            self._classify(entry)
        state.set_listener(self._on_deps_ready)

    def detach(self) -> None:
        """Unsubscribe from the dependence state (end of the block pass)."""
        self._state.set_listener(None)

    # -- scan-point lifecycle ------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Advance the clock; drain the wheel slot that just matured."""
        self._cycle = cycle
        batch = self._wheel.pop(cycle, None)
        if batch:
            for entry in batch:
                if entry.status == _TIMED:
                    entry.status = _PENDING
                    self._enqueue_eval(entry, now=False)

    def scan_start(self) -> None:
        """Open a scan point: rebuild if the graph moved, then make the
        staged activations/flags judgeable."""
        self._drain_seq = -1
        if self._state.ddg.version != self._version or self._requalify:
            self._rebuild()
        if self._staged:
            current = self._current
            for entry in self._staged:
                heappush(current, (entry.seq, entry))
            self._staged.clear()

    def next_evaluation(self):
        """Next candidate the scheduler must judge (veto / rename), in
        seed scan order.  Non-speculative activations are promoted
        straight to their heap here -- they need no judgment and the
        seed scan emits nothing for them."""
        current = self._current
        while current:
            seq, entry = heappop(current)
            entry.queued = False
            status = entry.status
            if status == _PENDING:
                self._drain_seq = seq
                if entry.needs_veto:
                    if self._m is not None:
                        self._m.inc("sched.queue.veto_rechecks")
                    return entry
                self._push_heap(entry)
                continue
            if status == _READY and entry.flagged:
                self._drain_seq = seq
                entry.flagged = False
                if self._m is not None:
                    self._m.inc("sched.queue.veto_rechecks")
                return entry
            # stale: demoted/parked/issued since it was enqueued
        return None

    # -- judgment outcomes ---------------------------------------------------

    def promote(self, entry: _QueueEntry) -> None:
        """The candidate passed (or renamed its way past) the veto."""
        if entry.status != _READY:
            self._push_heap(entry)

    def park(self, entry: _QueueEntry) -> None:
        """The candidate is vetoed and unrenameable: out of play until
        liveness flags it again or the graph mutates."""
        if entry.status == _READY:
            self._live -= 1
        entry.status = _PARKED
        entry.epoch += 1

    # -- selection -----------------------------------------------------------

    @property
    def ready_count(self) -> int:
        return self._live

    def select(self, free: list[int]):
        """Best heap resident whose unit still has a free slot (the seed
        scan's first issuable candidate in sorted order), or None."""
        best = None
        for unit_idx, heap in enumerate(self._heaps):
            if free[unit_idx] <= 0:
                continue
            top = self._peek(heap)
            if top is not None and (
                    best is None
                    or (top.key, top.seq) < (best.key, best.seq)):
                best = top
        return best

    def pop_issue(self, entry: _QueueEntry) -> None:
        entry.status = _ISSUED
        entry.epoch += 1
        self._live -= 1
        if self._m is not None:
            self._m.inc("sched.queue.heap_pops")

    def sorted_ready_snapshot(self, chosen: _QueueEntry, term_entry):
        """The seed scheduler's full sorted ready list, for issue tracing
        only: ``(candidates, position_of_chosen, key_fn)``."""
        entries = []
        for heap in self._heaps:
            for _key, _seq, epoch, entry in heap:
                if entry.status == _READY and entry.epoch == epoch:
                    entries.append(entry)
        if term_entry is not None:
            entries.append(term_entry)
        entries.sort(key=lambda e: (e.key, e.seq))
        pos = next(i for i, e in enumerate(entries) if e is chosen)
        keys = {id(e.cand.ins): e.key for e in entries}
        return ([e.cand for e in entries], pos,
                lambda c: keys[id(c.ins)])

    # -- external events -----------------------------------------------------

    def note_liveness_grown(self, regs) -> None:
        """A motion extended live ranges: flag only the speculative heap
        residents defining one of ``regs`` for re-judgment at the next
        scan point (the targeted veto invalidation)."""
        index = self._index
        flagged = 0
        for reg in regs:
            bucket = index.get(reg)
            if not bucket:
                continue
            keep = []
            for entry in bucket:
                if entry.status != _READY:
                    continue  # prune lazily
                keep.append(entry)
                if not entry.flagged:
                    entry.flagged = True
                    flagged += 1
                    self._enqueue_eval(entry, now=False)
            index[reg] = keep
        if flagged and self._m is not None:
            self._m.inc("sched.queue.liveness_flags", flagged)

    def note_graph_mutation(self) -> None:
        """Called right after a judgment mutated the DDG (a successful
        Section 4.2 rename): rebuild now, gated on the drain position."""
        if self._state.ddg.version != self._version:
            self._rebuild()

    # -- internals -----------------------------------------------------------

    def _classify(self, entry: _QueueEntry) -> None:
        ins = entry.cand.ins
        state = self._state
        if not state.deps_satisfied(ins):
            entry.status = _WAITING
            return
        start = state.earliest_start(ins)
        if start > self._cycle:
            entry.status = _TIMED
            self._wheel.setdefault(start, []).append(entry)
            if self._m is not None:
                self._m.inc("sched.queue.wheel_holds")
            return
        entry.status = _PENDING
        self._enqueue_eval(entry, now=False)

    def _enqueue_eval(self, entry: _QueueEntry, *, now: bool) -> None:
        if entry.queued:
            return
        entry.queued = True
        if now:
            heappush(self._current, (entry.seq, entry))
        else:
            self._staged.append(entry)

    def _push_heap(self, entry: _QueueEntry) -> None:
        entry.status = _READY
        entry.epoch += 1
        heappush(self._heaps[entry.unit_idx],
                 (entry.key, entry.seq, entry.epoch, entry))
        self._live += 1
        if self._m is not None:
            self._m.inc("sched.queue.ready_pushes")
        if entry.needs_veto:
            index = self._index
            for reg in entry.cand.ins.reg_defs():
                index.setdefault(reg, []).append(entry)

    @staticmethod
    def _peek(heap):
        while heap:
            _key, _seq, epoch, entry = heap[0]
            if entry.status == _READY and entry.epoch == epoch:
                return entry
            heappop(heap)
        return None

    def _on_deps_ready(self, ins) -> None:
        entry = self._by_id.get(id(ins))
        if entry is None or entry.status != _WAITING:
            return
        start = self._state.earliest_start(ins)
        if start > self._cycle:
            entry.status = _TIMED
            self._wheel.setdefault(start, []).append(entry)
            if self._m is not None:
                self._m.inc("sched.queue.wheel_holds")
            return
        entry.status = _PENDING
        self._enqueue_eval(entry, now=False)

    def _rebuild(self) -> None:
        """Reclassify every unissued candidate against the current graph.

        ``gate == -1`` (a scan-point rebuild) reclassifies everything.
        A mid-scan rebuild (``gate >= 0``, a rename fired while judging)
        preserves the judgments already made this scan -- the seed scan
        judged those candidates on the pre-rename graph -- and schedules
        a requalifying rebuild for the next scan point.
        """
        gate = self._drain_seq
        self._version = self._state.ddg.version
        self._requalify = gate >= 0
        for heap in self._heaps:
            heap.clear()
        self._wheel.clear()
        self._current.clear()
        self._staged.clear()
        self._index.clear()
        self._live = 0
        if self._m is not None:
            self._m.inc("sched.queue.rebuilds")
        for entry in self._entries:
            status = entry.status
            if status == _ISSUED:
                continue
            entry.queued = False
            if entry.seq <= gate:
                # judged this scan, pre-mutation: keep the judgment live
                # for the remainder of the scan (requalified next scan)
                if status == _READY:
                    was_flagged = entry.flagged
                    self._push_heap(entry)
                    if was_flagged:
                        self._enqueue_eval(entry, now=True)
                elif status in (_TIMED, _PENDING):
                    # wheel slot / eval queue just cleared; requalify
                    entry.status = _WAITING
                continue
            entry.flagged = False
            self._classify(entry)
            if entry.status == _PENDING:
                # eligible for judgment in this very scan: the seed scan
                # reaches these positions only after the mutation
                self._staged.pop()  # _classify staged it as the last element
                heappush(self._current, (entry.seq, entry))
