"""Dependence-state bookkeeping for the cycle-driven schedulers.

Tracks which instructions have been *fulfilled* ("its data dependences to
the following instructions are marked as fulfilled", Section 5.1) and the
earliest start cycle each not-yet-issued instruction may receive within the
block currently being scheduled.

Timing is local to each block pass (blocks are scheduled one at a time and
each starts its own cycle count at 0): instructions issued in *earlier*
blocks are fulfilled with no timing constraint, while instructions issued
earlier in the *current* pass constrain their successors by
``start + weight`` where ``weight`` is ``E(src) + delay`` for flow edges
and 0 for anti/output/memory edges (which only require issue order).

Both queries the schedulers make on their inner loop --
:meth:`DependenceState.deps_satisfied` and
:meth:`~DependenceState.earliest_start` -- are maintained *incrementally*:
issuing an instruction decrements an unfulfilled-predecessor counter and
folds ``start + weight`` into a cached earliest start for each successor,
instead of every query re-walking the predecessor edges.  The caches are
keyed to :attr:`DataDependenceGraph.version`, so graph mutation mid-region
(speculative renaming rewrites edges, Definition-6 duplication adds them)
transparently drops and lazily rebuilds them.

This dict-based state serves the scan-driven oracle
(:mod:`repro.sched.reference`) and the basic-block scheduler; the global
scheduler's hot path runs on its struct-of-arrays twin,
:class:`repro.sched.soa.DenseDependenceState`, and the event-driven ready
structure lives in :class:`repro.sched.soa.DenseReadyQueue` (per-unit
heaps of packed int keys, a time-indexed wheel, targeted liveness
re-flags).  The two states are behaviourally identical; only the storage
differs.
"""

from __future__ import annotations

from ..ir.instruction import Instruction
from ..machine.model import MachineModel
from ..pdg.data_deps import DataDependenceGraph, DepEdge, DepKind


class DependenceState:
    """Fulfilment and earliest-start tracking over one region's DDG."""

    def __init__(self, ddg: DataDependenceGraph, machine: MachineModel):
        self.ddg = ddg
        self.machine = machine
        self._fulfilled: set[int] = set()
        #: start cycles of instructions issued in the *current* block pass
        self._local_start: dict[int, int] = {}
        #: shifted start cycles carried over from the previous block pass
        #: (negative values: "issued that many cycles before this block")
        self._carry_start: dict[int, int] = {}
        #: lazily-filled count of not-yet-fulfilled predecessors
        self._blocked: dict[int, int] = {}
        #: lazily-filled earliest start within the current pass
        self._earliest: dict[int, int] = {}
        self._ddg_version = ddg.version
        #: observability: how many times a DDG version bump forced the
        #: derived caches to be dropped (mid-region renames/duplication)
        self.invalidations = 0
        #: optional callback fired with an instruction whose unfulfilled
        #: predecessor counter just reached zero (the event-driven ready
        #: queue subscribes for the duration of one block pass)
        self._listener = None

    def set_listener(self, listener) -> None:
        """Subscribe ``listener(ins)`` to blocked-count zero crossings.

        Only counters already materialized in the ``_blocked`` cache fire
        (a lazily computed count of zero is visible to the subscriber via
        :meth:`deps_satisfied` at subscription time); after a DDG version
        bump the cleared cache fires nothing until the subscriber
        re-queries, which is exactly the rebuild protocol the ready
        structure follows.
        """
        self._listener = listener

    def edge_weight(self, edge: DepEdge) -> int:
        """Minimum start-to-start separation the edge imposes."""
        if edge.kind is DepKind.FLOW:
            return self.machine.exec_time(edge.src) + edge.delay
        return 0

    def _sync(self) -> None:
        """Drop derived caches if the DDG changed under us.

        Fulfilment and issue times are facts about the schedule, not the
        graph, so they survive; the per-instruction counters and earliest
        starts are derived from edges and must be rebuilt lazily.
        """
        if self._ddg_version != self.ddg.version:
            self._ddg_version = self.ddg.version
            self._blocked.clear()
            self._earliest.clear()
            self.invalidations += 1

    # -- pass lifecycle -----------------------------------------------------

    def begin_block(self, *, carry_cycles: int | None = None) -> None:
        """Start a new block pass.

        With ``carry_cycles`` (the schedule length of the pass that just
        ended, when that block is a control-flow predecessor of the new
        one), the previous pass's issue times are carried over shifted by
        that length: an instruction issued at its local cycle ``c``
        appears to the new pass as issued at ``c - carry_cycles``.  This
        makes delays that straddle the block boundary visible -- e.g. a
        compare at the end of the predecessor holds this block's branch
        back for the remaining delay cycles, which is exactly the window
        the rotated-loop second pass fills with next-iteration instructions
        (the paper's partial software pipelining).  Older passes stop
        constraining timing entirely.
        """
        if carry_cycles is None:
            self._carry_start = {}
        else:
            self._carry_start = {
                key: start - carry_cycles
                for key, start in self._local_start.items()
            }
        self._local_start.clear()
        # every cached earliest start was relative to the old pass's clock
        self._earliest.clear()

    # -- state transitions ------------------------------------------------------

    def mark_prefulfilled(self, ins: Instruction) -> None:
        """``ins`` completed in an earlier block (or is an abstract-loop
        barrier whose node was passed): fulfilled, timing-neutral."""
        self._sync()
        if id(ins) in self._fulfilled:
            return
        self._fulfilled.add(id(ins))
        blocked = self._blocked
        listener = self._listener
        for edge in self.ddg.succs(ins):
            key = id(edge.dst)
            if key in blocked:
                count = blocked[key] - 1
                blocked[key] = count
                if count == 0 and listener is not None:
                    listener(edge.dst)

    def mark_issued(self, ins: Instruction, cycle: int) -> None:
        self._sync()
        first = id(ins) not in self._fulfilled
        self._fulfilled.add(id(ins))
        self._local_start[id(ins)] = cycle
        blocked = self._blocked
        earliest = self._earliest
        listener = self._listener
        exec_time = self.machine.exec_time
        flow = DepKind.FLOW
        for edge in self.ddg.succs(ins):
            key = id(edge.dst)
            if first and key in blocked:
                count = blocked[key] - 1
                blocked[key] = count
                if count == 0 and listener is not None:
                    listener(edge.dst)
            if key in earliest:
                # edge_weight inlined: issue-time fan-out is a hot path
                if edge.kind is flow:
                    bound = cycle + exec_time(edge.src) + edge.delay
                else:
                    bound = cycle
                if bound > earliest[key]:
                    earliest[key] = bound

    # -- queries -----------------------------------------------------------------

    def is_fulfilled(self, ins: Instruction) -> bool:
        return id(ins) in self._fulfilled

    def deps_satisfied(self, ins: Instruction) -> bool:
        """Are all dependence predecessors of ``ins`` fulfilled?"""
        self._sync()
        count = self._blocked.get(id(ins))
        if count is None:
            fulfilled = self._fulfilled
            count = sum(
                1 for edge in self.ddg.preds(ins)
                if id(edge.src) not in fulfilled
            )
            self._blocked[id(ins)] = count
        return count == 0

    def earliest_start(self, ins: Instruction) -> int:
        """Earliest cycle ``ins`` may start in the current pass, assuming
        :meth:`deps_satisfied`.  Pre-fulfilled predecessors contribute 0."""
        self._sync()
        cached = self._earliest.get(id(ins))
        if cached is not None:
            return cached
        earliest = 0
        local = self._local_start
        carry = self._carry_start
        for edge in self.ddg.preds(ins):
            start = local.get(id(edge.src))
            if start is None:
                start = carry.get(id(edge.src))
            if start is not None:
                bound = start + self.edge_weight(edge)
                if bound > earliest:
                    earliest = bound
        self._earliest[id(ins)] = earliest
        return earliest

    def start_of(self, ins: Instruction) -> int | None:
        """Issue cycle within the current pass (None if not issued here)."""
        return self._local_start.get(id(ins))

