"""Dependence-state bookkeeping for the cycle-driven schedulers.

Tracks which instructions have been *fulfilled* ("its data dependences to
the following instructions are marked as fulfilled", Section 5.1) and the
earliest start cycle each not-yet-issued instruction may receive within the
block currently being scheduled.

Timing is local to each block pass (blocks are scheduled one at a time and
each starts its own cycle count at 0): instructions issued in *earlier*
blocks are fulfilled with no timing constraint, while instructions issued
earlier in the *current* pass constrain their successors by
``start + weight`` where ``weight`` is ``E(src) + delay`` for flow edges
and 0 for anti/output/memory edges (which only require issue order).
"""

from __future__ import annotations

from ..ir.instruction import Instruction
from ..machine.model import MachineModel
from ..pdg.data_deps import DataDependenceGraph, DepEdge, DepKind


class DependenceState:
    """Fulfilment and earliest-start tracking over one region's DDG."""

    def __init__(self, ddg: DataDependenceGraph, machine: MachineModel):
        self.ddg = ddg
        self.machine = machine
        self._fulfilled: set[int] = set()
        #: start cycles of instructions issued in the *current* block pass
        self._local_start: dict[int, int] = {}
        #: shifted start cycles carried over from the previous block pass
        #: (negative values: "issued that many cycles before this block")
        self._carry_start: dict[int, int] = {}

    def edge_weight(self, edge: DepEdge) -> int:
        """Minimum start-to-start separation the edge imposes."""
        if edge.kind is DepKind.FLOW:
            return self.machine.exec_time(edge.src) + edge.delay
        return 0

    # -- pass lifecycle -----------------------------------------------------

    def begin_block(self, *, carry_cycles: int | None = None) -> None:
        """Start a new block pass.

        With ``carry_cycles`` (the schedule length of the pass that just
        ended, when that block is a control-flow predecessor of the new
        one), the previous pass's issue times are carried over shifted by
        that length: an instruction issued at its local cycle ``c``
        appears to the new pass as issued at ``c - carry_cycles``.  This
        makes delays that straddle the block boundary visible -- e.g. a
        compare at the end of the predecessor holds this block's branch
        back for the remaining delay cycles, which is exactly the window
        the rotated-loop second pass fills with next-iteration instructions
        (the paper's partial software pipelining).  Older passes stop
        constraining timing entirely.
        """
        if carry_cycles is None:
            self._carry_start = {}
        else:
            self._carry_start = {
                key: start - carry_cycles
                for key, start in self._local_start.items()
            }
        self._local_start.clear()

    # -- state transitions ------------------------------------------------------

    def mark_prefulfilled(self, ins: Instruction) -> None:
        """``ins`` completed in an earlier block (or is an abstract-loop
        barrier whose node was passed): fulfilled, timing-neutral."""
        self._fulfilled.add(id(ins))

    def mark_issued(self, ins: Instruction, cycle: int) -> None:
        self._fulfilled.add(id(ins))
        self._local_start[id(ins)] = cycle

    # -- queries -----------------------------------------------------------------

    def is_fulfilled(self, ins: Instruction) -> bool:
        return id(ins) in self._fulfilled

    def deps_satisfied(self, ins: Instruction) -> bool:
        """Are all dependence predecessors of ``ins`` fulfilled?"""
        return all(
            id(edge.src) in self._fulfilled for edge in self.ddg.preds(ins)
        )

    def earliest_start(self, ins: Instruction) -> int:
        """Earliest cycle ``ins`` may start in the current pass, assuming
        :meth:`deps_satisfied`.  Pre-fulfilled predecessors contribute 0."""
        earliest = 0
        for edge in self.ddg.preds(ins):
            start = self._local_start.get(id(edge.src))
            if start is None:
                start = self._carry_start.get(id(edge.src))
            if start is not None:
                earliest = max(earliest, start + self.edge_weight(edge))
        return earliest

    def start_of(self, ins: Instruction) -> int | None:
        """Issue cycle within the current pass (None if not issued here)."""
        return self._local_start.get(id(ins))
