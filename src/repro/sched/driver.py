"""Function-level global-scheduling driver.

Ties region identification, liveness, and per-region scheduling together:
regions are visited innermost first, every upward motion's liveness effect
is shared across regions through one mutable live-on-exit map, and the
Section 6 policy filters (two inner levels only, small regions only,
reducible only) can be switched on or off.

The full compilation flow of Section 6 (unroll, schedule, rotate, schedule
again, post-pass block scheduling) lives in :mod:`repro.xform.pipeline`;
this module is the reusable "schedule all regions once" step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow.cache import AnalysisCache
from ..ir.function import Function
from ..ir.operand import Reg, RegClass
from ..machine.model import MachineModel
from ..obs.events import RegionSkipped
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from .candidates import ScheduleLevel
from .global_sched import RegionScheduleReport, schedule_region
from .regions import RegionSpec, build_region_pdg, find_regions, region_is_reducible
from .speculation import LiveOnExitTracker


@dataclass
class GlobalScheduleReport:
    """Aggregate of one global-scheduling sweep over a function."""

    level: ScheduleLevel
    regions: list[RegionScheduleReport] = field(default_factory=list)
    skipped_regions: list[str] = field(default_factory=list)

    @property
    def motions(self):
        return [m for r in self.regions for m in r.motions]

    @property
    def useful_motions(self):
        return [m for m in self.motions if not m.speculative]

    @property
    def speculative_motions(self):
        return [m for m in self.motions if m.speculative]


def default_live_at_exit(func: Function) -> frozenset[Reg]:
    """Conservative function-exit liveness: every general-purpose and
    floating point register the function mentions may be observed by the
    caller.  Condition registers are excluded -- they carry branch
    conditions consumed within the function.  Callers that know better
    (the mini-C front end does) should pass an explicit set.
    """
    regs: set[Reg] = set()
    for ins in func.instructions():
        for reg in (*ins.reg_defs(), *ins.reg_uses()):
            if reg.rclass in (RegClass.GPR, RegClass.FPR):
                regs.add(reg)
    return frozenset(regs)


def global_schedule(
    func: Function,
    machine: MachineModel,
    level: ScheduleLevel,
    *,
    live_at_exit: frozenset[Reg] | None = None,
    max_speculation: int = 1,
    rename_on_demand: bool = True,
    apply_size_limits: bool = True,
    inner_levels_only: bool = True,
    region_filter=None,
    priority_fn=None,
    allow_duplication: bool = False,
    block_filter=None,
    analyses: AnalysisCache | None = None,
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
) -> GlobalScheduleReport:
    """Globally schedule every eligible region of ``func`` in place.

    ``region_filter`` -- an optional predicate over :class:`RegionSpec` --
    restricts the sweep; the pipeline uses it to schedule only the inner
    regions in its first pass and only the rotated loops plus outer regions
    in its second.

    ``analyses`` -- an optional :class:`AnalysisCache` for ``func``; region
    finding, the reducibility check and the initial liveness solution all
    draw from it (one CFG/dominator build per sweep instead of three, and
    reuse across sweeps when the caller invalidates correctly).  The caller
    must invalidate its liveness afterwards: this sweep moves instructions.
    """
    report = GlobalScheduleReport(level=level)
    if level is ScheduleLevel.NONE:
        return report
    if analyses is None:
        analyses = AnalysisCache(func)

    regions = find_regions(func, analyses)
    if regions and not region_is_reducible(func, regions[0], analyses):
        report.skipped_regions = [r.header_node for r in regions]
        if tracer.enabled:
            for r in regions:
                tracer.emit(RegionSkipped(header=r.header_node,
                                          reason="irreducible"))
        if metrics.enabled:
            metrics.inc("sched.regions.skipped", len(regions))
        return report

    if live_at_exit is None:
        live_at_exit = default_live_at_exit(func)
    live_out_map = analyses.liveness(live_at_exit).live_out_map()
    # one interning cache for the whole function: every region's tracker
    # shares the same live-out store, so label masks built for one region
    # stay valid for the next (the dual-write invariant is store-wide).
    # The register half is the AnalysisCache's RegTable dict -- liveness,
    # interference and the trackers then agree on bit positions and the
    # function is interned once per lifetime, not once per sweep; the
    # label-mask half must stay per-sweep (live_out_map is a fresh
    # mutable copy each sweep)
    intern_cache = (analyses.reg_table().bit, {})

    for spec in regions:
        if region_filter is not None and not region_filter(spec):
            if tracer.enabled:
                tracer.emit(RegionSkipped(header=spec.header_node,
                                          reason="filtered"))
            continue
        reason = _ineligible_reason(spec, func, apply_size_limits,
                                    inner_levels_only)
        if reason is not None:
            report.skipped_regions.append(spec.header_node)
            if tracer.enabled:
                tracer.emit(RegionSkipped(header=spec.header_node,
                                          reason=reason))
            if metrics.enabled:
                metrics.inc("sched.regions.skipped")
            continue
        pdg = build_region_pdg(func, machine, spec)
        tracker = LiveOnExitTracker(live_out_map, pdg.forward,
                                    metrics=metrics,
                                    intern_cache=intern_cache)
        region_report = schedule_region(
            pdg, level, tracker,
            max_speculation=max_speculation,
            rename_on_demand=rename_on_demand,
            priority_fn=priority_fn,
            allow_duplication=allow_duplication,
            block_filter=block_filter,
            region_kind=spec.kind,
            tracer=tracer,
            metrics=metrics,
        )
        report.regions.append(region_report)
    return report


def _ineligible_reason(spec: RegionSpec, func: Function,
                       apply_size_limits: bool,
                       inner_levels_only: bool) -> str | None:
    """The Section 6 prototype policy; None means "schedule it", anything
    else names why the region is skipped (reported and traced)."""
    if not spec.member_labels:
        return "empty"
    if apply_size_limits and not spec.is_small(func):
        return "too-large"
    if inner_levels_only:
        # "Only two inner levels of regions are scheduled": a region
        # qualifies when it encloses no other region (inner) or only
        # regions that are themselves inner (outer).
        two_levels = (not spec.subloops) or all(
            not sub.children for sub in spec.subloops
        )
        if not two_levels:
            return "too-deep"
    return None
