"""The scheduling heuristics of Section 5.2.

Two integer functions are computed *locally* (within each basic block) for
every instruction, by visiting instructions after their data-dependence
successors:

* ``D(I)`` -- the *delay heuristic*: how many delay slots may occur on a
  path from ``I`` to the end of its block::

      D(I) = max(D(J_k) + d(I, J_k))        (0 if no successors)

* ``CP(I)`` -- the *critical path heuristic*: how long completing
  everything that depends on ``I`` (including ``I``) would take with
  unbounded units::

      CP(I) = max(CP(J_k) + d(I, J_k)) + E(I)     (E(I) if no successors)

The decision order between two ready instructions ``I`` and ``J`` competing
for the same unit type (Section 5.2):

1. useful before speculative (``B(I) in U(A)`` wins),
2. larger ``D``,
3. larger ``CP``,
4. original program order.

``priority_key`` encodes all four as a sortable tuple (smaller = better).
"""

from __future__ import annotations

from ..ir.basic_block import BasicBlock
from ..ir.instruction import Instruction
from ..machine.model import MachineModel
from ..pdg.data_deps import DataDependenceGraph


def local_priorities(
    block: BasicBlock,
    ddg: DataDependenceGraph,
    machine: MachineModel,
) -> dict[int, tuple[int, int]]:
    """``id(instruction) -> (D, CP)`` for one block.

    Only dependence edges *within* the block participate, per the paper
    ("computed locally (within a basic block) for every instruction").
    """
    member_ids = {id(ins) for ins in block.instrs}
    result: dict[int, tuple[int, int]] = {}
    succs = ddg.succs
    exec_time = machine.exec_time
    for ins in reversed(block.instrs):
        best_d = 0
        best_cp = 0
        for edge in succs(ins):
            key = id(edge.dst)
            if key not in member_ids:
                continue
            pair = result.get(key)
            if pair is None:
                succ_d = succ_cp = 0
            else:
                succ_d, succ_cp = pair
            delay = edge.delay
            if succ_d + delay > best_d:
                best_d = succ_d + delay
            if succ_cp + delay > best_cp:
                best_cp = succ_cp + delay
        result[id(ins)] = (best_d, best_cp + exec_time(ins))
    return result


def compute_region_priorities(
    blocks: list[BasicBlock],
    ddg: DataDependenceGraph,
    machine: MachineModel,
) -> dict[int, tuple[int, int]]:
    """Local (D, CP) for every instruction of every block of a region."""
    result: dict[int, tuple[int, int]] = {}
    for block in blocks:
        result.update(local_priorities(block, ddg, machine))
    return result


def priority_key(
    ins: Instruction,
    *,
    useful: bool,
    priorities: dict[int, tuple[int, int]],
) -> tuple[int, int, int, int]:
    """Sort key implementing the 7-step decision order (min = schedule
    first).  ``useful`` means the instruction's home block is in ``U(A)``
    (``A`` itself or a block equivalent to it)."""
    d, cp = priorities.get(id(ins), (0, machine_free_exec(ins)))
    return (0 if useful else 1, -d, -cp, ins.uid)


def full_priority_key(cand, priorities: dict[int, tuple[int, int]]):
    """The complete static decision tuple for one scheduling candidate:
    duplication class first (Definition 6 motion is the costliest, it
    ranks after useful and speculative candidates -- the paper's
    conservative order), then :func:`priority_key`.

    Every component is invariant for the duration of a block pass (a
    Section 4.2 rename keeps the uid and the precomputed D/CP), so the
    event-driven ready queue computes this exactly once per candidate at
    collection time instead of per readiness scan.
    """
    return (1 if cand.duplicate_into else 0,
            priority_key(cand.ins, useful=cand.useful,
                         priorities=priorities))


class StaticBlockPriority:
    """Marks a custom ``priority_fn`` whose keys are static per block pass
    and all-int, so the struct-of-arrays engine may pack them.

    ``schedule_region`` forces the preserved scan engine for plain
    callables (their keys could depend on mutable scheduling state); a
    function wrapped in this class promises that, like
    :func:`priority_key`, its tuple for a given instruction never changes
    within one block pass and contains only ints -- exactly what
    :func:`repro.sched.soa.pack_rows` needs to intern the keys at
    collection time.  The branch-profile order of
    :mod:`repro.sched.profiling` is the canonical example.
    """

    #: the engine-dispatch marker ``schedule_region`` checks
    static_block_keys = True

    def __init__(self, fn):
        self._fn = fn

    def __call__(self, ins: Instruction, *, useful: bool,
                 priorities: dict[int, tuple[int, int]]):
        return self._fn(ins, useful=useful, priorities=priorities)


def machine_free_exec(ins: Instruction) -> int:
    """Fallback CP seed when an instruction has no recorded priorities
    (e.g. freshly created by a transformation after priority computation)."""
    return ins.opcode.info.cycles


#: names of :func:`priority_key`'s components, for decision tracing
PRIORITY_STEPS = (
    "useful-before-speculative",
    "delay-heuristic",
    "critical-path",
    "source-order",
)


def deciding_step(winner_key, runner_up_key,
                  steps: tuple[str, ...] = PRIORITY_STEPS) -> str:
    """Which component of the decision order separated two sort keys.

    Keys are the tuples :func:`priority_key` (or a caller-extended form)
    produced for two competing ready instructions; the first position
    where they differ names the step that decided.  Non-tuple keys (a
    custom ``priority_fn``) report ``"custom-priority"``; equal keys are a
    ``"tie"`` (the sort was stable, so source order of the ready list
    prevailed).
    """
    if not (isinstance(winner_key, tuple) and isinstance(runner_up_key, tuple)):
        return "custom-priority"
    for name, a, b in zip(steps, winner_key, runner_up_key):
        if a != b:
            return name
    return "tie"
