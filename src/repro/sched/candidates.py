"""Candidate blocks and candidate instructions (Section 5.1).

For the block ``A`` being scheduled:

* level **useful**:       ``C(A) = EQUIV(A)``;
* level **speculative**:  ``C(A)`` additionally contains the immediate
  CSPDG successors of ``A`` and of every block in ``EQUIV(A)`` (these are
  exactly the 1-branch speculative sources).

An instruction ``I`` from a block of ``C(A)`` is a *candidate* for ``A``
iff it may move beyond basic-block boundaries at all (calls may not), and
-- when its home block is not equivalent to ``A`` -- it may be executed
speculatively (stores may not).  Branches never move (their order is
preserved), and abstract inner-loop nodes contribute nothing.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple

from ..ir.instruction import Instruction
from ..pdg.pdg import RegionPDG


class ScheduleLevel(Enum):
    """How aggressive global code motion is allowed to be."""

    #: no global motion at all (the BASE compiler: block-local only)
    NONE = "none"
    #: useful motion only: between equivalent blocks (Definition 4)
    USEFUL = "useful"
    #: useful + 1-branch speculative motion (Definition 7, n = 1)
    SPECULATIVE = "speculative"


class Candidate(NamedTuple):
    """One instruction considered for scheduling into block ``A``.

    A NamedTuple rather than a dataclass: collection builds one per
    candidate instruction per block pass, squarely on the scheduler's
    allocation path.
    """

    ins: Instruction
    home: str
    #: home is A itself or in EQUIV(A) -- the paper's ``B(I) in U(A)``
    useful: bool
    #: labels of the home block's *other* predecessors that must receive a
    #: copy if this candidate is scheduled (Definition 6: moving from B to
    #: A requires duplication when A does not dominate B); None for
    #: ordinary useful/speculative candidates
    duplicate_into: tuple[str, ...] | None = None


def candidate_blocks(
    pdg: RegionPDG, label: str, level: ScheduleLevel,
    *, max_speculation: int = 1,
    block_filter=None,
) -> tuple[list[str], list[str]]:
    """``(equivalent_blocks, speculative_blocks)`` for block ``label``.

    Only real (non-abstract) region member blocks are returned.
    ``max_speculation`` generalises the paper's 1-branch limit: blocks up
    to that CSPDG distance become speculative sources (the paper ships
    with 1; larger values are the extension explored in the ablations).

    ``block_filter(label) -> bool`` restricts the source blocks; the
    trace-scheduling comparison uses it to confine motion to a main trace
    (the paper's introduction: "trace scheduling assumes the existence of
    a main trace in the program ... global scheduling does not depend on
    such assumption").
    """
    if level is ScheduleLevel.NONE:
        return [], []

    members = pdg.member_labels
    if block_filter is not None:
        members = {b for b in members if block_filter(b)}
    equiv = [b for b in pdg.cspdg.equiv_dominated(label) if b in members]
    if level is ScheduleLevel.USEFUL:
        return equiv, []

    speculative: list[str] = []
    seen = {label, *equiv}

    def add_speculative(block: str) -> None:
        # Definition 6: moving an instruction from B to A without
        # duplication requires A to dominate B -- otherwise paths that
        # reach B around A would lose the computation (the classic case
        # is the join of an `a || b` condition, whose second test block
        # does not dominate it).  Speculation piles Definition 7's
        # live-on-exit rule *on top of* that dominance requirement.
        if (block not in seen and block in members
                and pdg.dom.strictly_dominates(label, block)):
            seen.add(block)
            speculative.append(block)

    frontier = [label, *equiv]
    for _hop in range(max_speculation):
        next_frontier: list[str] = []
        for src in frontier:
            for succ in pdg.cspdg.successors(src):
                add_speculative(succ)
                next_frontier.append(succ)
                # Blocks equivalent to (and dominated by) the successor
                # are the same number of branches away.
                for twin in pdg.cspdg.equiv_dominated(succ):
                    add_speculative(twin)
                    next_frontier.append(twin)
        frontier = next_frontier
    return equiv, speculative


def collect_candidates(
    pdg: RegionPDG,
    label: str,
    equiv: list[str],
    speculative: list[str],
) -> list[Candidate]:
    """All candidate instructions for block ``label``, own block included.

    Collection order is the scheduler's tie-break order (the event-driven
    ready queue stamps it as each candidate's sequence number): own block
    first, then equivalent homes, then speculative homes.  Foreign
    branches never appear -- ``can_move_globally`` is false for every
    branch opcode.
    """
    out: list[Candidate] = []
    append = out.append
    block = pdg.block
    for ins in block(label).instrs:
        append(Candidate(ins, label, useful=True))
    for home in equiv:
        for ins in block(home).instrs:
            if ins.opcode.can_move_globally:
                append(Candidate(ins, home, useful=True))
    for home in speculative:
        for ins in block(home).instrs:
            opcode = ins.opcode
            if opcode.can_move_globally and opcode.can_speculate:
                append(Candidate(ins, home, useful=False))
    return out


def duplication_source(pdg: RegionPDG, label: str) -> tuple[str, list[str]] | None:
    """The join block ``label`` may pull instructions from, if any.

    Definition 6's restricted-but-sound form: block ``A`` may take an
    instruction from its successor ``S`` (a join ``A`` does not dominate)
    provided copies go to every other predecessor of ``S``.  That is
    semantics-preserving with *no* extra liveness analysis when control
    can only flow from each predecessor into ``S``:

    * ``A``'s only successor is ``S`` (the moved copy runs iff ``S`` ran
      via ``A``),
    * every other predecessor of ``S`` likewise has ``S`` as its sole
      successor (each copy runs iff ``S`` ran via that predecessor),
    * all of them live in the current region and ``S`` is not the region
      header (instructions never cross region boundaries, and back edges
      would smuggle copies out of the iteration).

    Returns ``(S, other_predecessors)`` or None.
    """
    func = pdg.func
    members = pdg.member_labels
    if label not in members:
        return None
    block = func.block(label)
    succs = func.successors(block)
    if len(succs) != 1 or func.falls_off_end(block):
        return None
    join = succs[0]
    if join.label not in members or join.label == pdg.header:
        return None
    preds = func.predecessors_map()[join.label]
    if len(preds) < 2 or not any(p.label == label for p in preds):
        return None
    others: list[str] = []
    for pred in preds:
        if pred.label == label:
            continue
        if pred.label not in members:
            return None
        if len(func.successors(pred)) != 1 or func.falls_off_end(pred):
            return None
        others.append(pred.label)
    return join.label, others


def collect_duplication_candidates(
    pdg: RegionPDG, label: str
) -> list[Candidate]:
    """Candidates reachable only through duplication (Definition 6)."""
    source = duplication_source(pdg, label)
    if source is None:
        return []
    join, others = source
    dup = tuple(others)
    out: list[Candidate] = []
    for ins in pdg.block(join).body:
        if ins.opcode.can_move_globally:
            # stores are fine: each path still executes the (copied)
            # store exactly once, in the same position relative to its
            # path's other memory operations
            out.append(Candidate(ins, join, useful=False,
                                 duplicate_into=dup))
    return out
