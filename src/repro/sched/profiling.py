"""Profile-guided speculation (Section 1's branch-probability hook).

"[G]lobal scheduling is capable of taking advantage of the branch
probabilities, whenever available (e.g. computed by profiling)."  The
paper does not use profiles in its prototype; this module supplies the
hook as an extension:

* :class:`BranchProfile` counts block executions over one or more
  functional-executor runs (the classic compile/run/recompile loop);
* :func:`make_profile_priority_fn` builds a Section 5.2-compatible
  priority function in which *speculative* candidates are additionally
  ranked by how often their home block actually executes -- a gamble on a
  90%-taken branch beats one on a 10%-taken branch with the same delay
  heuristic.

Useful candidates are unaffected (they execute unconditionally relative to
the target block, probability 1 by construction), so with a uniform
profile the ordering degenerates to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..sim.executor import ExecutionResult
from .heuristics import StaticBlockPriority

#: number of probability buckets; coarse so D/CP still break near-ties
_BUCKETS = 8


@dataclass
class BranchProfile:
    """Execution counts per basic block, from profiling runs."""

    block_counts: dict[str, int] = field(default_factory=dict)
    runs: int = 0

    @classmethod
    def from_executions(cls, executions: list[ExecutionResult]
                        ) -> "BranchProfile":
        profile = cls()
        for execution in executions:
            profile.record(execution)
        return profile

    def record(self, execution: ExecutionResult) -> None:
        """Fold one run's block trace into the counts."""
        self.runs += 1
        for label in execution.block_trace:
            self.block_counts[label] = self.block_counts.get(label, 0) + 1

    def count(self, label: str) -> int:
        return self.block_counts.get(label, 0)

    def relative_frequency(self, label: str, reference: str) -> float:
        """``count(label) / count(reference)``, clamped to [0, 1]."""
        ref = self.count(reference)
        if ref <= 0:
            return 0.0
        return min(1.0, self.count(label) / ref)

    def hottest(self) -> str | None:
        if not self.block_counts:
            return None
        return max(self.block_counts, key=self.block_counts.get)

    def __bool__(self) -> bool:
        return bool(self.block_counts)


def select_main_trace(profile: BranchProfile, func: Function,
                      header: str, members: set[str]) -> list[str]:
    """The trace-scheduling view of a region: the single hottest path.

    Starting at the region header, repeatedly follow the most-executed
    successor inside the region until a block repeats or the region is
    left.  Used by the trace-scheduling comparison (the paper's
    introduction discusses [F81] as the main alternative: it "assumes the
    existence of a main trace in the program (which is likely in
    scientific computations, but may not be true in symbolic or Unix-type
    programs)").
    """
    trace: list[str] = []
    seen: set[str] = set()
    label = header
    while label in members and label not in seen:
        trace.append(label)
        seen.add(label)
        block = func.block(label)
        successors = [s.label for s in func.successors(block)
                      if s.label in members]
        if not successors:
            break
        label = max(successors, key=profile.count)
    return trace


def make_profile_priority_fn(profile: BranchProfile, func: Function):
    """A drop-in ``priority_fn`` for :func:`repro.sched.global_schedule`.

    Decision order: useful-before-speculative (unchanged), then -- for
    speculative candidates only -- the home block's execution frequency
    bucket, then the paper's D, CP, and original order.  Frequencies are
    normalised against the hottest block so loop nests keep sensible
    relative weights.

    The returned function is a
    :class:`~repro.sched.heuristics.StaticBlockPriority`: every component
    (bucket included -- homes and counts are snapshotted here) is an int
    fixed for the duration of a block pass, so the struct-of-arrays
    engine packs these keys instead of falling back to the scan loop.
    """
    home_of = {id(ins): block.label
               for block in func.blocks for ins in block.instrs}
    hottest = profile.hottest()
    peak = profile.count(hottest) if hottest is not None else 0

    def bucket_of(ins) -> int:
        if peak <= 0:
            return _BUCKETS
        label = home_of.get(id(ins))
        if label is None:
            return 0
        return round(_BUCKETS * profile.count(label) / peak)

    def priority_fn(ins, *, useful, priorities):
        d, cp = priorities.get(id(ins), (0, 1))
        bucket = _BUCKETS if useful else bucket_of(ins)
        return (0 if useful else 1, -bucket, -d, -cp, ins.uid)

    return StaticBlockPriority(priority_fn)
