"""Speculative-motion legality via live-on-exit registers (Section 5.3).

Data dependences alone do not stop two sibling definitions (the paper's
``x=5`` / ``x=3`` example) from both moving above their branch.  The rule:
an instruction may not move speculatively into block ``B`` if it defines a
register that is *live on exit* from ``B`` -- and this information must be
updated *dynamically*: once ``x=5`` moves into ``B1``, ``x`` becomes live
on exit of ``B1``, which then blocks ``x=3``.

The tracker holds a mutable copy of the liveness solution and applies the
dynamic updates: after moving ``I`` (defining ``R``) from ``B`` up to
``A``, ``R`` becomes live on exit of ``A`` and of every block on a forward
path from ``A`` to ``B``.

Two dense interned layers keep the hot queries off Python sets:

* block labels -> bit positions with per-node reachability masks, so the
  "blocks between source and target" of :meth:`~LiveOnExitTracker.record_motion`
  is one mask intersection;
* registers -> bit positions with a per-label live-on-exit *bitmask*
  maintained alongside the canonical sets, so the Section 5.3 veto
  :meth:`~LiveOnExitTracker.blocks_motion` is one AND of two ints instead
  of a set-membership loop.  The sets remain authoritative (they are the
  function-wide store shared across region passes); masks are built
  lazily per label and dual-written on every motion.
"""

from __future__ import annotations

from ..cfg.digraph import Digraph
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from ..machine.model import MachineModel
from ..obs.metrics import NULL_METRICS
from ..pdg.data_deps import DataDependenceGraph, DepKind


class LiveOnExitTracker:
    """Dynamically-updated live-on-exit sets for one region.

    :meth:`record_motion` is on the scheduler's issue path (every upward
    motion calls it), so the "blocks between source and target" query is
    answered from per-region reachability bitsets: block labels are
    interned to dense bit positions on first use, each node gets a
    downstream mask (all nodes reachable from it) and an upstream mask
    (all nodes that reach it, the transpose), and the between-set is one
    mask intersection -- instead of two full graph traversals per motion
    (preserved in
    :class:`repro.sched.reference.LiveOnExitTrackerReference`).
    """

    def __init__(self, live_out: dict[str, set[Reg]], forward: Digraph,
                 metrics=NULL_METRICS, intern_cache=None):
        """``live_out`` maps block label -> registers live on exit (a
        mutable copy; :meth:`repro.dataflow.LivenessInfo.live_out_map`
        provides one).  ``forward`` is the region's forward CFG, used to
        find the blocks between a motion's source and target.

        ``intern_cache`` is an optional ``(regbit, rmask)`` pair shared
        by every tracker over the *same* ``live_out`` store: label masks
        then survive across regions instead of being re-interned per
        tracker.  Safe because all mutations of the store go through a
        tracker (the dual-write invariant below is store-wide)."""
        self._live_out = live_out
        self._forward = forward
        self._m = metrics if metrics.enabled else None
        self._reverse: Digraph | None = None  # fallback path only
        self._bit: dict | None = None   # label -> dense bit position
        self._labels: tuple = ()        # bit position -> label
        self._down: list[int] = []      # node -> mask reachable from it
        self._up: list[int] = []        # node -> mask reaching it
        #: register interning for the live-on-exit bitmasks.  Invariant:
        #: for every label in ``_rmask``, the mask equals the OR of the
        #: interned bits of that label's canonical set, and every register
        #: of that set is interned (``_mask_of`` interns on build,
        #: ``record_motion`` dual-writes set and mask).
        if intern_cache is None:
            self._regbit: dict[Reg, int] = {}
            self._rmask: dict[str, int] = {}
        else:
            self._regbit, self._rmask = intern_cache

    def live_out_of(self, label: str) -> set[Reg]:
        return self._live_out.setdefault(label, set())

    def _mask_of(self, label: str) -> int:
        """The label's live-on-exit set as an int bitmask (lazily built;
        interns every register of the set)."""
        mask = self._rmask.get(label)
        if mask is None:
            regbit = self._regbit
            mask = 0
            for reg in self._live_out.get(label, ()):
                bit = regbit.get(reg)
                if bit is None:
                    bit = len(regbit)
                    regbit[reg] = bit
                mask |= 1 << bit
            self._rmask[label] = mask
        return mask

    def blocks_motion(self, ins: Instruction, target: str) -> bool:
        """Would moving ``ins`` speculatively into ``target`` clobber a
        live register?  (Definition of illegality, Section 5.3.)

        Answered as ``defs_mask & live_mask``: a register of ``ins`` with
        no interned bit cannot be in the target's set (building the
        target's mask interned that whole set, and later insertions
        intern through :meth:`record_motion`)."""
        mask = self._mask_of(target)
        if self._m is not None:
            self._m.inc("sched.soa.mask_queries")
        if not mask:
            return False
        regbit = self._regbit
        for reg in ins.reg_defs():
            bit = regbit.get(reg)
            if bit is not None and (mask >> bit) & 1:
                return True
        return False

    def blocking_regs(self, ins: Instruction, target: str) -> tuple[Reg, ...]:
        """The registers that make :meth:`blocks_motion` true -- the
        live-on-exit defs a veto is attributable to.  Off the hot path;
        tracing uses it to name the rejection reason."""
        live = self._live_out.get(target, set())
        return tuple(reg for reg in ins.reg_defs() if reg in live)

    def record_motion(self, ins: Instruction, src: str, dst: str) -> None:
        """Update liveness after ``ins`` moved from ``src`` into ``dst``.

        Every register ``ins`` defines becomes live on exit of ``dst`` and
        of every intermediate block on a forward path ``dst -> ... -> src``
        (exclusive of ``src``, whose own exit liveness is unchanged).
        Called for *every* upward motion, speculative or useful -- either
        way the moved definition's live range now spans the gap.
        """
        defs = ins.reg_defs()
        if not defs:
            return
        if self._bit is None:
            self._build_masks()
        bit_src = self._bit.get(src)
        bit_dst = self._bit.get(dst)
        if bit_src is None or bit_dst is None:
            self._record_motion_traversal(defs, src, dst)
            return
        # blocks on a forward path dst -> ... -> src, minus src, plus dst
        mask = self._down[bit_dst] & self._up[bit_src]
        mask &= ~(1 << bit_src)
        mask |= 1 << bit_dst
        defbits = self._defbits(defs)
        labels = self._labels
        live_out = self._live_out
        rmask = self._rmask
        if self._m is not None:
            self._m.inc("sched.soa.mask_updates")
        while mask:
            low = mask & -mask
            mask ^= low
            label = labels[low.bit_length() - 1]
            live = live_out.get(label)
            if live is None:
                live_out[label] = set(defs)
            else:
                live.update(defs)
            if label in rmask:
                rmask[label] |= defbits

    def _build_masks(self) -> None:
        """Intern the forward graph's labels to dense bits and precompute
        per-node downstream/upstream reachability masks (both include the
        node itself, matching ``Digraph.reachable_from``)."""
        nodes = self._forward.nodes
        bit = {label: pos for pos, label in enumerate(nodes)}
        succ_bits = [
            [bit[succ] for succ in self._forward.succs(label)]
            for label in nodes
        ]
        count = len(nodes)
        down = [0] * count
        for pos in range(count):
            seen = 1 << pos
            stack = [pos]
            while stack:
                here = stack.pop()
                for nxt in succ_bits[here]:
                    nxt_bit = 1 << nxt
                    if not (seen & nxt_bit):
                        seen |= nxt_bit
                        stack.append(nxt)
            down[pos] = seen
        up = [0] * count
        for pos in range(count):
            mask = down[pos]
            pos_bit = 1 << pos
            while mask:
                low = mask & -mask
                mask ^= low
                up[low.bit_length() - 1] |= pos_bit
        self._bit = bit
        self._labels = tuple(nodes)
        self._down = down
        self._up = up

    def _defbits(self, defs) -> int:
        """The defined registers as an interned bitmask (assigns bits)."""
        regbit = self._regbit
        bits = 0
        for reg in defs:
            bit = regbit.get(reg)
            if bit is None:
                bit = len(regbit)
                regbit[reg] = bit
            bits |= 1 << bit
        return bits

    def _record_motion_traversal(self, defs, src: str, dst: str) -> None:
        """Traversal fallback for labels outside the interned graph
        (identical to the seed tracker's behaviour, plus the bitmask
        dual-write)."""
        if self._reverse is None:
            self._reverse = self._forward.reversed()
        downstream = self._forward.reachable_from(dst)
        upstream = self._reverse.reachable_from(src)
        between = (downstream & upstream) - {src}
        between.add(dst)
        defbits = self._defbits(defs)
        rmask = self._rmask
        for label in between:
            live = self._live_out.setdefault(label, set())
            live.update(defs)
            if label in rmask:
                rmask[label] |= defbits


def try_rename_for_motion(
    ins: Instruction,
    home: BasicBlock,
    target_label: str,
    live_tracker: LiveOnExitTracker,
    ddg: DataDependenceGraph,
    func: Function,
    machine: MachineModel,
) -> bool:
    """Rename ``ins``'s conflicting definitions to unblock a speculative
    motion, if legal.  Returns True when ``ins`` no longer clobbers a
    register live on exit from ``target_label``.

    This reproduces the paper's on-demand flavour of renaming ("the XL
    compiler does certain renaming of registers, which is similar to the
    effect of the static single assignment form", Section 4.2): in Figure 6
    the speculative twin of I5 gets its condition register renamed
    (``cr6 -> cr5``) so both compares can sit in BL1, while defs whose
    values escape their home block are left alone.

    A definition ``R`` may be renamed iff its def-use web is closed inside
    the home block: every use reached by this def sits in ``home`` after
    ``ins``, i.e. ``R`` is not live on exit of ``home`` unless a later def
    of ``R`` inside ``home`` cuts the web off.
    """
    live = live_tracker.live_out_of(target_label)
    conflicting = [r for r in ins.reg_defs() if r in live]
    if not conflicting:
        return True
    position = home.index_of(ins)
    for reg in conflicting:
        if not _web_is_local(home, position, reg, live_tracker):
            return False
    for reg in conflicting:
        _rename_web(ins, home, position, reg, func, ddg, machine)
    return not any(r in live for r in ins.reg_defs())


def _web_is_local(home: BasicBlock, position: int, reg: Reg,
                  live_tracker: LiveOnExitTracker) -> bool:
    """Does the def of ``reg`` at ``position`` reach only uses inside
    ``home``?  True if a later def cuts it off, or the register is dead on
    exit of the home block."""
    for ins in home.instrs[position + 1:]:
        if reg in ins.reg_defs():
            return True  # web ends at the next definition
    return reg not in live_tracker.live_out_of(home.label)


def _rename_web(ins: Instruction, home: BasicBlock, position: int, reg: Reg,
                func: Function, ddg: DataDependenceGraph,
                machine: MachineModel) -> None:
    """Give the local def-use web of ``reg`` rooted at ``ins`` a fresh name
    and drop the anti/output dependence edges the old name induced."""
    fresh = func.new_reg(reg.rclass)
    ins.defs = tuple(fresh if r == reg else r for r in ins.defs)
    renamed_users: list[Instruction] = []
    for user in home.instrs[position + 1:]:
        if reg in user.reg_uses():
            user.rename_uses_of(reg, fresh)
            renamed_users.append(user)
        if reg in user.reg_defs():
            break
    # Anti/output edges into `ins` on the old name are now spurious; so are
    # output edges out of it.  Refresh those pairs from current operands.
    # succs()/preds() are live views and _refresh_pair mutates the graph,
    # so snapshot both before walking them.
    for edge in tuple(ddg.preds(ins)):
        if edge.kind in (DepKind.ANTI, DepKind.OUTPUT):
            _refresh_pair(ddg, edge.src, ins, machine)
    for edge in tuple(ddg.succs(ins)):
        if edge.kind is DepKind.OUTPUT:
            _refresh_pair(ddg, ins, edge.dst, machine)


def _refresh_pair(ddg: DataDependenceGraph, src: Instruction,
                  dst: Instruction, machine: MachineModel) -> None:
    """Recompute the (single, strongest) dependence edge src -> dst from the
    instructions' current operands, conservatively for memory."""
    existing = ddg.edge(src, dst)
    if existing is not None:
        ddg.remove_edge(existing)
    src_defs = set(src.reg_defs())
    src_uses = set(src.reg_uses())
    for reg in dst.reg_uses():
        if reg in src_defs:
            ddg.add_edge(src, dst, DepKind.FLOW,
                         machine.flow_delay(src, dst, reg), reg)
    for reg in dst.reg_defs():
        if reg in src_uses:
            ddg.add_edge(src, dst, DepKind.ANTI, 0, reg)
        if reg in src_defs:
            ddg.add_edge(src, dst, DepKind.OUTPUT, 0, reg)
    if (src.touches_memory and dst.touches_memory
            and (src.writes_memory or dst.writes_memory)):
        ddg.add_edge(src, dst, DepKind.MEM, 0)
