"""The basic-block list scheduler (after Warren [W90]).

The paper uses it twice: it *is* the BASE compiler's scheduler, and it runs
as a post-pass over every block after global scheduling because "the global
decisions are not necessarily optimal in a local context" (Section 5.1).

It is a classic cycle-driven list scheduler over the intra-block DDG, using
the same D/CP heuristics as the global scheduler (without the useful/
speculative class, which is meaningless inside one block).  A trailing
branch stays the terminator.

The inner loop runs on the dense substrate: the block's
:class:`~repro.pdg.data_deps.DenseDDG` snapshot (dense index ==
block position), priority keys packed to single ints
(:func:`repro.sched.soa.pack_rows`), unfulfilled-predecessor counts and
earliest starts in flat lists, and readiness kept incrementally -- issuing
an instruction classifies each successor once instead of rescanning every
pending instruction per issue.  Selection is an argmin scan of the (small)
ready list; keys are unique (position is a field), so this equals the
seed's stable sort.  The seed's rescan implementation is preserved
verbatim as :func:`repro.sched.reference.schedule_block_reference` and the
equivalence suite holds the two byte-identical.
"""

from __future__ import annotations

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..machine.model import MachineModel
from ..pdg.data_deps import build_block_ddg
from .heuristics import local_priorities
from .ready import DependenceState  # noqa: F401  (seed_pipeline patch seam)
from .soa import _UNIT_INDEX, pack_rows

_MAX_STALL = 10_000


def _initial_blocked(dense) -> list[int]:
    """Unfulfilled-predecessor count per dense index.

    The readiness authority of the block pass; a separate function so
    fault-injection tests can break it (the dict-state analogue is
    patching ``DependenceState.deps_satisfied``).
    """
    blocked = [0] * dense.n
    for j in dense.succ_idx:
        blocked[j] += 1
    return blocked


def schedule_block(block: BasicBlock, machine: MachineModel) -> int:
    """Reorder ``block`` in place; returns the local schedule length."""
    instrs = block.instrs
    if not instrs:
        return 0
    if len(instrs) == 1:
        return machine.exec_time(instrs[0])

    ddg = build_block_ddg(block, machine)
    dense = ddg.to_dense(machine)
    n = dense.n
    succ_off = dense.succ_off
    succ_idx = dense.succ_idx
    succ_w = dense.succ_w

    # Final tie-break: the *incoming* order.  When this runs as the
    # post-pass after global scheduling, the incoming order encodes the
    # global decisions (e.g. useful-before-speculative), which purely
    # local D/CP values cannot reconstruct; when it runs as the BASE
    # scheduler, the incoming order is original program order anyway.
    priorities = local_priorities(block, ddg, machine)
    rows = []
    for i, ins in enumerate(instrs):
        d, cp = priorities.get(id(ins), (0, 0))
        rows.append((-d, -cp, i))
    pkey = pack_rows(rows)
    unit_of = [_UNIT_INDEX[ins.unit] for ins in instrs]
    unit_counts = [machine.unit_count(unit) for unit in _UNIT_INDEX]

    term = block.terminator
    term_idx = dense.index[id(term)] if term is not None else -1

    blocked = _initial_blocked(dense)
    earliest = [0] * n
    ready = [i for i in range(n) if blocked[i] == 0 and i != term_idx]
    #: future cycle -> indices whose dependences are met but whose
    #: earliest start is that cycle (final once blocked hits zero: the
    #: DDG has one edge per pair, so the last decrement and the last
    #: earliest fold happen together)
    wheel: dict[int, list[int]] = {}
    term_waiting = blocked[term_idx] == 0 if term_idx >= 0 else False

    issued: list = []
    left = n
    cycle = 0
    stall = 0
    while left:
        due = wheel.pop(cycle, None)
        if due is not None:
            ready.extend(due)
        free = list(unit_counts)
        budget = machine.total_issue_width
        issued_this_cycle = False
        while budget > 0 and ready:
            # argmin over the ready list, skipping full units -- the
            # seed sorts the whole ready list and takes the first with
            # a free unit; keys are unique so argmin is identical.  The
            # earliest-start gate mirrors the seed's per-scan timing
            # check: admission (initial / wheel / same-cycle classify)
            # already guarantees it, but it keeps timing authoritative
            # if the readiness counters are broken (fault injection)
            best = -1
            best_key = 0
            for k, i in enumerate(ready):
                if free[unit_of[i]] <= 0 or earliest[i] > cycle:
                    continue
                key = pkey[i]
                if best < 0 or key < best_key:
                    best = k
                    best_key = key
            if best < 0:
                break
            i = ready[best]
            ready[best] = ready[-1]
            ready.pop()
            free[unit_of[i]] -= 1
            budget -= 1
            issued.append(instrs[i])
            left -= 1
            issued_this_cycle = True
            for e in range(succ_off[i], succ_off[i + 1]):
                j = succ_idx[e]
                bound = cycle + succ_w[e]
                if bound > earliest[j]:
                    earliest[j] = bound
                count = blocked[j] - 1
                blocked[j] = count
                if count == 0:
                    if j == term_idx:
                        term_waiting = True
                    elif earliest[j] <= cycle:
                        ready.append(j)
                    else:
                        wheel.setdefault(earliest[j], []).append(j)
            if left == 1 and term_waiting:
                # the terminator is last: admit it to the current or a
                # future cycle according to its earliest start
                if earliest[term_idx] <= cycle:
                    ready.append(term_idx)
                else:
                    wheel.setdefault(earliest[term_idx], []).append(term_idx)
        if not left:
            break
        stall = 0 if issued_this_cycle else stall + 1
        if stall > _MAX_STALL:
            raise RuntimeError(
                f"basic-block scheduler stalled in {block.label}")
        cycle += 1

    block.instrs = issued
    return cycle + 1


def schedule_function_blocks(func: Function,
                             machine: MachineModel) -> dict[str, int]:
    """Apply the basic-block scheduler to every block of ``func``.

    Returns the local schedule length per block label.
    """
    return {
        block.label: schedule_block(block, machine)
        for block in func.blocks
    }
