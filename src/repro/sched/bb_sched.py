"""The basic-block list scheduler (after Warren [W90]).

The paper uses it twice: it *is* the BASE compiler's scheduler, and it runs
as a post-pass over every block after global scheduling because "the global
decisions are not necessarily optimal in a local context" (Section 5.1).

It is a classic cycle-driven list scheduler over the intra-block DDG, using
the same D/CP heuristics as the global scheduler (without the useful/
speculative class, which is meaningless inside one block).  A trailing
branch stays the terminator.
"""

from __future__ import annotations

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import UnitType
from ..machine.model import MachineModel
from ..pdg.data_deps import build_block_ddg
from .heuristics import local_priorities
from .ready import DependenceState

_MAX_STALL = 10_000


def schedule_block(block: BasicBlock, machine: MachineModel) -> int:
    """Reorder ``block`` in place; returns the local schedule length."""
    if not block.instrs:
        return 0
    if len(block.instrs) == 1:
        return machine.exec_time(block.instrs[0])

    ddg = build_block_ddg(block, machine)
    priorities = local_priorities(block, ddg, machine)
    state = DependenceState(ddg, machine)
    state.begin_block()
    # Final tie-break: the *incoming* order.  When this runs as the
    # post-pass after global scheduling, the incoming order encodes the
    # global decisions (e.g. useful-before-speculative), which purely
    # local D/CP values cannot reconstruct; when it runs as the BASE
    # scheduler, the incoming order is original program order anyway.
    position = {id(ins): i for i, ins in enumerate(block.instrs)}

    terminator = block.terminator
    remaining = {id(ins) for ins in block.instrs}
    issued: list[Instruction] = []

    cycle = 0
    stall = 0
    while remaining:
        free = {unit: machine.unit_count(unit) for unit in UnitType}
        budget = machine.total_issue_width
        progress = True
        issued_this_cycle = False
        while progress and budget > 0:
            progress = False
            ready = []
            for ins in block.instrs:
                if id(ins) not in remaining:
                    continue
                if ins is terminator and remaining != {id(ins)}:
                    continue
                if not state.deps_satisfied(ins):
                    continue
                if state.earliest_start(ins) > cycle:
                    continue
                ready.append(ins)
            ready.sort(key=lambda i: _key(i, priorities, position))
            for ins in ready:
                if free.get(ins.unit, 0) <= 0:
                    continue
                free[ins.unit] -= 1
                budget -= 1
                state.mark_issued(ins, cycle)
                issued.append(ins)
                remaining.discard(id(ins))
                progress = True
                issued_this_cycle = True
                break
        if not remaining:
            break
        stall = 0 if issued_this_cycle else stall + 1
        if stall > _MAX_STALL:
            raise RuntimeError(
                f"basic-block scheduler stalled in {block.label}")
        cycle += 1

    block.instrs = issued
    return cycle + 1


def _key(ins: Instruction, priorities: dict[int, tuple[int, int]],
         position: dict[int, int]):
    d, cp = priorities.get(id(ins), (0, 0))
    return (-d, -cp, position[id(ins)])


def schedule_function_blocks(func: Function,
                             machine: MachineModel) -> dict[str, int]:
    """Apply the basic-block scheduler to every block of ``func``.

    Returns the local schedule length per block label.
    """
    return {
        block.label: schedule_block(block, machine)
        for block in func.blocks
    }
