"""Struct-of-arrays storage for the scheduler hot core.

The event-driven engine of :mod:`repro.sched.global_sched` used to run on
identity-keyed dicts of mutable entry objects; every heap operation,
dependence-counter update and readiness query paid Python object overhead
per instruction.  This module lowers one region onto dense interned
storage instead:

* :class:`repro.pdg.data_deps.DenseDDG` (built via
  ``DataDependenceGraph.to_dense``) interns instructions to dense indices
  and flattens the adjacency to CSR posting lists with precomputed edge
  weights;
* :class:`DenseDependenceState` keeps the unfulfilled-predecessor
  counters, earliest starts, and issue cycles of the whole region as flat
  ``array('i')`` / ``bytearray`` tables indexed by that interning;
* :func:`pack_rows` packs the static per-candidate priority tuples into
  single ints whose ``<`` order equals the tuples' lexicographic order,
  so the ready heaps compare machine ints instead of nested tuples;
* :class:`DenseReadyQueue` is the ready structure itself: all
  per-candidate state lives in parallel arrays indexed by the candidate's
  collection sequence number, heap items are ``(packed_key, seq, epoch)``
  int triples, and the evaluation queue is a heap of plain ints.

Equivalence contract: the scan engine
(:func:`repro.sched.reference.schedule_block_scan`) remains the oracle.
At every scan point the heap residents equal the seed scheduler's ready
list, selection order equals its sorted order (packing is strictly
monotone, and ``seq`` reproduces the seed's stable-sort tie-break), and
veto/rename judgments happen for exactly the candidates the seed scan
would have re-judged to a different answer, in the seed's iteration
order.  ``tests/sched/test_event_scan_equivalence.py`` and the fuzz
``seed_pipeline()`` arm hold assembly, motions and decision traces
byte-identical across machines x levels.

Graph mutations (Section 4.2 renames, Definition 6 duplication) bump
``DataDependenceGraph.version``; the dense snapshot is rebuilt lazily and
indices are stable (the instruction list is append-only), so fulfilment
flags and issue cycles survive rebuilds and only the derived counters are
recomputed.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from time import perf_counter

from ..ir.opcodes import UnitType
from ..machine.model import MachineModel
from ..obs.metrics import NULL_METRICS
from ..pdg.data_deps import DataDependenceGraph

#: entry lifecycle states (shared with the retired object-based queue's
#: numbering; module-level ints keep attribute loads off the hot path)
_WAITING = 0   #: some dependence predecessor is still unfulfilled
_TIMED = 1     #: dependences satisfied, earliest start is in the future (wheel)
_PENDING = 2   #: issuable once judged -- sitting in an evaluation queue
_READY = 3     #: judged issuable, resident in its unit heap
_PARKED = 4    #: vetoed by the live-on-exit test (or rename failed)
_ISSUED = 5    #: scheduled; terminal

#: "never issued / no carry" sentinel for start-cycle arrays; any real
#: start (local or carried) is far above this
_NEVER = -(1 << 30)

#: UnitType member -> dense heap index (stable: enum order)
_UNIT_INDEX = {unit: idx for idx, unit in enumerate(UnitType)}


def pack_rows(rows: list[tuple]) -> list[int]:
    """Pack equal-length all-int tuples into ints, preserving order.

    Classic mixed-radix packing: each field is offset by its column
    minimum and given exactly the bits its column range needs, so for any
    two rows ``a < b  <=>  pack(a) < pack(b)`` and ``a == b  <=>
    pack(a) == pack(b)``.  Constant columns contribute zero bits.  The
    ready heaps compare these ints instead of the tuples; the tuples are
    only rebuilt for decision tracing.
    """
    if not rows:
        return []
    # column extrema via C-speed min/max; shift-accumulate per row with
    # constant (zero-bit) columns dropped from the inner loop entirely
    cols = tuple(zip(*rows))
    plan = []
    for f, col in enumerate(cols):
        low = min(col)
        bits = (max(col) - low).bit_length()
        if bits:
            plan.append((f, bits, low))
    if not plan:
        return [0] * len(rows)
    packed = []
    for row in rows:
        acc = 0
        for f, bits, low in plan:
            acc = (acc << bits) | (row[f] - low)
        packed.append(acc)
    return packed


class DenseDependenceState:
    """Fulfilment and earliest-start tracking on flat arrays.

    Drop-in behavioural twin of :class:`repro.sched.ready.DependenceState`
    (which the scan oracle keeps using), but every per-instruction fact is
    an array slot indexed by the region's dense interning:

    * ``_fulfilled``: bytearray flag per instruction;
    * ``_blocked``: ``array('i')`` of unfulfilled-predecessor counts,
      recomputed eagerly from the CSR predecessor lists on snapshot
      (re)binding -- equivalent to the lazy dict because decrements apply
      from state creation onward either way;
    * ``_earliest``: ``array('i')`` earliest start within the current
      pass, folded incrementally on issue exactly like the dict version;
    * ``_local`` / ``_carry``: issue cycles (current pass / shifted
      previous pass) with the :data:`_NEVER` sentinel.

    A DDG version bump triggers a rebind: the dense snapshot is refreshed
    (indices are stable, new instructions append), surviving per-index
    facts are extended, and the derived counters are recomputed from the
    current fulfilment -- the array analogue of the dict state dropping
    its lazy caches.
    """

    def __init__(self, ddg: DataDependenceGraph, machine: MachineModel,
                 metrics=NULL_METRICS):
        self.ddg = ddg
        self.machine = machine
        self._m = metrics if metrics.enabled else None
        self.invalidations = 0
        self._listener = None
        self._fulfilled = bytearray()
        self._local = array("i")
        self._carry = array("i")
        self._blocked = array("i")
        self._earliest = array("i")
        #: indices issued in the current block pass / carried from the
        #: previous one -- begin_block only visits these, not all of n
        self._pass_issued: list[int] = []
        self._carried: list[int] = []
        self._n_fulfilled = 0
        self._zeros = array("i")
        self._version = -1
        self._bind()

    def set_listener(self, listener) -> None:
        """Subscribe ``listener(idx)`` to blocked-count zero crossings
        (``idx`` is the instruction's dense index).  After a version bump
        the counters are recomputed, so -- like the dict state after its
        caches clear -- the subscriber must requalify via the rebuild
        protocol :class:`DenseReadyQueue` follows."""
        self._listener = listener

    # -- snapshot lifecycle --------------------------------------------------

    def _bind(self) -> None:
        """(Re)take the dense snapshot and recompute derived counters."""
        t0 = perf_counter() if self._m is not None else 0.0
        dense = self.ddg.to_dense(self.machine)
        self._dense = dense
        self._version = self.ddg.version
        n = dense.n
        grow = n - len(self._fulfilled)
        if grow > 0:
            self._fulfilled.extend(bytes(grow))
            pad = array("i", [_NEVER]) * grow
            self._local.extend(pad)
            self._carry.extend(pad)
        self._recompute()
        if self._m is not None:
            self._m.observe("sched.soa.intern_ms",
                            (perf_counter() - t0) * 1e3)
            self._m.inc("sched.soa.dense_bytes", dense.nbytes())

    def _recompute(self) -> None:
        """Blocked counts and earliest starts, from scratch (O(V+E))."""
        dense = self._dense
        n = dense.n
        fulfilled = self._fulfilled
        local = self._local
        carry = self._carry
        pred_off = dense.pred_off
        if (self._n_fulfilled == 0 and not self._pass_issued
                and not self._carried):
            # fresh state (the common per-region bind): every predecessor
            # is unfulfilled and nothing has started -- blocked counts are
            # just the pred degrees, earliest starts are all zero
            self._blocked = array("i", [pred_off[i + 1] - pred_off[i]
                                        for i in range(n)])
            self._earliest = array("i", bytes(4 * n))
            return
        pred_idx = dense.pred_idx
        pred_w = dense.pred_w
        blocked = array("i", bytes(4 * n))
        earliest = array("i", bytes(4 * n))
        for i in range(n):
            count = 0
            e = 0
            for k in range(pred_off[i], pred_off[i + 1]):
                j = pred_idx[k]
                if not fulfilled[j]:
                    count += 1
                start = local[j]
                if start == _NEVER:
                    start = carry[j]
                if start != _NEVER:
                    bound = start + pred_w[k]
                    if bound > e:
                        e = bound
            blocked[i] = count
            earliest[i] = e
        self._blocked = blocked
        self._earliest = earliest

    def _sync(self) -> None:
        if self._version != self.ddg.version:
            self._bind()
            self.invalidations += 1

    def index_of(self, ins) -> int:
        """Dense index of ``ins`` in the current snapshot (-1 if absent)."""
        self._sync()
        return self._dense.index.get(id(ins), -1)

    # -- pass lifecycle ------------------------------------------------------

    def begin_block(self, *, carry_cycles: int | None = None) -> None:
        """Start a new block pass (semantics of
        :meth:`repro.sched.ready.DependenceState.begin_block`): the
        previous pass's issue cycles either stop constraining timing or
        carry over shifted by ``carry_cycles``, and earliest starts are
        recomputed under the new pass's clock.

        Only the instructions issued last pass (and the carries of the
        pass before) are touched -- O(issued + their successors) plus one
        C-level zero fill, not O(V + E)."""
        self._sync()
        local = self._local
        carry = self._carry
        for i in self._carried:
            carry[i] = _NEVER
        carried: list[int] = []
        if carry_cycles is None:
            for i in self._pass_issued:
                local[i] = _NEVER
        else:
            for i in self._pass_issued:
                s = local[i]
                if s != _NEVER:
                    carry[i] = s - carry_cycles
                    carried.append(i)
                    local[i] = _NEVER
        self._carried = carried
        self._pass_issued = []
        # every earliest start was relative to the old pass's clock; under
        # the new one only carried predecessors constrain anything
        dense = self._dense
        earliest = self._earliest
        zeros = self._zeros
        if len(zeros) != dense.n:
            zeros = self._zeros = array("i", bytes(4 * dense.n))
        earliest[:] = zeros              # C-level fill, no reallocation
        succ_off = dense.succ_off
        succ_idx = dense.succ_idx
        succ_w = dense.succ_w
        for i in carried:
            base = carry[i]
            for k in range(succ_off[i], succ_off[i + 1]):
                j = succ_idx[k]
                bound = base + succ_w[k]
                if bound > earliest[j]:
                    earliest[j] = bound
        self._earliest = earliest

    # -- state transitions ---------------------------------------------------

    def mark_prefulfilled_idx(self, i: int) -> None:
        """Instruction ``i`` completed in an earlier block (or is a passed
        abstract-loop barrier): fulfilled, timing-neutral."""
        if self._fulfilled[i]:
            return
        self._fulfilled[i] = 1
        self._n_fulfilled += 1
        dense = self._dense
        blocked = self._blocked
        listener = self._listener
        succ_off = dense.succ_off
        succ_idx = dense.succ_idx
        for k in range(succ_off[i], succ_off[i + 1]):
            j = succ_idx[k]
            count = blocked[j] - 1
            blocked[j] = count
            if count == 0 and listener is not None:
                listener(j)

    def mark_prefulfilled(self, ins) -> None:
        i = self.index_of(ins)
        if i >= 0:
            self.mark_prefulfilled_idx(i)

    def mark_issued_idx(self, i: int, cycle: int) -> None:
        fulfilled = self._fulfilled
        first = not fulfilled[i]
        fulfilled[i] = 1
        if first:
            self._n_fulfilled += 1
        if self._local[i] == _NEVER:
            self._pass_issued.append(i)
        self._local[i] = cycle
        dense = self._dense
        blocked = self._blocked
        earliest = self._earliest
        listener = self._listener
        succ_off = dense.succ_off
        succ_idx = dense.succ_idx
        succ_w = dense.succ_w
        for k in range(succ_off[i], succ_off[i + 1]):
            j = succ_idx[k]
            # fold the timing bound *before* any zero-crossing can fire
            # the listener: the queue classifies the successor against
            # earliest_start_idx the moment it unblocks, and the lazy
            # dict-based oracle always sees this issue's contribution
            bound = cycle + succ_w[k]
            if bound > earliest[j]:
                earliest[j] = bound
            if first:
                count = blocked[j] - 1
                blocked[j] = count
                if count == 0 and listener is not None:
                    listener(j)

    def mark_issued(self, ins, cycle: int) -> None:
        i = self.index_of(ins)
        if i >= 0:
            self.mark_issued_idx(i, cycle)

    # -- queries -------------------------------------------------------------

    def deps_satisfied_idx(self, i: int) -> bool:
        return self._blocked[i] == 0

    def earliest_start_idx(self, i: int) -> int:
        return self._earliest[i]

    def deps_satisfied(self, ins) -> bool:
        i = self.index_of(ins)
        return i < 0 or self._blocked[i] == 0

    def earliest_start(self, ins) -> int:
        i = self.index_of(ins)
        return 0 if i < 0 else self._earliest[i]

    def is_fulfilled(self, ins) -> bool:
        i = self.index_of(ins)
        return i >= 0 and bool(self._fulfilled[i])

    def start_of(self, ins) -> int | None:
        """Issue cycle within the current pass (None if not issued here)."""
        i = self.index_of(ins)
        if i < 0:
            return None
        s = self._local[i]
        return None if s == _NEVER else s


class DenseReadyQueue:
    """Event-driven ready bookkeeping on parallel arrays.

    Mechanism-for-mechanism port of the retired object-based queue: one
    slot per candidate in collection order (``seq``), so ``seq`` doubles
    as the seed scan's stable-sort tie-break.  State per candidate --
    status, heap epoch, queued/flagged bits, unit, packed key, dense DDG
    index -- lives in parallel arrays; the per-unit heaps hold
    ``(packed_key, seq, epoch)`` int triples with lazy deletion (an entry
    is live iff its status is ready and its stamped epoch is current),
    the timing wheel maps cycle -> list of seqs, and the evaluation queue
    is a plain int heap ordered by seq.

    The three equivalence mechanisms (activations staged to the next scan
    point, targeted liveness re-flags through a reg -> seq inverted
    index, and ``drain_seq``-gated rebuilds on graph mutation) are
    unchanged in logic from the object queue; see the module docstring
    for the contract.
    """

    def __init__(self, state: DenseDependenceState, cands, pkeys,
                 terminator, metrics=NULL_METRICS):
        """``cands``/``pkeys``: parallel lists of candidates and their
        packed keys in collection order.  The terminator (pull-checked by
        the scheduler, never queued) and foreign branches (never issuable)
        still consume sequence numbers so tie-breaks stay aligned with the
        seed scan."""
        self._state = state
        self._m = metrics if metrics.enabled else None
        unit_index = _UNIT_INDEX
        self._heaps: list[list] = [[] for _ in UnitType]
        self._wheel: dict[int, list[int]] = {}
        self._current: list[int] = []    # seq heap: judged this scan
        self._staged: list[int] = []     # judged at the next scan point
        self._index: dict = {}           # Reg -> [speculative heap seqs]
        self._live = 0                   # heap residents == seed ready count
        self._cycle = 0
        self._drain_seq = -1             # last seq judged this scan
        self._requalify = False          # stale pre-mutation judgments exist

        state._sync()
        dense_index = state._dense.index
        units = [unit_index[c.ins.unit] for c in cands]
        idxs = [dense_index.get(id(c.ins), -1) for c in cands]
        veto = bytearray(
            0 if (c.useful or c.duplicate_into) else 1 for c in cands)
        active: list[int] = []
        dup_seqs: list[int] = []
        term_seq = -1
        for seq, cand in enumerate(cands):
            ins = cand.ins
            if terminator is not None and ins is terminator:
                term_seq = seq
                continue
            if ins.is_branch:
                continue  # foreign branches never move
            active.append(seq)
            if cand.duplicate_into:
                dup_seqs.append(seq)

        n = len(cands)
        self.cands = cands
        self.pkeys = pkeys
        self.units = units
        self.seq_idx = array("i", idxs) if idxs else array("i")
        self._veto = veto
        self.status = bytearray(n)       # all _WAITING
        self._epoch = array("i", bytes(4 * n))
        self._queued = bytearray(n)
        self._flagged = bytearray(n)
        self._active = active
        self.term_seq = term_seq
        self.duplication_seqs = dup_seqs
        #: dense DDG index -> seq, for the dependence-state listener
        self._seq_of_idx = {idxs[s]: s for s in active if idxs[s] >= 0}

        self._version = state.ddg.version
        # initial classification, inlined from _classify: the ctor runs
        # once per block pass over every candidate, at cycle 0 with an
        # empty evaluation queue (first-time _enqueue_eval always stages)
        blocked = state._blocked
        earliest = state._earliest
        status = self.status
        wheel = self._wheel
        queued = self._queued
        staged = self._staged
        m = self._m
        for seq in active:
            i = idxs[seq]
            if i >= 0:
                if blocked[i]:
                    continue                 # stays _WAITING
                start = earliest[i]
                if start > 0:
                    status[seq] = _TIMED
                    wheel.setdefault(start, []).append(seq)
                    if m is not None:
                        m.inc("sched.queue.wheel_holds")
                    continue
            status[seq] = _PENDING
            queued[seq] = 1
            staged.append(seq)
        state.set_listener(self._on_deps_ready)

    def detach(self) -> None:
        """Unsubscribe from the dependence state (end of the block pass)."""
        self._state.set_listener(None)

    # -- scan-point lifecycle ------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Advance the clock; drain the wheel slot that just matured."""
        self._cycle = cycle
        batch = self._wheel.pop(cycle, None)
        if batch:
            status = self.status
            for seq in batch:
                if status[seq] == _TIMED:
                    status[seq] = _PENDING
                    self._enqueue_eval(seq, now=False)

    def scan_start(self) -> None:
        """Open a scan point: rebuild if the graph moved, then make the
        staged activations/flags judgeable."""
        self._drain_seq = -1
        if self._state.ddg.version != self._version or self._requalify:
            self._rebuild()
        if self._staged:
            current = self._current
            for seq in self._staged:
                heappush(current, seq)
            self._staged.clear()

    def next_evaluation(self) -> int:
        """Seq of the next candidate the scheduler must judge (veto /
        rename), in seed scan order; -1 when the scan point is drained.
        Non-speculative activations are promoted straight to their heap
        here -- they need no judgment and the seed scan emits nothing for
        them."""
        current = self._current
        status = self.status
        queued = self._queued
        flagged = self._flagged
        veto = self._veto
        m = self._m
        while current:
            seq = heappop(current)
            queued[seq] = 0
            st = status[seq]
            if st == _PENDING:
                self._drain_seq = seq
                if veto[seq]:
                    if m is not None:
                        m.inc("sched.queue.veto_rechecks")
                    return seq
                self._push_heap(seq)
                continue
            if st == _READY and flagged[seq]:
                self._drain_seq = seq
                flagged[seq] = 0
                if m is not None:
                    m.inc("sched.queue.veto_rechecks")
                return seq
            # stale: demoted/parked/issued since it was enqueued
        return -1

    # -- judgment outcomes ---------------------------------------------------

    def promote(self, seq: int) -> None:
        """The candidate passed (or renamed its way past) the veto."""
        if self.status[seq] != _READY:
            self._push_heap(seq)

    def park(self, seq: int) -> None:
        """The candidate is vetoed and unrenameable: out of play until
        liveness flags it again or the graph mutates."""
        if self.status[seq] == _READY:
            self._live -= 1
        self.status[seq] = _PARKED
        self._epoch[seq] += 1

    # -- selection -----------------------------------------------------------

    @property
    def ready_count(self) -> int:
        return self._live

    def select(self, free: list[int]) -> int:
        """Seq of the best heap resident whose unit still has a free slot
        (the seed scan's first issuable candidate in sorted order), or
        -1.  Heap items compare ``(packed_key, seq)`` first, which is
        exactly the seed's sorted-then-stable order."""
        best = None
        for unit_idx, heap in enumerate(self._heaps):
            if free[unit_idx] <= 0:
                continue
            top = self._peek(heap)
            if top is not None and (best is None or top < best):
                best = top
        return -1 if best is None else best[1]

    def pop_issue(self, seq: int) -> None:
        self.status[seq] = _ISSUED
        self._epoch[seq] += 1
        self._live -= 1
        if self._m is not None:
            self._m.inc("sched.queue.heap_pops")

    def retire_terminator(self) -> None:
        """The scheduler issued the (never-queued) terminator."""
        self.status[self.term_seq] = _ISSUED

    def ready_seqs(self, include_term: bool) -> list[int]:
        """The seed scheduler's full sorted ready list as seqs, for issue
        tracing only."""
        status = self.status
        epoch = self._epoch
        seqs = []
        for heap in self._heaps:
            for _pkey, seq, e in heap:
                if status[seq] == _READY and epoch[seq] == e:
                    seqs.append(seq)
        if include_term:
            seqs.append(self.term_seq)
        pkeys = self.pkeys
        seqs.sort(key=lambda s: (pkeys[s], s))
        return seqs

    # -- external events -----------------------------------------------------

    def note_liveness_grown(self, regs) -> None:
        """A motion extended live ranges: flag only the speculative heap
        residents defining one of ``regs`` for re-judgment at the next
        scan point (the targeted veto invalidation)."""
        index = self._index
        status = self.status
        flagged = self._flagged
        count = 0
        for reg in regs:
            bucket = index.get(reg)
            if not bucket:
                continue
            keep = []
            for seq in bucket:
                if status[seq] != _READY:
                    continue  # prune lazily
                keep.append(seq)
                if not flagged[seq]:
                    flagged[seq] = 1
                    count += 1
                    self._enqueue_eval(seq, now=False)
            index[reg] = keep
        if count and self._m is not None:
            self._m.inc("sched.queue.liveness_flags", count)

    def note_graph_mutation(self) -> None:
        """Called right after a judgment mutated the DDG (a successful
        Section 4.2 rename): rebuild now, gated on the drain position."""
        if self._state.ddg.version != self._version:
            self._rebuild()

    # -- internals -----------------------------------------------------------

    def _classify(self, seq: int) -> None:
        state = self._state
        i = self.seq_idx[seq]
        if i < 0:
            # not in the DDG (like the dict state, absent means
            # dependence-free): judgeable immediately
            self.status[seq] = _PENDING
            self._enqueue_eval(seq, now=False)
            return
        if not state.deps_satisfied_idx(i):
            self.status[seq] = _WAITING
            return
        start = state.earliest_start_idx(i)
        if start > self._cycle:
            self.status[seq] = _TIMED
            self._wheel.setdefault(start, []).append(seq)
            if self._m is not None:
                self._m.inc("sched.queue.wheel_holds")
            return
        self.status[seq] = _PENDING
        self._enqueue_eval(seq, now=False)

    def _enqueue_eval(self, seq: int, *, now: bool) -> None:
        if self._queued[seq]:
            return
        self._queued[seq] = 1
        if now:
            heappush(self._current, seq)
        else:
            self._staged.append(seq)

    def _push_heap(self, seq: int) -> None:
        self.status[seq] = _READY
        e = self._epoch[seq] + 1
        self._epoch[seq] = e
        heappush(self._heaps[self.units[seq]], (self.pkeys[seq], seq, e))
        self._live += 1
        if self._m is not None:
            self._m.inc("sched.queue.ready_pushes")
        if self._veto[seq]:
            index = self._index
            for reg in self.cands[seq].ins.reg_defs():
                index.setdefault(reg, []).append(seq)

    def _peek(self, heap):
        status = self.status
        epoch = self._epoch
        while heap:
            top = heap[0]
            seq = top[1]
            if status[seq] == _READY and epoch[seq] == top[2]:
                return top
            heappop(heap)
        return None

    def _on_deps_ready(self, i: int) -> None:
        seq = self._seq_of_idx.get(i)
        if seq is None or self.status[seq] != _WAITING:
            return
        start = self._state.earliest_start_idx(i)
        if start > self._cycle:
            self.status[seq] = _TIMED
            self._wheel.setdefault(start, []).append(seq)
            if self._m is not None:
                self._m.inc("sched.queue.wheel_holds")
            return
        self.status[seq] = _PENDING
        self._enqueue_eval(seq, now=False)

    def _rebuild(self) -> None:
        """Reclassify every unissued candidate against the current graph.

        ``gate == -1`` (a scan-point rebuild) reclassifies everything.
        A mid-scan rebuild (``gate >= 0``, a rename fired while judging)
        preserves the judgments already made this scan -- the seed scan
        judged those candidates on the pre-rename graph -- and schedules
        a requalifying rebuild for the next scan point.
        """
        self._state._sync()  # classify against the mutated graph
        gate = self._drain_seq
        self._version = self._state.ddg.version
        self._requalify = gate >= 0
        for heap in self._heaps:
            heap.clear()
        self._wheel.clear()
        self._current.clear()
        self._staged.clear()
        self._index.clear()
        self._live = 0
        if self._m is not None:
            self._m.inc("sched.queue.rebuilds")
        status = self.status
        queued = self._queued
        flagged = self._flagged
        for seq in self._active:
            st = status[seq]
            if st == _ISSUED:
                continue
            queued[seq] = 0
            if seq <= gate:
                # judged this scan, pre-mutation: keep the judgment live
                # for the remainder of the scan (requalified next scan)
                if st == _READY:
                    was_flagged = flagged[seq]
                    self._push_heap(seq)
                    if was_flagged:
                        self._enqueue_eval(seq, now=True)
                elif st == _TIMED or st == _PENDING:
                    # wheel slot / eval queue just cleared; requalify
                    status[seq] = _WAITING
                continue
            flagged[seq] = 0
            self._classify(seq)
            if status[seq] == _PENDING:
                # eligible for judgment in this very scan: the seed scan
                # reaches these positions only after the mutation
                self._staged.pop()  # _classify staged it as the last element
                heappush(self._current, seq)
