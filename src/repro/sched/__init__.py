"""The scheduling framework (Section 5): global + basic-block schedulers."""

from .bb_sched import schedule_block, schedule_function_blocks
from .candidates import Candidate, ScheduleLevel, candidate_blocks, collect_candidates
from .driver import GlobalScheduleReport, default_live_at_exit, global_schedule
from .global_sched import Motion, RegionScheduleReport, schedule_region
from .heuristics import StaticBlockPriority, local_priorities, priority_key
from .profiling import BranchProfile, make_profile_priority_fn, select_main_trace
from .ready import DependenceState
from .soa import DenseDependenceState, DenseReadyQueue, pack_rows
from .regions import (
    MAX_REGION_BLOCKS,
    MAX_REGION_INSTRS,
    RegionSpec,
    build_region_pdg,
    find_regions,
)
from .speculation import LiveOnExitTracker, try_rename_for_motion

__all__ = [
    "BranchProfile",
    "Candidate",
    "make_profile_priority_fn",
    "DenseDependenceState",
    "DenseReadyQueue",
    "DependenceState",
    "StaticBlockPriority",
    "pack_rows",
    "GlobalScheduleReport",
    "LiveOnExitTracker",
    "MAX_REGION_BLOCKS",
    "MAX_REGION_INSTRS",
    "Motion",
    "RegionScheduleReport",
    "RegionSpec",
    "ScheduleLevel",
    "build_region_pdg",
    "candidate_blocks",
    "collect_candidates",
    "default_live_at_exit",
    "find_regions",
    "global_schedule",
    "local_priorities",
    "priority_key",
    "schedule_block",
    "schedule_function_blocks",
    "schedule_region",
    "select_main_trace",
    "try_rename_for_motion",
]
