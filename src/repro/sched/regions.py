"""Region identification and ordering (Section 5.1, Section 6).

"A *region* represents either a strongly connected component that
corresponds to a loop ... or a body of a subroutine without the enclosed
loops."  Innermost regions are scheduled first; instructions are never
moved out of or into a region.

The Section 6 prototype policy is also encoded here as predicates the
pipeline driver applies:

* only the two innermost levels of regions are scheduled (*inner* regions
  contain no other region; *outer* regions contain only inner ones);
* only "small" reducible regions are scheduled (at most
  ``MAX_REGION_BLOCKS`` basic blocks and ``MAX_REGION_INSTRS``
  instructions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.dominators import dominator_tree
from ..cfg.graph import ENTRY, ControlFlowGraph
from ..cfg.loops import Loop, LoopNest, is_reducible
from ..dataflow.cache import AnalysisCache
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..machine.model import MachineModel
from ..pdg.pdg import RegionPDG, SubloopSummary, abstract_label, make_barrier

#: Section 6: '"Small" regions are those that have at most 64 basic blocks
#: and 256 instructions.'
MAX_REGION_BLOCKS = 64
MAX_REGION_INSTRS = 256


@dataclass
class RegionSpec:
    """One region: a loop body or the loop-free residue of the function."""

    #: "loop" or "body"
    kind: str
    #: entry node of the region graph (a block label, or an abstract node
    #: when the function's entry block sits inside a loop)
    header_node: str
    #: labels of blocks directly in the region (nested loops excluded)
    member_labels: list[str]
    #: immediate sub-loops, to be collapsed into abstract nodes
    subloops: list[Loop]
    #: loop nesting depth: 0 = subroutine body, 1 = outermost loop, ...
    depth: int

    @property
    def is_inner(self) -> bool:
        """An *inner* region includes no other region (Section 6)."""
        return self.kind == "loop" and not self.subloops

    @property
    def is_outer(self) -> bool:
        """An *outer* region includes only inner regions."""
        return bool(self.subloops) and all(
            not sub.children for sub in self.subloops
        )

    def block_count(self) -> int:
        return len(self.member_labels)

    def instr_count(self, func: Function) -> int:
        return sum(len(func.block(l)) for l in self.member_labels)

    def is_small(self, func: Function) -> bool:
        return (self.block_count() <= MAX_REGION_BLOCKS
                and self.instr_count(func) <= MAX_REGION_INSTRS)


def find_regions(func: Function,
                 analyses: AnalysisCache | None = None) -> list[RegionSpec]:
    """All regions of ``func``, innermost loops first, body region last.

    ``analyses`` (optional) supplies a memoised CFG/dominator/loop-nest
    bundle so callers that run several analyses per sweep build them once.
    """
    if analyses is None:
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        nest = LoopNest(cfg.graph, dom)
    else:
        cfg = analyses.cfg()
        nest = analyses.loop_nest()

    regions: list[RegionSpec] = []
    for loop in nest.loops_innermost_first():
        nested = set()
        for child in loop.children:
            nested |= child.body
        members = [
            b.label for b in func.blocks
            if b.label in loop.body and b.label not in nested
        ]
        regions.append(RegionSpec(
            kind="loop",
            header_node=loop.header,
            member_labels=members,
            subloops=list(loop.children),
            depth=loop.depth,
        ))

    in_any_loop = set()
    for loop in nest.loops:
        in_any_loop |= loop.body
    reachable = cfg.reachable_blocks()
    body_members = [b.label for b in func.blocks
                    if b.label not in in_any_loop and b.label in reachable]
    entry_label = func.entry.label
    if entry_label in in_any_loop:
        top = nest.innermost_containing(entry_label)
        while top is not None and top.parent is not None:
            top = top.parent
        header_node = abstract_label(top.header)
    else:
        header_node = entry_label
    regions.append(RegionSpec(
        kind="body",
        header_node=header_node,
        member_labels=body_members,
        subloops=list(nest.top_level),
        depth=0,
    ))
    return regions


def region_is_reducible(func: Function, spec: RegionSpec,
                        analyses: AnalysisCache | None = None) -> bool:
    """Is the whole function CFG reducible?  (The paper only schedules
    reducible regions; irreducible control flow has no single-entry loops,
    so per-region reducibility reduces to the global property.)"""
    if analyses is None:
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        return is_reducible(cfg.graph, dom)
    return is_reducible(analyses.cfg().graph, analyses.dominators())


def build_region_pdg(func: Function, machine: MachineModel,
                     spec: RegionSpec, *, reduce_ddg: bool = True,
                     ddg_builder=None) -> RegionPDG:
    """Materialise the PDG of one region (collapsing its sub-loops)."""
    summaries: list[SubloopSummary] = []
    for loop in spec.subloops:
        instrs = [
            ins
            for label in sorted(loop.body)
            for ins in func.block(label).instrs
        ]
        barrier = make_barrier(func, loop.header, instrs)
        pseudo = BasicBlock(abstract_label(loop.header), [barrier])
        summaries.append(SubloopSummary(
            header=loop.header,
            members=frozenset(loop.body),
            barrier=barrier,
            pseudo_block=pseudo,
        ))
    member_blocks = [func.block(label) for label in spec.member_labels]
    return RegionPDG(func, machine, member_blocks, spec.header_node,
                     summaries, reduce_ddg=reduce_ddg,
                     ddg_builder=ddg_builder)
