"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``compile FILE.c`` -- compile mini-C and print the scheduled assembly;
* ``run FILE.c FUNC ARGS...`` -- compile, execute on the simulator, and
  report results and cycle counts (array arguments as ``1,2,3`` lists);
* ``schedule FILE.ir`` -- globally schedule a textual-IR function;
* ``dot FILE.c --graph cfg|cspdg|ddg`` -- emit Graphviz for the graphs of
  the paper's Figures 3 and 4;
* ``figures`` -- regenerate the paper's Figure 7/8 tables;
* ``scorecard`` -- regenerate the Figure-8-style ``program x machine x
  level`` matrix across the whole machine zoo, with the static verifier,
  the event-vs-scan engine diff and the BSP cost cross-check run on every
  cell (``--out matrix.json`` writes the deterministic JSON artifact);
* ``verify FILE.c`` -- compile with the static schedule verifier enabled
  and report every sweep's verification result;
* ``stats FILE.c`` -- compile with metrics on and print the paper-style
  scheduling report (motions by kind, speculation accounting, ready-list
  pressure, per-block schedule lengths);
* ``fuzz --n 500 --seed 1991`` -- differential fuzzing: generated programs
  compiled at every level on several machines, outputs compared, failures
  minimised (``--reproduce SEED:INDEX`` re-runs one case).  Campaigns can
  bound each program (``--timeout``), park repeat offenders instead of
  aborting (on unless ``--no-quarantine``; ``--quarantine-out`` writes the
  report), and checkpoint/resume (``--checkpoint FILE`` / ``--resume
  FILE``) with results identical to an uninterrupted run;
* ``serve`` -- batch compile-as-a-service: JSONL requests on stdin (or
  ``--socket PATH``), JSONL responses in request order, backed by a
  sharded job pool (``--jobs``) and a content-addressed artifact cache
  (``--cache-entries`` / ``--cache-dir``); responses are identical for
  every job count, and ``--scorecard`` prints the live operator report
  (QPS, cache hit rate, rung histogram, queue depth) after every batch.
  The service is self-healing: dead or hung workers are detected and
  the pool rebuilt in place (``--hang-timeout``; repeated rebuilds trip
  a circuit breaker into inline mode), ``--journal FILE`` keeps a
  write-ahead journal so ``--resume-journal`` replays whatever a crash
  interrupted, ``--high-water``/``--low-water`` shed load above a
  queue-depth watermark (fast-fail ``overloaded`` or, with
  ``--degrade-under-load``, one re-verified ladder rung down), and
  ``--max-request-bytes``/``--read-deadline`` harden the framing
  against oversized frames and stalled clients;
* ``chaos --n 200 --seed 1991`` -- fault injection: seeded faults (pass
  crashes/hangs, corrupted dependence graphs, stale analyses, blinded
  live-on-exit sets) against the resilient pipeline, asserting every one
  is absorbed at a verified degradation rung or reported as a typed
  error -- never an uncaught traceback or a surviving miscompile.
  ``--service`` swaps in service-boundary faults instead -- worker
  kills/hangs, client disconnects, torn journal writes, partial frames
  -- against a live daemon, asserting every response is the
  BSP-cross-checked reference answer or a typed error, and the daemon
  never hangs or dies.

``compile`` and ``stats`` accept ``--resilient`` (fail-soft pipeline:
pass isolation plus the speculative -> useful -> bb -> identity
degradation ladder) and ``--pass-budget`` / ``--program-budget``
(wall-clock seconds, implying ``--resilient``).

``compile`` and ``stats`` accept ``--trace-out trace.jsonl`` (the JSONL
decision trace) and ``--trace-chrome trace.json`` (the same trace in
Chrome-trace format, loadable in Perfetto / chrome://tracing).

Examples::

    python -m repro compile examples/minmax.c --level speculative
    python -m repro run tests.c minmax 5,3,9,1 3 0,0
    python -m repro figures
    python -m repro verify examples/minmax.c
    python -m repro stats examples/minmax.c --trace-out minmax.jsonl
    python -m repro fuzz --n 500 --seed 1991
"""

from __future__ import annotations

import argparse
import json
import sys

from .compiler import compile_c
from .machine.configs import CONFIGS
from .sched.candidates import ScheduleLevel
from .xform.pipeline import PipelineConfig

_LEVELS = {level.value: level for level in ScheduleLevel}


class CLIError(Exception):
    """A user-facing error: printed as one line, exits with status 2."""


def _machine_factory(name: str):
    """Resolve a machine name, or fail with the one-line CLI idiom."""
    try:
        return CONFIGS[name]
    except KeyError:
        raise CLIError(
            f"error: unknown machine {name!r}; available: "
            f"{', '.join(sorted(CONFIGS))}") from None


def _read_source(path: str) -> str:
    """Read an input file, turning OS errors into one-line CLI errors."""
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        reason = exc.strerror or exc.__class__.__name__
        raise CLIError(f"error: cannot read {path!r}: {reason}") from exc


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--level", choices=sorted(_LEVELS),
                        default="speculative",
                        help="scheduling level (default: speculative)")
    parser.add_argument("--machine", default="rs6k", metavar="NAME",
                        help="machine configuration (default: rs6k; "
                             "see the machine zoo in repro.machine.configs)")


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write the JSONL decision trace to FILE")
    parser.add_argument("--trace-chrome", metavar="FILE",
                        help="write a Chrome-trace/Perfetto JSON to FILE")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--resilient", action="store_true",
                        help="fail-soft pipeline: pass isolation + the "
                             "degradation ladder")
    parser.add_argument("--pass-budget", type=float, metavar="SECONDS",
                        help="wall-clock budget per pipeline stage "
                             "(implies --resilient)")
    parser.add_argument("--program-budget", type=float, metavar="SECONDS",
                        help="wall-clock budget per function, across all "
                             "ladder rungs (implies --resilient)")


def _resilience_config(args):
    """The ResilienceConfig the flags ask for, or None (inert pipeline)."""
    if not (args.resilient or args.pass_budget is not None
            or args.program_budget is not None):
        return None
    from .resilience import ResilienceConfig

    return ResilienceConfig(pass_budget_s=args.pass_budget,
                            program_budget_s=args.program_budget)


class _TraceOutputs:
    """Resolves --trace-out/--trace-chrome into one tracer + a finaliser."""

    def __init__(self, trace_out: str | None, trace_chrome: str | None):
        from .obs import CollectingTracer, JsonlTracer, TeeTracer

        self._chrome_path = trace_chrome
        self._collector = CollectingTracer() if trace_chrome else None
        self._jsonl = JsonlTracer(trace_out) if trace_out else None
        sinks = [s for s in (self._jsonl, self._collector) if s is not None]
        if not sinks:
            self.tracer = None
        elif len(sinks) == 1:
            self.tracer = sinks[0]
        else:
            self.tracer = TeeTracer(*sinks)

    def finish(self) -> None:
        from .obs import write_chrome_trace

        if self._jsonl is not None:
            self._jsonl.close()
        if self._collector is not None:
            write_chrome_trace(self._collector.events, self._chrome_path)


def _compile(path: str, level: str, machine: str, **config_kwargs):
    factory = _machine_factory(machine)
    source = _read_source(path)
    config = PipelineConfig(level=_LEVELS[level], **config_kwargs)
    return compile_c(source, machine=factory(),
                     level=_LEVELS[level], config=config)


def cmd_compile(args) -> int:
    outputs = _TraceOutputs(args.trace_out, args.trace_chrome)
    result = _compile(args.file, args.level, args.machine,
                      use_counter_register=args.ctr,
                      trace=outputs.tracer,
                      resilience=_resilience_config(args))
    outputs.finish()
    for unit in result:
        if args.function and unit.name != args.function:
            continue
        print(unit.assembly())
        report = unit.report
        motions = report.motions
        useful = sum(1 for m in motions if not m.speculative)
        spec = len(motions) - useful
        print(f"; {unit.name}: {useful} useful + {spec} speculative "
              f"motions, compiled in {report.elapsed_seconds * 1e3:.1f} ms")
        print()
    return 0


def cmd_stats(args) -> int:
    from .obs import MetricsCollector, format_stats

    metrics = MetricsCollector()
    outputs = _TraceOutputs(args.trace_out, args.trace_chrome)
    result = _compile(args.file, args.level, args.machine,
                      trace=outputs.tracer, metrics=metrics,
                      resilience=_resilience_config(args))
    outputs.finish()
    units = [(unit.name, unit.report) for unit in result]
    print(format_stats(args.file, args.machine, args.level, units, metrics))
    return 0


def _parse_arg(text: str):
    if "," in text or text.startswith("["):
        items = text.strip("[]").split(",")
        return [int(i) for i in items if i.strip() != ""]
    return int(text)


def cmd_run(args) -> int:
    result = _compile(args.file, args.level, args.machine)
    unit = result[args.function]
    call_args = [_parse_arg(a) for a in args.args]
    run = unit.run(*call_args)
    print(f"return value: {run.return_value}")
    for i, array in enumerate(run.arrays):
        print(f"array arg {i}: {array}")
    print(f"cycles: {run.cycles}  instructions: {run.instructions}  "
          f"IPC: {run.timing.ipc:.2f}")
    return 0


def cmd_schedule(args) -> int:
    from .ir.parser import ParseError, parse_function
    from .ir.printer import format_function
    from .sched.driver import global_schedule

    machine = _machine_factory(args.machine)()
    try:
        func = parse_function(_read_source(args.file))
    except ParseError as exc:
        raise CLIError(f"error: {args.file}: {exc}") from exc
    report = global_schedule(func, machine, _LEVELS[args.level])
    print(format_function(func))
    for motion in report.motions:
        print(f"; {motion!r}")
    return 0


def cmd_dot(args) -> int:
    from .sched.regions import build_region_pdg, find_regions
    from .viz import cfg_to_dot, cspdg_to_dot, ddg_to_dot

    result = _compile(args.file, args.level, args.machine)
    unit = result[args.function] if args.function else next(iter(result))
    func = unit.func
    if args.graph == "cfg":
        print(cfg_to_dot(func, instructions=args.instructions), end="")
        return 0
    # PDG graphs are per region: pick the first loop (or the body region)
    regions = find_regions(func)
    spec = next((r for r in regions if r.kind == "loop"), regions[-1])
    pdg = build_region_pdg(func, unit.machine, spec)
    if args.graph == "cspdg":
        print(cspdg_to_dot(pdg), end="")
    else:
        print(ddg_to_dot(pdg.ddg, name=func.name), end="")
    return 0


def cmd_figures(args) -> int:
    from .bench.harness import (figure7_table, figure8_table,
                                format_figure7, format_figure8)

    print(format_figure8(figure8_table()))
    print()
    print(format_figure7(figure7_table(repeats=args.repeats)))
    return 0


def cmd_scorecard(args) -> int:
    from .bench.scorecard import format_scorecard, run_scorecard
    from .machine.configs import ZOO

    machines = (tuple(args.machines.split(",")) if args.machines else ZOO)
    for name in machines:
        _machine_factory(name)
    progress = (lambda line: print(line, flush=True)) if args.verbose \
        else None
    card = run_scorecard(machines, seed=args.seed, progress=progress)
    print(format_scorecard(card))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(card.to_json())
        print(f"wrote scorecard JSON ({len(card.cells)} cells) to "
              f"{args.out}")
    return 0 if card.ok else 1


def cmd_verify(args) -> int:
    from .verify import ScheduleVerificationError

    try:
        result = _compile(args.file, args.level, args.machine, verify=True)
    except ScheduleVerificationError as exc:
        print(exc.report.format())
        return 1
    for unit in result:
        for report in unit.report.verify_reports:
            print(f"{unit.name}: {report.format().splitlines()[0]} -- ok")
    print("all schedules verified")
    return 0


def cmd_fuzz(args) -> int:
    from .resilience.errors import BudgetExceeded, CheckpointError
    from .verify import fuzz, reproduce
    from .verify.differential import DEFAULT_MACHINES
    from .verify.generator import GenProgram

    machines = (tuple(args.machines.split(","))
                if args.machines else DEFAULT_MACHINES)
    for name in machines:
        _machine_factory(name)
    if args.jobs < 1:
        print(f"--jobs must be a positive integer, got {args.jobs}",
              file=sys.stderr)
        return 2

    if args.reproduce:
        # replays are single-process by construction: one derived seed,
        # one program, fully deterministic
        if args.jobs != 1:
            print("note: --reproduce runs single-process; ignoring --jobs",
                  file=sys.stderr)
        seed_text, sep, index_text = args.reproduce.partition(":")
        if not (sep and seed_text.lstrip("-").isdigit()
                and index_text.isdigit()):
            print(f"--reproduce wants SEED:INDEX (two integers), "
                  f"got {args.reproduce!r}", file=sys.stderr)
            return 2
        try:
            outcome = reproduce(int(seed_text), int(index_text),
                                machines=machines,
                                shrink=not args.no_shrink,
                                timeout_s=args.timeout)
        except BudgetExceeded as exc:
            print(f"reproduce timed out: {exc}", file=sys.stderr)
            return 1
        program = (outcome if isinstance(outcome, GenProgram) else None)
        if program is not None:
            print(f"program {index_text} of seed {seed_text} passes")
            print(program.source)
            code = 0
        else:
            print(outcome.format())
            code = 1
        from .verify.fuzz import degradation_rung, derive_seed
        from .verify.generator import generate_program

        if program is None:
            program = generate_program(
                derive_seed(int(seed_text), int(index_text)))
        print("degradation ladder rung: "
              f"{degradation_rung(program, timeout_s=args.timeout)}")
        return code

    def progress(done: int, failures: int) -> None:
        if done % 50 == 0 or done == args.n:
            print(f"  {done}/{args.n} programs, {failures} failure(s)",
                  flush=True)

    try:
        report = fuzz(args.n, args.seed, machines=machines,
                      shrink=not args.no_shrink, on_progress=progress,
                      jobs=args.jobs,
                      collect_metrics=bool(args.metrics_out),
                      timeout_s=args.timeout,
                      quarantine=not args.no_quarantine,
                      checkpoint_path=args.checkpoint,
                      resume_path=args.resume,
                      interrupt_after=args.interrupt_after)
    except CheckpointError as exc:
        raise CLIError(f"error: {exc}") from exc
    for failure in report.failures:
        print(failure.format())
    for parked in report.quarantined:
        print(parked.format())
    if args.metrics_out:
        payload = {
            "master_seed": report.master_seed,
            "attempted": report.attempted,
            "failures": len(report.failures),
            "programs": report.metric_summaries,
        }
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote per-program metrics for "
              f"{len(report.metric_summaries)} programs to "
              f"{args.metrics_out}")
    if args.quarantine_out:
        from dataclasses import asdict

        payload = {
            "master_seed": report.master_seed,
            "attempted": report.attempted,
            "quarantined": [asdict(q) for q in report.quarantined],
        }
        with open(args.quarantine_out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote quarantine report "
              f"({len(report.quarantined)} program(s)) to "
              f"{args.quarantine_out}")
    print(report.summary())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from .service import Daemon, JournalError, ServeConfig

    _machine_factory(args.machine)
    if args.jobs < 1:
        raise CLIError(f"error: --jobs must be a positive integer, "
                       f"got {args.jobs}")
    if args.batch_size < 1:
        raise CLIError(f"error: --batch-size must be a positive integer, "
                       f"got {args.batch_size}")
    if args.resume_journal and not args.journal:
        raise CLIError("error: --resume-journal requires --journal FILE")
    if args.high_water is not None and args.high_water < 1:
        raise CLIError(f"error: --high-water must be a positive integer, "
                       f"got {args.high_water}")
    if args.low_water is not None and args.high_water is None:
        raise CLIError("error: --low-water requires --high-water")
    if args.low_water is not None and args.low_water >= args.high_water:
        raise CLIError(f"error: --low-water ({args.low_water}) must be "
                       f"below --high-water ({args.high_water})")
    if args.max_request_bytes is not None and args.max_request_bytes < 2:
        raise CLIError(f"error: --max-request-bytes must be at least 2, "
                       f"got {args.max_request_bytes}")
    config = ServeConfig(
        jobs=args.jobs, machine=args.machine, level=args.level,
        timeout_s=args.timeout, resilient=args.resilient,
        cache_entries=args.cache_entries, cache_dir=args.cache_dir,
        batch_size=args.batch_size, queue_size=args.queue_size,
        allow_chaos=args.chaos, scorecard=args.scorecard,
        supervise=not args.no_supervise,
        hang_timeout_s=args.hang_timeout,
        max_rebuilds=args.max_rebuilds,
        rebuild_window_s=args.rebuild_window,
        journal_path=args.journal,
        resume_journal=args.resume_journal,
        high_water=args.high_water, low_water=args.low_water,
        degrade_under_load=args.degrade_under_load,
        max_request_bytes=args.max_request_bytes,
        read_deadline_s=args.read_deadline,
    )
    with Daemon(config) as daemon:
        daemon.install_signal_handlers()
        if args.resume_journal:
            try:
                replayed = daemon.resume_from_journal(sys.stdout,
                                                      sys.stderr)
            except JournalError as exc:
                raise CLIError(f"error: {exc}") from exc
            print(f"serve: replayed {replayed} journaled request(s)",
                  file=sys.stderr)
        elif args.journal:
            daemon.start_journal()
        if args.socket:
            summary = daemon.serve_socket(args.socket, sys.stderr)
        else:
            # own stdin outright: read a private dup and blank
            # sys.stdin, so pool workers forked while the reader thread
            # holds the buffer lock never touch it in _close_stdin
            import os

            in_stream = os.fdopen(os.dup(sys.stdin.fileno()), "r",
                                  encoding="utf-8", errors="replace")
            sys.stdin = None
            summary = daemon.serve_stream(in_stream, sys.stdout,
                                          sys.stderr)
    statuses = summary["statuses"]
    print(f"serve: {summary['requests']} request(s) in "
          f"{summary['batches']} batch(es), "
          f"{summary['cache_hits']} cache hit(s), "
          f"{statuses.get('quarantined', 0)} quarantined, "
          f"{statuses.get('error', 0)} error(s)", file=sys.stderr)
    return 0


def cmd_chaos(args) -> int:
    _machine_factory(args.machine)
    if args.jobs < 1:
        raise CLIError(f"error: --jobs must be a positive integer, "
                       f"got {args.jobs}")

    def progress(result) -> None:
        if args.verbose:
            print(result.format(), flush=True)

    if args.service:
        from .resilience.service_chaos import run_service_chaos

        report = run_service_chaos(args.n, args.seed,
                                   machine_name=args.machine,
                                   jobs=args.jobs, on_progress=progress)
    else:
        from .resilience import run_chaos

        report = run_chaos(args.n, args.seed, machine_name=args.machine,
                           on_progress=progress)
    if not args.verbose:
        for violation in report.violations:
            print(violation.format())
    print(report.summary())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PDG-based global instruction scheduling "
                    "(Bernstein & Rodeh, PLDI 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile mini-C, print assembly")
    p.add_argument("file")
    p.add_argument("--function", help="print only this function")
    p.add_argument("--ctr", action="store_true",
                   help="enable counter-register loops (footnote 3)")
    _add_common(p)
    _add_trace_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("stats",
                       help="print the paper-style scheduling report")
    p.add_argument("file")
    _add_common(p)
    _add_trace_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("run", help="compile and execute on the simulator")
    p.add_argument("file")
    p.add_argument("function")
    p.add_argument("args", nargs="*",
                   help="ints for scalars, comma lists for arrays")
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("schedule",
                       help="globally schedule a textual-IR function")
    p.add_argument("file")
    _add_common(p)
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser("dot", help="emit Graphviz for CFG/CSPDG/DDG")
    p.add_argument("file")
    p.add_argument("--graph", choices=["cfg", "cspdg", "ddg"],
                   default="cfg")
    p.add_argument("--function")
    p.add_argument("--instructions", action="store_true",
                   help="include instruction listings in CFG nodes")
    _add_common(p)
    p.set_defaults(fn=cmd_dot)

    p = sub.add_parser("figures",
                       help="regenerate the paper's Figure 7/8 tables")
    p.add_argument("--repeats", type=int, default=3)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("scorecard",
                       help="regenerate the program x machine x level "
                            "matrix across the machine zoo")
    p.add_argument("--machines", metavar="NAMES",
                   help="comma-separated machine names "
                        "(default: the full zoo)")
    p.add_argument("--seed", type=int, default=1991,
                   help="workload-input seed (default: 1991)")
    p.add_argument("--out", metavar="FILE",
                   help="write the deterministic JSON matrix to FILE")
    p.add_argument("--verbose", action="store_true",
                   help="print every cell as it is measured")
    p.set_defaults(fn=cmd_scorecard)

    p = sub.add_parser("verify",
                       help="compile with the schedule verifier enabled")
    p.add_argument("file")
    _add_common(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("fuzz",
                       help="differential fuzzing across levels/machines")
    p.add_argument("--n", type=int, default=100,
                   help="number of generated programs (default: 100)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign master seed (default: 0)")
    p.add_argument("--machines",
                   help="comma-separated machine names "
                        "(default: rs6k,scalar,ss2)")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without minimising them")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the campaign (default: 1; "
                        "results are identical for any job count)")
    p.add_argument("--reproduce", metavar="SEED:INDEX",
                   help="re-run (and shrink) one campaign program "
                        "(always single-process)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write per-program scheduling metric summaries "
                        "(JSON) to FILE")
    p.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="wall-clock budget per program (default: none)")
    p.add_argument("--no-quarantine", action="store_true",
                   help="legacy fail-fast mode: a crashed worker aborts "
                        "the campaign instead of quarantining the program")
    p.add_argument("--quarantine-out", metavar="FILE",
                   help="write the quarantine report (JSON) to FILE")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="save campaign state to FILE after every program")
    p.add_argument("--resume", metavar="FILE",
                   help="resume a campaign from a --checkpoint FILE")
    p.add_argument("--interrupt-after", type=int, metavar="N",
                   help="stop after N programs this run (for exercising "
                        "--checkpoint/--resume)")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("serve",
                       help="batch compile-as-a-service: JSONL requests "
                            "in, JSONL responses out")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="compile worker processes (default: 1; responses "
                        "are identical for any job count)")
    p.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="wall-clock deadline per request (default: none)")
    p.add_argument("--cache-entries", type=int, default=256, metavar="N",
                   help="in-memory artifact-cache capacity (default: 256)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="also persist cached artifacts under DIR")
    p.add_argument("--batch-size", type=int, default=32, metavar="N",
                   help="max requests answered per batch (default: 32)")
    p.add_argument("--queue-size", type=int, default=64, metavar="N",
                   help="job-queue bound before submit blocks "
                        "(default: 64)")
    p.add_argument("--socket", metavar="PATH",
                   help="listen on a Unix socket instead of stdin/stdout")
    p.add_argument("--scorecard", action="store_true",
                   help="print the live service scorecard to stderr "
                        "after every batch")
    p.add_argument("--chaos", action="store_true",
                   help="admit the 'chaos_hang_s' fault-injection "
                        "request hook (tests/CI only)")
    p.add_argument("--resilient", action="store_true",
                   help="default requests to the fail-soft pipeline "
                        "(requests may override per line)")
    p.add_argument("--journal", metavar="FILE",
                   help="write-ahead journal of accepted requests and "
                        "completions, for crash recovery")
    p.add_argument("--resume-journal", action="store_true",
                   help="on start, replay the journal's incomplete "
                        "requests before serving (requires --journal)")
    p.add_argument("--no-supervise", action="store_true",
                   help="raw worker pool without the supervisor (bench "
                        "baseline; a crashed worker can wedge a batch)")
    p.add_argument("--hang-timeout", type=float, metavar="SECONDS",
                   help="supervisor deadline for in-flight jobs; a job "
                        "past it is quarantined and its pool rebuilt "
                        "(default: rely on the per-job watchdog)")
    p.add_argument("--max-rebuilds", type=int, default=3, metavar="N",
                   help="pool rebuilds inside --rebuild-window before "
                        "the circuit breaker trips to inline mode "
                        "(default: 3)")
    p.add_argument("--rebuild-window", type=float, default=60.0,
                   metavar="SECONDS",
                   help="sliding window for the rebuild counter "
                        "(default: 60)")
    p.add_argument("--high-water", type=int, metavar="N",
                   help="unserved-request depth that starts load "
                        "shedding (default: admission control off)")
    p.add_argument("--low-water", type=int, metavar="N",
                   help="depth at which shedding stops "
                        "(default: half of --high-water)")
    p.add_argument("--degrade-under-load", action="store_true",
                   help="shed by compiling one ladder rung down "
                        "(re-verified) instead of fast-failing with "
                        "'overloaded'")
    p.add_argument("--max-request-bytes", type=int, metavar="N",
                   help="longest request line accepted; longer frames "
                        "get a typed 'oversized' error (default: "
                        "unbounded)")
    p.add_argument("--read-deadline", type=float, metavar="SECONDS",
                   help="per-client socket read deadline; a stalled "
                        "client ends its own session only (default: "
                        "patient)")
    _add_common(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("chaos",
                       help="seeded fault injection against the "
                            "resilient pipeline")
    p.add_argument("--n", type=int, default=50,
                   help="number of fault plans (default: 50)")
    p.add_argument("--seed", type=int, default=1991,
                   help="master seed (default: 1991)")
    p.add_argument("--machine", default="rs6k", metavar="NAME",
                   help="machine configuration (default: rs6k)")
    p.add_argument("--service", action="store_true",
                   help="inject service-boundary faults (worker kills/"
                        "hangs, client disconnects, torn journal writes, "
                        "partial frames) against the serve daemon "
                        "instead of pipeline faults")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="daemon pool width for --service plans "
                        "(default: 2)")
    p.add_argument("--verbose", action="store_true",
                   help="print every case as it completes")
    p.set_defaults(fn=cmd_chaos)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CLIError as exc:
        print(exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
