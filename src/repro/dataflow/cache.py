"""Memoised per-function control-flow and dataflow analyses.

The Section 6 flow runs many stages over the same function (unroll, two
global-scheduling sweeps, rotation, a block post-pass), and several of them
independently rebuilt the CFG, dominator tree, loop nest and liveness from
scratch -- ``global_schedule`` alone built the CFG three times per sweep
(region finding, reducibility, liveness).  :class:`AnalysisCache` computes
each analysis once and hands the same object out until a mutation
invalidates it.

Invalidation is explicit and two-tiered, because the pipeline's stages
differ in what they can break:

* :meth:`~AnalysisCache.invalidate` -- the CFG itself changed (unrolling,
  rotation, counted-loop conversion, any pass that adds/splits blocks or
  rewrites terminators).  Everything is dropped.
* :meth:`~AnalysisCache.invalidate_liveness` -- instructions moved or were
  renamed but the block structure is intact (a global-scheduling sweep:
  motions relocate instructions between *existing* blocks and terminators
  never move, so the CFG, dominators and loop nest all survive; register
  pressure does not).

Holding a stale cache is a correctness bug, not a performance one, so when
in doubt stages must over-invalidate.
"""

from __future__ import annotations

from ..cfg.dominators import DominatorTree, dominator_tree
from ..cfg.graph import ENTRY, ControlFlowGraph
from ..cfg.loops import LoopNest
from ..ir.function import Function
from ..ir.operand import Reg
from .liveness import LivenessInfo, compute_liveness


class AnalysisCache:
    """Lazily-computed, explicitly-invalidated analyses of one function."""

    def __init__(self, func: Function):
        self.func = func
        self._cfg: ControlFlowGraph | None = None
        self._dom: DominatorTree | None = None
        self._nest: LoopNest | None = None
        self._liveness: dict[frozenset[Reg], LivenessInfo] = {}

    # -- analyses ------------------------------------------------------------

    def cfg(self) -> ControlFlowGraph:
        if self._cfg is None:
            self._cfg = ControlFlowGraph(self.func)
        return self._cfg

    def dominators(self) -> DominatorTree:
        """Dominator tree of the function CFG, rooted at virtual ENTRY."""
        if self._dom is None:
            self._dom = dominator_tree(self.cfg().graph, ENTRY)
        return self._dom

    def loop_nest(self) -> LoopNest:
        if self._nest is None:
            self._nest = LoopNest(self.cfg().graph, self.dominators())
        return self._nest

    def liveness(self, live_at_exit: frozenset[Reg]) -> LivenessInfo:
        """Liveness under the given function-exit set (memoised per set)."""
        info = self._liveness.get(live_at_exit)
        if info is None:
            info = compute_liveness(self.func, live_at_exit, self.cfg())
            self._liveness[live_at_exit] = info
        return info

    # -- invalidation --------------------------------------------------------

    def invalidate(self) -> None:
        """The block structure changed: drop everything."""
        self._cfg = None
        self._dom = None
        self._nest = None
        self._liveness.clear()

    def invalidate_liveness(self) -> None:
        """Instructions moved/renamed within the existing block structure:
        drop dataflow facts, keep the CFG-shape analyses."""
        self._liveness.clear()
