"""Memoised per-function control-flow and dataflow analyses.

The Section 6 flow runs many stages over the same function (unroll, two
global-scheduling sweeps, rotation, a block post-pass), and several of them
independently rebuilt the CFG, dominator tree, loop nest and liveness from
scratch -- ``global_schedule`` alone built the CFG three times per sweep
(region finding, reducibility, liveness).  :class:`AnalysisCache` computes
each analysis once and hands the same object out until a mutation
invalidates it.

The cache also owns the function's *dense* substrate, so one interning
pass is shared by the whole pipeline: the :class:`RegTable` (``Reg`` ->
bit; the driver hands its dict to the scheduler's live-on-exit trackers
as the ``intern_cache``), the :class:`DenseCFG` CSR snapshot, and the
per-block use/def masks (rebuilt by the seed on every ``LivenessInfo``
construction, cached here across same-epoch solves).

Invalidation is explicit and two-tiered, because the pipeline's stages
differ in what they can break:

* :meth:`~AnalysisCache.invalidate` -- the CFG itself changed (unrolling,
  rotation, counted-loop conversion, any pass that adds/splits blocks or
  rewrites terminators).  Everything is dropped.
* :meth:`~AnalysisCache.invalidate_liveness` -- instructions moved or were
  renamed but the block structure is intact (a global-scheduling sweep:
  motions relocate instructions between *existing* blocks and terminators
  never move, so the CFG, dominators and loop nest all survive; register
  pressure does not).  The use/def masks go with liveness: renames rewrite
  instruction operands in place, so masks must be re-derived.

The ``RegTable`` survives *both* tiers: bit assignments are append-only
facts about register identity, never invalidated by motion or renaming
(a stale mask is impossible -- masks are dropped with their owners).

Holding a stale cache is a correctness bug, not a performance one, so when
in doubt stages must over-invalidate.
"""

from __future__ import annotations

from ..cfg.dense import DenseCFG
from ..cfg.dominators import DominatorTree, dominator_tree
from ..cfg.graph import ENTRY, ControlFlowGraph
from ..cfg.loops import LoopNest
from ..ir.function import Function
from ..ir.operand import Reg
from ..obs.metrics import NULL_METRICS
from .dense import RegTable
from .liveness import LivenessInfo, block_use_def_masks, compute_liveness


class AnalysisCache:
    """Lazily-computed, explicitly-invalidated analyses of one function."""

    def __init__(self, func: Function, metrics=NULL_METRICS):
        self.func = func
        self._metrics = metrics if metrics.enabled else None
        self._cfg: ControlFlowGraph | None = None
        self._dom: DominatorTree | None = None
        self._nest: LoopNest | None = None
        self._liveness: dict[frozenset[Reg], LivenessInfo] = {}
        self._table: RegTable | None = None
        self._dense: DenseCFG | None = None
        self._use_def: tuple[list[int], list[int]] | None = None

    # -- dense substrate -----------------------------------------------------

    def reg_table(self) -> RegTable:
        """The function-wide ``Reg`` -> bit interning table (one per
        function lifetime; survives both invalidation tiers)."""
        if self._table is None:
            self._table = RegTable()
            if self._metrics is not None:
                self._metrics.inc("analysis.dense.tables")
        return self._table

    def dense_cfg(self) -> DenseCFG:
        """CSR snapshot of the CFG with int block indices."""
        if self._dense is None:
            self._dense = DenseCFG(self.cfg())
            if self._metrics is not None:
                self._metrics.inc("analysis.dense.cfg_builds")
        return self._dense

    def block_use_def_masks(self) -> tuple[list[int], list[int]]:
        """Per-block (use, def) masks over :meth:`reg_table` (the
        interning pass); cached until instructions move or rename."""
        if self._use_def is None:
            self._use_def = block_use_def_masks(self.dense_cfg(),
                                                self.reg_table())
            if self._metrics is not None:
                self._metrics.inc("analysis.dense.usedef_builds")
                self._metrics.inc("analysis.dense.regs_interned",
                                  len(self._table.bit))
        elif self._metrics is not None:
            self._metrics.inc("analysis.dense.usedef_hits")
        return self._use_def

    # -- analyses ------------------------------------------------------------

    def cfg(self) -> ControlFlowGraph:
        if self._cfg is None:
            self._cfg = ControlFlowGraph(self.func)
        return self._cfg

    def dominators(self) -> DominatorTree:
        """Dominator tree of the function CFG, rooted at virtual ENTRY."""
        if self._dom is None:
            self._dom = dominator_tree(self.cfg().graph, ENTRY)
        return self._dom

    def loop_nest(self) -> LoopNest:
        if self._nest is None:
            self._nest = LoopNest(self.cfg().graph, self.dominators())
        return self._nest

    def liveness(self, live_at_exit: frozenset[Reg]) -> LivenessInfo:
        """Liveness under the given function-exit set (memoised per set)."""
        info = self._liveness.get(live_at_exit)
        if info is None:
            info = compute_liveness(self.func, live_at_exit, analyses=self)
            self._liveness[live_at_exit] = info
            if self._metrics is not None:
                self._metrics.inc("analysis.dense.liveness_solves")
        return info

    # -- invalidation --------------------------------------------------------

    def invalidate(self) -> None:
        """The block structure changed: drop everything (the reg table
        survives -- bit assignments never go stale)."""
        self._cfg = None
        self._dom = None
        self._nest = None
        self._liveness.clear()
        self._dense = None
        self._use_def = None

    def invalidate_liveness(self) -> None:
        """Instructions moved/renamed within the existing block structure:
        drop dataflow facts (use/def masks included), keep the CFG-shape
        analyses."""
        self._liveness.clear()
        self._use_def = None
