"""Register liveness: live-in / live-out (= *live on exit*) sets per block.

Section 5.3 of the paper drives speculative-motion legality with "the
(symbolic) registers that are *live on exit* from a basic block": an
instruction may not be moved speculatively into a block ``B`` if it defines
a register live on exit from ``B``.  The scheduler takes an initial solution
from here and updates it dynamically after each speculative motion.

Liveness at function exit is configurable: registers holding results the
caller observes (e.g. ``min``/``max`` in the running example, or everything a
trailing RET uses) can be declared live-out of the function.
"""

from __future__ import annotations

from ..cfg.graph import EXIT, ControlFlowGraph
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.operand import Reg
from .engine import solve_backward


def block_use_def(block: BasicBlock) -> tuple[set[Reg], set[Reg]]:
    """(upward-exposed uses, defs) of a block."""
    uses: set[Reg] = set()
    defs: set[Reg] = set()
    for ins in block.instrs:
        for reg in ins.reg_uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(ins.reg_defs())
    return uses, defs


class LivenessInfo:
    """Solved liveness for one function."""

    def __init__(self, func: Function, cfg: ControlFlowGraph,
                 live_at_exit: frozenset[Reg] = frozenset()):
        self.func = func
        self.cfg = cfg
        self.live_at_exit = live_at_exit
        self._use: dict[str, frozenset[Reg]] = {}
        self._def: dict[str, frozenset[Reg]] = {}
        for block in func.blocks:
            uses, defs = block_use_def(block)
            self._use[block.label] = frozenset(uses)
            self._def[block.label] = frozenset(defs)
        self._live_out = self._solve()

    def _solve(self) -> dict[str, frozenset[Reg]]:
        labels = [b.label for b in self.func.blocks]

        def transfer(label: str, out_set: frozenset) -> frozenset:
            if label in (EXIT,):
                return out_set
            return self._use[label] | (out_set - self._def[label])

        graph = self.cfg.graph
        # Solve over block labels only; EXIT acts as the boundary: blocks
        # with an edge to EXIT receive ``live_at_exit`` through it.
        out_sets: dict[str, frozenset[Reg]] = {}
        sets = solve_backward(
            graph.subgraph([*labels, EXIT]),
            [*labels, EXIT],
            lambda n, out: out if n == EXIT else transfer(n, out),
            boundary=self.live_at_exit,
        )
        # EXIT itself has no successors -> gets boundary; blocks see it.
        for label in labels:
            out_sets[label] = sets[label]
        return out_sets

    # -- queries ----------------------------------------------------------

    def live_out(self, block: BasicBlock | str) -> frozenset[Reg]:
        """Registers live on exit from ``block``."""
        label = block if isinstance(block, str) else block.label
        return self._live_out[label]

    def live_in(self, block: BasicBlock | str) -> frozenset[Reg]:
        label = block if isinstance(block, str) else block.label
        return self._use[label] | (self._live_out[label] - self._def[label])

    def live_out_map(self) -> dict[str, set[Reg]]:
        """A mutable copy for the scheduler's dynamic updates."""
        return {label: set(regs) for label, regs in self._live_out.items()}


def compute_liveness(func: Function,
                     live_at_exit: frozenset[Reg] = frozenset(),
                     cfg: ControlFlowGraph | None = None) -> LivenessInfo:
    """Convenience constructor."""
    return LivenessInfo(func, cfg or ControlFlowGraph(func), live_at_exit)
