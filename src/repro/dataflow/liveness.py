"""Register liveness: live-in / live-out (= *live on exit*) sets per block.

Section 5.3 of the paper drives speculative-motion legality with "the
(symbolic) registers that are *live on exit* from a basic block": an
instruction may not be moved speculatively into a block ``B`` if it defines
a register live on exit from ``B``.  The scheduler takes an initial solution
from here and updates it dynamically after each speculative motion.

Liveness at function exit is configurable: registers holding results the
caller observes (e.g. ``min``/``max`` in the running example, or everything a
trailing RET uses) can be declared live-out of the function.

The solve itself is dense: registers are interned to bit positions in a
:class:`repro.dataflow.dense.RegTable` (one table per function, shared
with the scheduler's live-on-exit tracker), blocks are int indices into a
:class:`repro.cfg.dense.DenseCFG` snapshot, and the fixed point runs on
int masks in :func:`repro.dataflow.engine.solve_backward_masks`.  Query
results materialize back to ``frozenset[Reg]`` lazily and are memoised.
The seed frozenset implementation is preserved as
:class:`repro.dataflow.reference.LivenessInfoReference`.
"""

from __future__ import annotations

from ..cfg.dense import DenseCFG
from ..cfg.graph import ControlFlowGraph
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.operand import Reg
from .dense import RegTable
from .engine import solve_backward_masks


def block_use_def(block: BasicBlock) -> tuple[set[Reg], set[Reg]]:
    """(upward-exposed uses, defs) of a block."""
    uses: set[Reg] = set()
    defs: set[Reg] = set()
    for ins in block.instrs:
        for reg in ins.reg_uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(ins.reg_defs())
    return uses, defs


def block_use_def_masks(
        dense: DenseCFG, table: RegTable) -> tuple[list[int], list[int]]:
    """Per-index (upward-exposed use, def) masks for every node of
    ``dense`` (0 for the virtual ENTRY/EXIT).  One pass interns every
    register the function mentions into ``table``."""
    bit = table.bit
    masks = table.mask
    mget = masks.get
    use_m = [0] * len(dense.nodes)
    def_m = [0] * len(dense.nodes)
    for i, block in enumerate(dense.blocks):
        if block is None:
            continue
        usem = 0
        defm = 0
        # the hottest loop of the dense core: raw ``uses``/``defs`` tuple
        # reads (== reg_uses()/reg_defs()) and one single-bit-mask dict
        # hit per operand, instead of a bit lookup plus a big-int shift
        for ins in block.instrs:
            for reg in ins.uses:
                m = mget(reg)
                if m is None:
                    b = bit.get(reg)
                    if b is None:
                        b = bit[reg] = len(bit)
                    m = masks[reg] = 1 << b
                if not defm & m:
                    usem |= m
            for reg in ins.defs:
                m = mget(reg)
                if m is None:
                    b = bit.get(reg)
                    if b is None:
                        b = bit[reg] = len(bit)
                    m = masks[reg] = 1 << b
                defm |= m
        use_m[i] = usem
        def_m[i] = defm
    return use_m, def_m


class LivenessInfo:
    """Solved liveness for one function."""

    def __init__(self, func: Function, cfg: ControlFlowGraph,
                 live_at_exit: frozenset[Reg] = frozenset(),
                 *,
                 table: RegTable | None = None,
                 dense: DenseCFG | None = None,
                 use_def: tuple[list[int], list[int]] | None = None):
        self.func = func
        self.cfg = cfg
        self.live_at_exit = live_at_exit
        self.table = table if table is not None else RegTable()
        self.dense = dense if dense is not None else DenseCFG(cfg)
        if use_def is None:
            use_def = block_use_def_masks(self.dense, self.table)
        self._use_m, self._def_m = use_def
        self._out_m = self._solve()
        #: materialized frozensets, filled on first query per label
        self._out_sets: dict[str, frozenset[Reg]] = {}
        self._in_sets: dict[str, frozenset[Reg]] = {}

    def _solve(self) -> list[int]:
        dense = self.dense
        # Solve over block indices plus EXIT; EXIT acts as the boundary
        # (gen/kill 0 make its transfer the identity, and having no
        # successors it holds ``live_at_exit``), so blocks with an edge
        # to EXIT receive the function-exit set through it.  ENTRY stays
        # inactive, exactly like the seed's induced subgraph.
        exit_idx = dense.index[self.cfg.exit]
        nodes = dense.block_indices()
        nodes.append(exit_idx)
        boundary = self.table.mask_of(self.live_at_exit)
        return solve_backward_masks(dense, nodes, self._use_m, self._def_m,
                                    boundary)

    # -- mask-level queries (dense consumers: interference, the cache) ----

    def live_out_mask(self, label: str) -> int:
        return self._out_m[self.dense.index[label]]

    def live_in_mask(self, label: str) -> int:
        i = self.dense.index[label]
        return self._use_m[i] | (self._out_m[i] & ~self._def_m[i])

    # -- queries ----------------------------------------------------------

    def live_out(self, block: BasicBlock | str) -> frozenset[Reg]:
        """Registers live on exit from ``block``."""
        label = block if isinstance(block, str) else block.label
        regs = self._out_sets.get(label)
        if regs is None:
            i = self.dense.index[label]
            if self.dense.blocks[i] is None:
                raise KeyError(label)
            regs = frozenset(self.table.regs_of(self._out_m[i]))
            self._out_sets[label] = regs
        return regs

    def live_in(self, block: BasicBlock | str) -> frozenset[Reg]:
        label = block if isinstance(block, str) else block.label
        regs = self._in_sets.get(label)
        if regs is None:
            i = self.dense.index[label]
            if self.dense.blocks[i] is None:
                raise KeyError(label)
            mask = self._use_m[i] | (self._out_m[i] & ~self._def_m[i])
            regs = frozenset(self.table.regs_of(mask))
            self._in_sets[label] = regs
        return regs

    def live_out_map(self) -> dict[str, set[Reg]]:
        """A mutable copy for the scheduler's dynamic updates."""
        regs_of = self.table.regs_of
        out_m = self._out_m
        index = self.dense.index
        return {b.label: regs_of(out_m[index[b.label]])
                for b in self.func.blocks}


def compute_liveness(func: Function,
                     live_at_exit: frozenset[Reg] = frozenset(),
                     cfg: ControlFlowGraph | None = None,
                     *, analyses=None) -> LivenessInfo:
    """Convenience constructor.  ``analyses`` -- an optional
    :class:`repro.dataflow.cache.AnalysisCache` -- supplies the shared
    interning table, CSR snapshot and cached use/def masks so repeated
    solves skip the interning pass."""
    if analyses is not None:
        return LivenessInfo(func, analyses.cfg(), live_at_exit,
                            table=analyses.reg_table(),
                            dense=analyses.dense_cfg(),
                            use_def=analyses.block_use_def_masks())
    return LivenessInfo(func, cfg or ControlFlowGraph(func), live_at_exit)
