"""Dataflow analyses: liveness (live-on-exit) and reaching definitions."""

from .cache import AnalysisCache
from .engine import solve_backward, solve_forward
from .liveness import LivenessInfo, block_use_def, compute_liveness
from .reaching import Definition, ReachingDefinitions

__all__ = [
    "AnalysisCache",
    "Definition",
    "LivenessInfo",
    "ReachingDefinitions",
    "block_use_def",
    "compute_liveness",
    "solve_backward",
    "solve_forward",
]
