"""A generic worklist solver for forward/backward set-based dataflow.

Both liveness (backward, may) and reaching definitions (forward, may) are
instances; writing the fixed-point loop once keeps the two analyses small
and obviously correct.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, TypeVar

from ..cfg.digraph import Digraph

Node = Hashable
T = TypeVar("T")

#: A transfer function mapping (node, in_set) -> out_set.
Transfer = Callable[[Node, frozenset], frozenset]


def solve_backward(
    graph: Digraph,
    nodes: Iterable[Node],
    transfer: Transfer,
    boundary: frozenset = frozenset(),
) -> dict[Node, frozenset]:
    """Solve a backward may-analysis to a fixed point.

    Returns the *out* set of every node (the meet over successors' *in*
    sets is recomputed on demand inside the loop; ``transfer`` maps a node's
    out set to its in set).  ``boundary`` seeds nodes with no successors.
    """
    nodes = list(nodes)
    out_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    in_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    work = deque(nodes)
    in_work = set(nodes)
    while work:
        node = work.popleft()
        in_work.discard(node)
        succs = [s for s in graph.succs(node) if s in in_sets]
        if succs:
            new_out = frozenset().union(*(in_sets[s] for s in succs))
        else:
            new_out = boundary
        out_sets[node] = new_out
        new_in = transfer(node, new_out)
        if new_in != in_sets[node]:
            in_sets[node] = new_in
            for pred in graph.preds(node):
                if pred in out_sets and pred not in in_work:
                    work.append(pred)
                    in_work.add(pred)
    return out_sets


def solve_forward(
    graph: Digraph,
    nodes: Iterable[Node],
    transfer: Transfer,
    entry: Node,
    boundary: frozenset = frozenset(),
) -> dict[Node, frozenset]:
    """Solve a forward may-analysis; returns the *in* set of every node."""
    nodes = list(nodes)
    in_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    out_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    if entry in in_sets:
        in_sets[entry] = boundary
    work = deque(nodes)
    in_work = set(nodes)
    while work:
        node = work.popleft()
        in_work.discard(node)
        preds = [p for p in graph.preds(node) if p in out_sets]
        if preds:
            new_in = frozenset().union(*(out_sets[p] for p in preds))
            if node == entry:
                new_in |= boundary
        elif node == entry:
            new_in = boundary
        else:
            new_in = frozenset()
        in_sets[node] = new_in
        new_out = transfer(node, new_in)
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for succ in graph.succs(node):
                if succ in in_sets and succ not in in_work:
                    work.append(succ)
                    in_work.add(succ)
    return in_sets
