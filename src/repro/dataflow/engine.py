"""Worklist solvers for forward/backward may-dataflow.

Both liveness (backward) and reaching definitions (forward) are
instances; writing the fixed-point loop once keeps the two analyses small
and obviously correct.

Two dialects share the file:

* :func:`solve_backward_masks` / :func:`solve_forward_masks` -- the dense
  engine the compiler runs on.  Facts are int bitmasks (registers or
  definition sites interned to bit positions), blocks are int indices
  into a :class:`repro.cfg.dense.DenseCFG` CSR snapshot, and gen/kill
  transfer is two machine-int ops; the meet is a big-int OR.
* :func:`solve_backward` / :func:`solve_forward` -- the seed's generic
  set-based engine, kept as the public API for arbitrary transfer
  functions (and as the substrate of the reference oracles in
  :mod:`repro.dataflow.reference`).

Both dialects visit *every* node (the mask solvers sweep, the set solvers
run a worklist), so forward-unreachable blocks still reach the same fixed
point, and a unique least fixed point makes the two provably
order-insensitive -- the property the equivalence suite pins down.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

from ..cfg.digraph import Digraph

Node = Hashable
T = TypeVar("T")

#: A transfer function mapping (node, in_set) -> out_set.
Transfer = Callable[[Node, frozenset], frozenset]


def solve_backward(
    graph: Digraph,
    nodes: Iterable[Node],
    transfer: Transfer,
    boundary: frozenset = frozenset(),
) -> dict[Node, frozenset]:
    """Solve a backward may-analysis to a fixed point.

    Returns the *out* set of every node (the meet over successors' *in*
    sets is recomputed on demand inside the loop; ``transfer`` maps a node's
    out set to its in set).  ``boundary`` seeds nodes with no successors.
    """
    nodes = list(nodes)
    out_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    in_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    work = deque(nodes)
    in_work = set(nodes)
    while work:
        node = work.popleft()
        in_work.discard(node)
        succs = [s for s in graph.succs(node) if s in in_sets]
        if succs:
            new_out = frozenset().union(*(in_sets[s] for s in succs))
        else:
            new_out = boundary
        out_sets[node] = new_out
        new_in = transfer(node, new_out)
        if new_in != in_sets[node]:
            in_sets[node] = new_in
            for pred in graph.preds(node):
                if pred in out_sets and pred not in in_work:
                    work.append(pred)
                    in_work.add(pred)
    return out_sets


def solve_forward(
    graph: Digraph,
    nodes: Iterable[Node],
    transfer: Transfer,
    entry: Node,
    boundary: frozenset = frozenset(),
) -> dict[Node, frozenset]:
    """Solve a forward may-analysis; returns the *in* set of every node."""
    nodes = list(nodes)
    in_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    out_sets: dict[Node, frozenset] = {n: frozenset() for n in nodes}
    if entry in in_sets:
        in_sets[entry] = boundary
    work = deque(nodes)
    in_work = set(nodes)
    while work:
        node = work.popleft()
        in_work.discard(node)
        preds = [p for p in graph.preds(node) if p in out_sets]
        if preds:
            new_in = frozenset().union(*(out_sets[p] for p in preds))
            if node == entry:
                new_in |= boundary
        elif node == entry:
            new_in = boundary
        else:
            new_in = frozenset()
        in_sets[node] = new_in
        new_out = transfer(node, new_in)
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for succ in graph.succs(node):
                if succ in in_sets and succ not in in_work:
                    work.append(succ)
                    in_work.add(succ)
    return in_sets


def solve_backward_masks(
    dense,
    nodes: Sequence[int],
    gen: Sequence[int],
    kill: Sequence[int],
    boundary: int = 0,
) -> list[int]:
    """Dense backward may-analysis: ``in = gen | (out & ~kill)``.

    ``dense`` is a CSR snapshot (:class:`repro.cfg.dense.DenseCFG`);
    ``nodes`` lists the active int indices (the seed solved the induced
    subgraph -- here inactive neighbours are simply filtered out once, up
    front).  Returns the *out* mask of every index (inactive entries stay
    0); ``boundary`` seeds active nodes with no active successors.

    The fixed point is unique, so iteration order affects convergence
    speed only, never the answer (the property the equivalence suite
    leans on).  Round-robin sweeps in *reverse* node order exploit that:
    backward facts flow from successors, so visiting later blocks first
    settles a loop-free region in one sweep and each extra sweep closes
    one level of loop nesting -- versus a worklist seeded in layout order
    re-queueing most of the function per change.
    """
    succ_off, succ_idx = dense.succ_off, dense.succ_idx
    active = bytearray(len(dense.nodes))
    for v in nodes:
        active[v] = 1
    sweep = []
    for v in reversed(nodes):
        row = [s for s in succ_idx[succ_off[v]:succ_off[v + 1]] if active[s]]
        sweep.append((v, row or None, gen[v], ~kill[v]))
    out = [0] * len(active)
    inm = [0] * len(active)
    changed = True
    while changed:
        changed = False
        for v, row, g, not_kill in sweep:
            if row is None:
                new_out = boundary
            else:
                new_out = 0
                for s in row:
                    new_out |= inm[s]
            out[v] = new_out
            new_in = g | (new_out & not_kill)
            if new_in != inm[v]:
                inm[v] = new_in
                changed = True
    return out


def solve_forward_masks(
    dense,
    nodes: Sequence[int],
    gen: Sequence[int],
    kill: Sequence[int],
    entry: int,
    boundary: int = 0,
) -> list[int]:
    """Dense forward may-analysis: ``out = gen | (in & ~kill)``.

    Returns the *in* mask of every index; ``entry`` additionally receives
    ``boundary``.  Same sweep scheme as :func:`solve_backward_masks`,
    mirrored: forward facts flow from predecessors, so the sweeps run in
    the given (layout) node order.
    """
    pred_off, pred_idx = dense.pred_off, dense.pred_idx
    active = bytearray(len(dense.nodes))
    for v in nodes:
        active[v] = 1
    sweep = []
    for v in nodes:
        row = [p for p in pred_idx[pred_off[v]:pred_off[v + 1]] if active[p]]
        sweep.append((v, row or None, gen[v], ~kill[v]))
    inm = [0] * len(active)
    outm = [0] * len(active)
    if active[entry]:
        inm[entry] = boundary
    changed = True
    while changed:
        changed = False
        for v, row, g, not_kill in sweep:
            new_in = boundary if v == entry else 0
            if row is not None:
                for p in row:
                    new_in |= outm[p]
            inm[v] = new_in
            new_out = g | (new_in & not_kill)
            if new_out != outm[v]:
                outm[v] = new_out
                changed = True
    return inm
