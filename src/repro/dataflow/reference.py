"""Reference (seed) implementations of the dataflow analyses.

The dense analysis core re-hosted the worklist solver, ``LivenessInfo``
and ``ReachingDefinitions`` on int bitmasks over a shared
:class:`repro.dataflow.dense.RegTable`.  This module preserves the seed's
frozenset implementations verbatim:

* :class:`LivenessInfoReference` / :func:`compute_liveness_reference`;
* :class:`ReachingDefinitionsReference`;
* :func:`reference_analyses` -- a context manager running the *whole*
  compiler with the dense analysis core switched off (CFG layer included,
  plus the dense basic-block scheduler), for the equivalence suite and
  the measured baseline arm of ``benchmarks/perf``.

The seed's generic set-based worklist solver never left
:mod:`repro.dataflow.engine` (it remains the public generic API next to
the mask solvers); both reference analyses here drive it exactly as the
seed did.  ``Definition`` is shared with :mod:`repro.dataflow.reaching`
so dense and reference results compare equal.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..cfg.graph import EXIT, ControlFlowGraph
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from .engine import solve_backward, solve_forward
from .reaching import Definition


def block_use_def_reference(block: BasicBlock) -> tuple[set[Reg], set[Reg]]:
    """(upward-exposed uses, defs) of a block (seed set-based helper)."""
    uses: set[Reg] = set()
    defs: set[Reg] = set()
    for ins in block.instrs:
        for reg in ins.reg_uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(ins.reg_defs())
    return uses, defs


class LivenessInfoReference:
    """Solved liveness for one function (seed frozenset implementation)."""

    def __init__(self, func: Function, cfg: ControlFlowGraph,
                 live_at_exit: frozenset[Reg] = frozenset()):
        self.func = func
        self.cfg = cfg
        self.live_at_exit = live_at_exit
        self._use: dict[str, frozenset[Reg]] = {}
        self._def: dict[str, frozenset[Reg]] = {}
        for block in func.blocks:
            uses, defs = block_use_def_reference(block)
            self._use[block.label] = frozenset(uses)
            self._def[block.label] = frozenset(defs)
        self._live_out = self._solve()

    def _solve(self) -> dict[str, frozenset[Reg]]:
        labels = [b.label for b in self.func.blocks]

        def transfer(label: str, out_set: frozenset) -> frozenset:
            if label in (EXIT,):
                return out_set
            return self._use[label] | (out_set - self._def[label])

        graph = self.cfg.graph
        # Solve over block labels only; EXIT acts as the boundary: blocks
        # with an edge to EXIT receive ``live_at_exit`` through it.
        out_sets: dict[str, frozenset[Reg]] = {}
        sets = solve_backward(
            graph.subgraph([*labels, EXIT]),
            [*labels, EXIT],
            lambda n, out: out if n == EXIT else transfer(n, out),
            boundary=self.live_at_exit,
        )
        # EXIT itself has no successors -> gets boundary; blocks see it.
        for label in labels:
            out_sets[label] = sets[label]
        return out_sets

    # -- queries ----------------------------------------------------------

    def live_out(self, block: BasicBlock | str) -> frozenset[Reg]:
        """Registers live on exit from ``block``."""
        label = block if isinstance(block, str) else block.label
        return self._live_out[label]

    def live_in(self, block: BasicBlock | str) -> frozenset[Reg]:
        label = block if isinstance(block, str) else block.label
        return self._use[label] | (self._live_out[label] - self._def[label])

    def live_out_map(self) -> dict[str, set[Reg]]:
        """A mutable copy for the scheduler's dynamic updates."""
        return {label: set(regs) for label, regs in self._live_out.items()}


def compute_liveness_reference(
        func: Function,
        live_at_exit: frozenset[Reg] = frozenset(),
        cfg: ControlFlowGraph | None = None,
        *, analyses=None) -> LivenessInfoReference:
    """Seed convenience constructor (``analyses``, the dense plumbing
    hook, is accepted and used only for its cached CFG)."""
    if cfg is None:
        cfg = analyses.cfg() if analyses is not None else None
    return LivenessInfoReference(func, cfg or ControlFlowGraph(func),
                                 live_at_exit)


class ReachingDefinitionsReference:
    """Solved reaching definitions (seed frozenset implementation)."""

    def __init__(self, func: Function, cfg: ControlFlowGraph | None = None):
        self.func = func
        self.cfg = cfg or ControlFlowGraph(func)
        self._gen: dict[str, frozenset[Definition]] = {}
        self._kill_regs: dict[str, frozenset[Reg]] = {}
        self._all_defs: dict[Reg, set[Definition]] = {}
        for block in func.blocks:
            last_def: dict[Reg, Definition] = {}
            for ins in block.instrs:
                for reg in ins.reg_defs():
                    d = Definition(ins.uid, reg)
                    last_def[reg] = d
                    self._all_defs.setdefault(reg, set()).add(d)
            self._gen[block.label] = frozenset(last_def.values())
            self._kill_regs[block.label] = frozenset(last_def)
        self._in_sets = self._solve()

    def _solve(self) -> dict[str, frozenset[Definition]]:
        labels = [b.label for b in self.func.blocks]

        def transfer(label: str, in_set: frozenset) -> frozenset:
            killed = self._kill_regs[label]
            surviving = frozenset(d for d in in_set if d.reg not in killed)
            return surviving | self._gen[label]

        graph = self.cfg.graph.subgraph(labels)
        return solve_forward(graph, labels, transfer,
                             entry=self.func.entry.label)

    # -- queries ------------------------------------------------------------

    def reaching_in(self, label: str) -> frozenset[Definition]:
        """Definitions that may reach the entry of block ``label``."""
        return self._in_sets[label]

    def defs_of(self, reg: Reg) -> frozenset[Definition]:
        """All definition sites of ``reg`` in the function."""
        return frozenset(self._all_defs.get(reg, ()))

    def reaching_before(self, label: str,
                        ins: Instruction) -> frozenset[Definition]:
        """Definitions that may reach the point just before ``ins``."""
        block = self.func.block(label)
        live: dict[Reg, set[Definition]] = {}
        for d in self._in_sets[label]:
            live.setdefault(d.reg, set()).add(d)
        for candidate in block.instrs:
            if candidate is ins:
                break
            for reg in candidate.reg_defs():
                live[reg] = {Definition(candidate.uid, reg)}
        return frozenset(d for defs in live.values() for d in defs)


def _analysis_reference_patches() -> list[tuple]:
    """Every (module, attribute, reference value) needed to run the
    compiler with the dense analysis core switched off.  Shared by
    :func:`reference_analyses` and
    :func:`repro.pdg.reference.seed_pipeline` (the perf baseline arm)."""
    from ..cfg.reference import _cfg_reference_patches
    from ..regalloc import allocator as regalloc_allocator
    from ..regalloc.reference import build_interference_reference
    from ..sched import bb_sched
    from ..sched.reference import schedule_block_reference
    from ..verify import verifier as sched_verifier
    from ..xform import rename as xform_rename
    from . import cache as dataflow_cache

    return [
        *_cfg_reference_patches(),
        (dataflow_cache, "compute_liveness", compute_liveness_reference),
        (xform_rename, "compute_liveness", compute_liveness_reference),
        (sched_verifier, "compute_liveness", compute_liveness_reference),
        (regalloc_allocator, "build_interference",
         build_interference_reference),
        (bb_sched, "schedule_block", schedule_block_reference),
    ]


@contextmanager
def reference_analyses():
    """Run with every seed analysis implementation restored: dict-based
    dominators/loops/reducibility, frozenset liveness, set-adjacency
    interference, and the dict-state basic-block scheduler.  The dense
    core and this arm must agree bit-for-bit on every analysis result and
    byte-for-byte on emitted assembly
    (``tests/dataflow/test_dense_equivalence.py``)."""
    patches = _analysis_reference_patches()
    saved = [(mod, name, getattr(mod, name)) for mod, name, _ in patches]
    for mod, name, value in patches:
        setattr(mod, name, value)
    try:
        yield
    finally:
        for mod, name, value in saved:
            setattr(mod, name, value)
