"""Function-wide register interning: ``Reg`` -> dense bit position.

Every dense analysis (liveness, reaching kills, interference rows) and the
scheduler's live-on-exit tracker speak the same bitmask dialect: a register
is a bit position, a register set is an int.  :class:`RegTable` owns the
``Reg -> bit`` dict for one function so the interning pass happens once and
every downstream mask is directly comparable.

The dict uses the exact convention of the PR-5 tracker
(:class:`repro.sched.speculation.LiveOnExitTracker`): the next bit is
``len(dict)``.  That makes the table's dict directly shareable as the
``regbit`` half of the driver's ``intern_cache`` -- trackers may intern
*new* registers behind the table's back, so the reverse row is re-synced
lazily from the dict (insertion order == bit order) before materializing.
"""

from __future__ import annotations

from typing import Iterable

from ..ir.operand import Reg, RegClass

#: byte value -> tuple of set bit offsets; masks materialize byte-at-a-time
#: through this table instead of a quadratic lowest-bit-clear loop (every
#: ``mask ^= mask & -mask`` step reallocates the whole big int)
BYTE_BITS = [tuple(b for b in range(8) if (v >> b) & 1) for v in range(256)]


def bits_of(mask: int) -> list[int]:
    """Set bit positions of ``mask``, ascending."""
    out: list[int] = []
    if not mask:
        return out
    data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
    for base, byte in enumerate(data):
        if byte:
            base8 = base << 3
            out += [base8 + b for b in BYTE_BITS[byte]]
    return out


class RegTable:
    """Append-only ``Reg`` <-> dense bit interning for one function."""

    __slots__ = ("bit", "mask", "_regs", "_class_masks")

    def __init__(self, bit: dict[Reg, int] | None = None):
        #: Reg -> bit position; shareable with the scheduler's intern cache
        self.bit: dict[Reg, int] = {} if bit is None else bit
        #: Reg -> ``1 << bit`` single-bit mask.  A lazily-filled cache for
        #: the interning hot loops: one dict hit replaces a lookup plus a
        #: fresh big-int shift.  May trail ``bit`` (trackers intern behind
        #: the table's back), so readers fall back to ``bit`` on a miss.
        self.mask: dict[Reg, int] = {}
        self._regs: list[Reg] = []
        #: RegClass -> (bits scanned, mask); extended lazily on query
        self._class_masks: dict[RegClass, tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self.bit)

    def bit_of(self, reg: Reg) -> int:
        """The register's bit position (interning it on first sight)."""
        bit = self.bit
        b = bit.get(reg)
        if b is None:
            b = bit[reg] = len(bit)
        return b

    def mask_of(self, regs: Iterable[Reg]) -> int:
        """The int bitmask of a register set (interning new registers)."""
        bit = self.bit
        masks = self.mask
        mask = 0
        for reg in regs:
            m = masks.get(reg)
            if m is None:
                b = bit.get(reg)
                if b is None:
                    b = bit[reg] = len(bit)
                m = masks[reg] = 1 << b
            mask |= m
        return mask

    def _row(self) -> list[Reg]:
        """bit position -> Reg, re-synced if the shared dict grew."""
        regs = self._regs
        if len(regs) != len(self.bit):
            # bits are assigned as len(dict), so insertion order IS bit order
            regs[:] = self.bit
        return regs

    def reg_of(self, bit: int) -> Reg:
        return self._row()[bit]

    def regs_of(self, mask: int) -> set[Reg]:
        """Materialize a bitmask back into a set of registers."""
        out: set[Reg] = set()
        if not mask:
            return out
        regs = self._row()
        add = out.add
        data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
        for base, byte in enumerate(data):
            if byte:
                base8 = base << 3
                for b in BYTE_BITS[byte]:
                    add(regs[base8 + b])
        return out

    def class_mask(self, rclass: RegClass) -> int:
        """Mask of every interned register of ``rclass`` (lazily extended
        as the table grows)."""
        done, mask = self._class_masks.get(rclass, (0, 0))
        n = len(self.bit)
        if done != n:
            regs = self._row()
            for b in range(done, n):
                if regs[b].rclass is rclass:
                    mask |= 1 << b
            self._class_masks[rclass] = (n, mask)
        return mask
