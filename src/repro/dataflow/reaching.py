"""Reaching definitions, at basic-block granularity.

A *definition* is a (instruction, register) pair.  The solved ``in`` set of
a block contains every definition that may reach the block's entry.  The
register-renaming transformation uses this to prove that a def's live range
is confined to one block (a precondition for safe local renaming), and the
test suite uses it to cross-check liveness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from .engine import solve_forward


@dataclass(frozen=True)
class Definition:
    """One register definition site (identified by instruction uid)."""

    uid: int
    reg: Reg

    def __repr__(self) -> str:
        return f"Def(I{self.uid}:{self.reg})"


class ReachingDefinitions:
    """Solved reaching definitions for one function."""

    def __init__(self, func: Function, cfg: ControlFlowGraph | None = None):
        self.func = func
        self.cfg = cfg or ControlFlowGraph(func)
        self._gen: dict[str, frozenset[Definition]] = {}
        self._kill_regs: dict[str, frozenset[Reg]] = {}
        self._all_defs: dict[Reg, set[Definition]] = {}
        for block in func.blocks:
            last_def: dict[Reg, Definition] = {}
            for ins in block.instrs:
                for reg in ins.reg_defs():
                    d = Definition(ins.uid, reg)
                    last_def[reg] = d
                    self._all_defs.setdefault(reg, set()).add(d)
            self._gen[block.label] = frozenset(last_def.values())
            self._kill_regs[block.label] = frozenset(last_def)
        self._in_sets = self._solve()

    def _solve(self) -> dict[str, frozenset[Definition]]:
        labels = [b.label for b in self.func.blocks]

        def transfer(label: str, in_set: frozenset) -> frozenset:
            killed = self._kill_regs[label]
            surviving = frozenset(d for d in in_set if d.reg not in killed)
            return surviving | self._gen[label]

        graph = self.cfg.graph.subgraph(labels)
        return solve_forward(graph, labels, transfer,
                             entry=self.func.entry.label)

    # -- queries ------------------------------------------------------------

    def reaching_in(self, label: str) -> frozenset[Definition]:
        """Definitions that may reach the entry of block ``label``."""
        return self._in_sets[label]

    def defs_of(self, reg: Reg) -> frozenset[Definition]:
        """All definition sites of ``reg`` in the function."""
        return frozenset(self._all_defs.get(reg, ()))

    def reaching_before(self, label: str, ins: Instruction) -> frozenset[Definition]:
        """Definitions that may reach the program point just before ``ins``."""
        block = self.func.block(label)
        live: dict[Reg, set[Definition]] = {}
        for d in self._in_sets[label]:
            live.setdefault(d.reg, set()).add(d)
        for candidate in block.instrs:
            if candidate is ins:
                break
            for reg in candidate.reg_defs():
                live[reg] = {Definition(candidate.uid, reg)}
        return frozenset(d for defs in live.values() for d in defs)
