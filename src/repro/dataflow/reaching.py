"""Reaching definitions, at basic-block granularity.

A *definition* is a (instruction, register) pair.  The solved ``in`` set of
a block contains every definition that may reach the block's entry.  The
register-renaming transformation uses this to prove that a def's live range
is confined to one block (a precondition for safe local renaming), and the
test suite uses it to cross-check liveness.

Definition sites are interned to their own dense bit space (they are
facts about instructions, not registers, so they do not share the
``RegTable``); gen masks hold each block's downward-exposed defs, kill
masks every def of a redefined register, and the fixed point runs on int
masks in :func:`repro.dataflow.engine.solve_forward_masks`.  The seed
frozenset implementation is preserved as
:class:`repro.dataflow.reference.ReachingDefinitionsReference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.dense import DenseCFG
from ..cfg.graph import ControlFlowGraph
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from .dense import BYTE_BITS, bits_of


@dataclass(frozen=True, slots=True)
class Definition:
    """One register definition site (identified by instruction uid)."""

    uid: int
    reg: Reg
    #: cached ``hash((uid, reg))`` -- materializing a reaching set hashes
    #: every member into a frozenset, and the generated tuple hash
    #: dominated those queries in pipeline profiles (same trick as ``Reg``)
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.uid, self.reg)))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Def(I{self.uid}:{self.reg})"


class ReachingDefinitions:
    """Solved reaching definitions for one function."""

    def __init__(self, func: Function, cfg: ControlFlowGraph | None = None,
                 *, dense: DenseCFG | None = None):
        self.func = func
        self.cfg = cfg or ControlFlowGraph(func)
        self._dense = dense if dense is not None else DenseCFG(self.cfg)
        #: Reg -> mask over the definition-bit space (defs_of decodes it)
        self._all_def_masks: dict[Reg, int] = {}
        #: (uid, reg) site key -> bit position, in first-sight order.
        #: Sites stay raw tuples through the solve; Definition objects
        #: only exist where a set-view query materializes them.
        self._def_bit: dict[tuple[int, Reg], int] = {}
        self._sites_row: list[tuple[int, Reg]] = []
        self._defs_row: list[Definition | None] = []
        n = len(self._dense.nodes)
        gen = [0] * n
        kill = [0] * n
        #: every def bit of a register, grown as sites are interned
        by_reg_mask = self._all_def_masks
        def_bit = self._def_bit
        sites_row = self._sites_row
        defined: list[tuple[int, dict[Reg, int]]] = []
        for i, block in enumerate(self._dense.blocks):
            if block is None:
                continue
            last_def: dict[Reg, int] = {}
            for ins in block.instrs:
                uid = ins.uid
                for reg in ins.defs:
                    # uids are unique, so every (uid, reg) is a fresh site
                    b = len(def_bit)
                    def_bit[(uid, reg)] = b
                    sites_row.append((uid, reg))
                    by_reg_mask[reg] = by_reg_mask.get(reg, 0) | (1 << b)
                    last_def[reg] = b
            gen[i] = 0
            for b in last_def.values():
                gen[i] |= 1 << b
            defined.append((i, last_def))
        self._defs_row = [None] * len(sites_row)
        # kill needs the *complete* per-register masks, so a second pass
        # over each block's defined-register set (a block kills every def
        # of every register it defines)
        for i, last_def in defined:
            killed = 0
            for reg in last_def:
                killed |= by_reg_mask[reg]
            kill[i] = killed
        self._in_m = self._solve(gen, kill)
        self._in_memo: dict[str, frozenset[Definition]] = {}
        #: mask -> materialized frozenset; straight-line chains share in
        #: masks verbatim, so keying on the mask dedups across blocks
        self._mask_memo: dict[int, frozenset[Definition]] = {}
        #: (byte offset << 8 | byte value) -> defs of that mask byte; the
        #: in sets of neighbouring blocks overlap almost entirely, so the
        #: byte-sized chunks they are assembled from recur constantly
        self._byte_memo: dict[int, list[Definition]] = {}

    def _solve(self, gen: list[int], kill: list[int]) -> list[int]:
        from .engine import solve_forward_masks
        dense = self._dense
        nodes = dense.block_indices()
        entry = dense.index[self.func.entry.label]
        return solve_forward_masks(dense, nodes, gen, kill, entry)

    def _materialize(self, mask: int) -> frozenset[Definition]:
        memo = self._mask_memo
        defs = memo.get(mask)
        if defs is None:
            definition = self.definition
            parts = self._byte_memo
            out: list[Definition] = []
            data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
            for base, byte in enumerate(data):
                if byte:
                    key = (base << 8) | byte
                    chunk = parts.get(key)
                    if chunk is None:
                        base8 = base << 3
                        chunk = parts[key] = [definition(base8 + b)
                                              for b in BYTE_BITS[byte]]
                    out += chunk
            defs = memo[mask] = frozenset(out)
        return defs

    # -- queries ------------------------------------------------------------

    def reaching_in(self, label: str) -> frozenset[Definition]:
        """Definitions that may reach the entry of block ``label``."""
        defs = self._in_memo.get(label)
        if defs is None:
            i = self._dense.index[label]
            if self._dense.blocks[i] is None:
                raise KeyError(label)
            defs = self._materialize(self._in_m[i])
            self._in_memo[label] = defs
        return defs

    def reaching_in_mask(self, label: str) -> int:
        """:meth:`reaching_in` as the raw definition-bit mask.

        The dense-native view of the same fact: bit ``b`` set means the
        site ``definition(b)`` may reach the block's entry.  Mask-dialect
        consumers (and the perf gate's dense arm) read this directly and
        skip the frozenset materialization; the equivalence suite pins
        the two views to each other.
        """
        i = self._dense.index[label]
        if self._dense.blocks[i] is None:
            raise KeyError(label)
        return self._in_m[i]

    def definition(self, bit: int) -> Definition:
        """The definition site interned at ``bit`` (mask-view decoder)."""
        d = self._defs_row[bit]
        if d is None:
            uid, reg = self._sites_row[bit]
            d = self._defs_row[bit] = Definition(uid, reg)
        return d

    def defs_of(self, reg: Reg) -> frozenset[Definition]:
        """All definition sites of ``reg`` in the function."""
        definition = self.definition
        return frozenset(definition(b)
                         for b in bits_of(self._all_def_masks.get(reg, 0)))

    def reaching_before(self, label: str,
                        ins: Instruction) -> frozenset[Definition]:
        """Definitions that may reach the program point just before ``ins``."""
        block = self.func.block(label)
        live: dict[Reg, set[Definition]] = {}
        for d in self.reaching_in(label):
            live.setdefault(d.reg, set()).add(d)
        for candidate in block.instrs:
            if candidate is ins:
                break
            for reg in candidate.reg_defs():
                live[reg] = {Definition(candidate.uid, reg)}
        return frozenset(d for defs in live.values() for d in defs)
