"""Graphviz (DOT) export for the paper's three graph artifacts.

Pure text generation (no graphviz dependency): feed the output to ``dot``
to regenerate Figure 3 (control flow graph), Figure 4 (CSPDG with dashed
equivalence edges), or the data-dependence graph of a block/region.
"""

from __future__ import annotations

from io import StringIO

from .ir.function import Function
from .pdg.data_deps import DataDependenceGraph, DepKind
from .pdg.pdg import RegionPDG


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _block_label(func: Function, label: str, *, instructions: bool) -> str:
    if not instructions:
        return label
    block = func.block(label)
    lines = [label + ":"] + [
        f"  I{ins.uid} {ins}" for ins in block.instrs
    ]
    return "\\l".join(lines) + "\\l"


def cfg_to_dot(func: Function, *, instructions: bool = False) -> str:
    """The control flow graph (Figure 3), optionally with block bodies."""
    out = StringIO()
    out.write(f"digraph {_quote(func.name + '_cfg')} {{\n")
    out.write('  node [shape=box, fontname="monospace"];\n')
    out.write("  ENTRY [shape=circle];\n  EXIT [shape=circle];\n")
    for block in func.blocks:
        out.write(f"  {_quote(block.label)} "
                  f"[label={_quote(_block_label(func, block.label, instructions=instructions))}];\n")
    out.write(f"  ENTRY -> {_quote(func.entry.label)};\n")
    for block in func.blocks:
        term = block.terminator
        succs = func.successors(block)
        for i, succ in enumerate(succs):
            attrs = ""
            if term is not None and term.opcode.is_conditional:
                attrs = ' [label="T"]' if i == 0 else ' [label="F"]'
            out.write(f"  {_quote(block.label)} -> {_quote(succ.label)}"
                      f"{attrs};\n")
        if func.falls_off_end(block) or (
                term is not None and term.opcode.mnemonic == "RET"):
            out.write(f"  {_quote(block.label)} -> EXIT;\n")
    out.write("}\n")
    return out.getvalue()


def cspdg_to_dot(pdg: RegionPDG) -> str:
    """The control subgraph of the PDG (Figure 4): solid control
    dependence edges, dashed dominance-directed equivalence edges."""
    out = StringIO()
    out.write(f"digraph {_quote(pdg.func.name + '_cspdg')} {{\n")
    out.write('  node [shape=circle, fontname="monospace"];\n')
    for node in pdg.cspdg.blocks:
        shape = "doublecircle" if pdg.is_abstract(node) else "circle"
        out.write(f"  {_quote(str(node))} [shape={shape}];\n")
    for branch, dependent, dep in pdg.cspdg.edges():
        out.write(f"  {_quote(str(branch))} -> {_quote(str(dependent))} "
                  f"[label={_quote(str(dep.succ))}];\n")
    for cls in pdg.cspdg.equivalence_classes:
        for a, b in zip(cls, cls[1:]):
            out.write(f"  {_quote(str(a))} -> {_quote(str(b))} "
                      f"[style=dashed, arrowhead=open];\n")
    out.write("}\n")
    return out.getvalue()


_KIND_STYLE = {
    DepKind.FLOW: "solid",
    DepKind.ANTI: "dashed",
    DepKind.OUTPUT: "dotted",
    DepKind.MEM: "bold",
}


def ddg_to_dot(ddg: DataDependenceGraph, *, name: str = "ddg") -> str:
    """The data-dependence graph: flow solid, anti dashed, output dotted,
    memory bold; flow edges are labelled with their delays."""
    out = StringIO()
    out.write(f"digraph {_quote(name)} {{\n")
    out.write('  node [shape=box, fontname="monospace"];\n')
    for ins in ddg.instructions:
        out.write(f"  {_quote(f'I{ins.uid}')} "
                  f"[label={_quote(f'I{ins.uid} {ins}')}];\n")
    for edge in ddg.edges():
        style = _KIND_STYLE[edge.kind]
        label = f" [style={style}"
        if edge.kind is DepKind.FLOW:
            label += f", label={_quote(f'd={edge.delay}')}"
        label += "];"
        out.write(f"  {_quote(f'I{edge.src.uid}')} -> "
                  f"{_quote(f'I{edge.dst.uid}')}{label}\n")
    out.write("}\n")
    return out.getvalue()
