"""Differential fuzzing loop: generate, run the matrix, shrink failures.

Program ``i`` of a campaign with master seed ``S`` is always generated
from the derived seed ``S * 1_000_003 + i``, so any failure is
reproducible from ``(S, i)`` alone::

    python -m repro fuzz --n 500 --seed 1991      # the campaign
    python -m repro fuzz --n 500 --seed 1991 --jobs 4   # same, 4 workers
    python -m repro fuzz --reproduce 1991:37      # re-run program 37

The failure report carries both the original and the shrunk source, plus
the entry arguments, so a failing case can be pasted straight into a
regression test.

Campaigns parallelise cleanly because each program is a pure function of
``(S, i)``: with ``jobs > 1`` the indices are farmed out to a
:mod:`multiprocessing` pool, results are collected as they finish, and the
final report is sorted by index -- a campaign's failure list is identical
for every job count (only ``on_progress`` interleaving differs).  A worker
that *crashes* (as opposed to finding a differential failure, which is a
normal result) surfaces as :class:`FuzzWorkerError` carrying the program
index and the worker traceback.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable

from .differential import DEFAULT_MACHINES, DiffResult, run_differential
from .generator import GenProgram, generate_program
from .shrink import shrink_program

_SEED_STRIDE = 1_000_003


class FuzzWorkerError(RuntimeError):
    """A fuzz worker process died on an unexpected exception."""

    def __init__(self, index: int, worker_traceback: str):
        super().__init__(
            f"fuzz worker crashed on program {index}:\n{worker_traceback}")
        self.index = index
        self.worker_traceback = worker_traceback


def derive_seed(master_seed: int, index: int) -> int:
    """The generator seed of program ``index`` in a campaign."""
    return master_seed * _SEED_STRIDE + index


@dataclass
class FuzzFailure:
    """One failing program, before and after minimisation."""

    index: int
    seed: int
    detail: str
    source: str
    args: list
    shrunk_source: str | None = None
    shrunk_args: list | None = None
    shrunk_detail: str | None = None

    def format(self) -> str:
        out = [f"--- failure #{self.index} (seed {self.seed}) ---",
               self.detail,
               f"args: {self.args!r}"]
        if self.shrunk_source is not None:
            out += ["minimised reproducer:", self.shrunk_source,
                    f"args: {self.shrunk_args!r}",
                    self.shrunk_detail or ""]
        else:
            out += ["source:", self.source]
        return "\n".join(out)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    master_seed: int
    attempted: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    #: per-program scheduling summaries (``collect_metrics=True`` only),
    #: sorted by index; see :func:`_program_metrics` for the keys
    metric_summaries: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (f"fuzz: {self.attempted} programs, seed "
                f"{self.master_seed}: {status}")


def _program_metrics(index: int, program: GenProgram) -> dict:
    """Compile ``program`` once (rs6k, speculative) with metrics on and
    distill the campaign-level scheduling summary.  Deterministic in
    ``(seed, index)`` like everything else here."""
    from ..compiler import compile_c
    from ..machine.configs import CONFIGS
    from ..obs.metrics import MetricsCollector
    from ..sched.candidates import ScheduleLevel
    from ..xform.pipeline import PipelineConfig

    metrics = MetricsCollector()
    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE, metrics=metrics)
    compile_c(program.source, machine=CONFIGS["rs6k"](),
              level=ScheduleLevel.SPECULATIVE, config=config)
    ready_count, ready_total, ready_max = metrics.series.get(
        "sched.ready", (0, 0, 0))
    return {
        "index": index,
        "seed": program.seed,
        "motions_useful": metrics.counters.get("sched.motions.useful", 0),
        "motions_speculative": metrics.counters.get(
            "sched.motions.speculative", 0),
        "motions_duplicated": metrics.counters.get(
            "sched.motions.duplicated", 0),
        "spec_rejected": metrics.counters.get(
            "sched.speculation.rejected_live", 0),
        "spec_renamed": metrics.counters.get("sched.speculation.renamed", 0),
        "ready_mean": round(ready_total / ready_count, 3) if ready_count
                      else 0.0,
        "ready_max": ready_max,
    }


def fuzz(
    n: int,
    seed: int,
    *,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    shrink: bool = True,
    on_progress: Callable[[int, int], None] | None = None,
    stop_after: int | None = None,
    jobs: int = 1,
    collect_metrics: bool = False,
) -> FuzzReport:
    """Run ``n`` generated programs through the differential matrix.

    ``on_progress(done, failures)`` is called after every program;
    ``stop_after`` aborts the campaign early once that many failures have
    been collected (None = run everything).  ``jobs > 1`` distributes the
    programs over a worker pool; because every program derives from
    ``(seed, index)`` alone, the sorted failure list is independent of the
    job count (``stop_after`` may admit a different-but-overlapping subset
    when completion order differs).  ``collect_metrics`` additionally
    compiles each program with a metrics collector and records a
    per-program scheduling summary in ``report.metric_summaries``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    report = FuzzReport(master_seed=seed)
    if jobs == 1:
        for index in range(n):
            program = generate_program(derive_seed(seed, index))
            outcome = run_differential(program, machines=machines)
            report.attempted += 1
            if not outcome.ok:
                report.failures.append(
                    _build_failure(index, program, outcome, machines, shrink))
            if collect_metrics:
                report.metric_summaries.append(
                    _program_metrics(index, program))
            if on_progress is not None:
                on_progress(report.attempted, len(report.failures))
            if stop_after is not None and len(report.failures) >= stop_after:
                break
        return report

    import multiprocessing

    tasks = [(seed, index, machines, shrink, collect_metrics)
             for index in range(n)]
    with multiprocessing.get_context().Pool(processes=jobs) as pool:
        for index, failure, error, summary in pool.imap_unordered(
                _fuzz_worker, tasks, chunksize=4):
            if error is not None:
                raise FuzzWorkerError(index, error)
            report.attempted += 1
            if failure is not None:
                report.failures.append(failure)
            if summary is not None:
                report.metric_summaries.append(summary)
            if on_progress is not None:
                on_progress(report.attempted, len(report.failures))
            if stop_after is not None and len(report.failures) >= stop_after:
                break
        # leaving the with-block terminates any still-running workers
    report.failures.sort(key=lambda f: f.index)
    report.metric_summaries.sort(key=lambda s: s["index"])
    return report


def _fuzz_worker(
    task: tuple[int, int, tuple[str, ...], bool, bool],
) -> tuple[int, FuzzFailure | None, str | None, dict | None]:
    """Pool entry point: run one campaign index, never raise.

    Returns ``(index, failure-or-None, crash-traceback-or-None,
    metric-summary-or-None)``; the parent re-raises crashes as
    :class:`FuzzWorkerError` so one bad program aborts the campaign loudly
    instead of hanging the pool.
    """
    master_seed, index, machines, shrink, collect_metrics = task
    try:
        program = generate_program(derive_seed(master_seed, index))
        outcome = run_differential(program, machines=machines)
        summary = (_program_metrics(index, program)
                   if collect_metrics else None)
        if outcome.ok:
            return index, None, None, summary
        return (index,
                _build_failure(index, program, outcome, machines, shrink),
                None, summary)
    except Exception:
        return index, None, traceback.format_exc(), None


def _build_failure(
    index: int,
    program: GenProgram,
    outcome: DiffResult,
    machines: tuple[str, ...],
    shrink: bool,
) -> FuzzFailure:
    failure = FuzzFailure(
        index=index,
        seed=program.seed,
        detail=outcome.format_failures(),
        source=program.source,
        args=list(program.entry_args),
    )
    if shrink:
        def still_fails(candidate: GenProgram) -> bool:
            return not run_differential(candidate, machines=machines).ok

        small = shrink_program(program, still_fails)
        failure.shrunk_source = small.source
        failure.shrunk_args = list(small.entry_args)
        failure.shrunk_detail = run_differential(
            small, machines=machines).format_failures()
    return failure


def reproduce(master_seed: int, index: int,
              *, machines: tuple[str, ...] = DEFAULT_MACHINES,
              shrink: bool = True) -> FuzzFailure | GenProgram:
    """Re-run one campaign program.  Returns the :class:`FuzzFailure`
    (shrunk if requested) when it still fails, or the passing
    :class:`GenProgram` otherwise."""
    program = generate_program(derive_seed(master_seed, index))
    outcome = run_differential(program, machines=machines)
    if outcome.ok:
        return program
    return _build_failure(index, program, outcome, machines, shrink)
