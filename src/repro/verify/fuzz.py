"""Differential fuzzing loop: generate, run the matrix, shrink failures.

Program ``i`` of a campaign with master seed ``S`` is always generated
from the derived seed ``S * 1_000_003 + i``, so any failure is
reproducible from ``(S, i)`` alone::

    python -m repro fuzz --n 500 --seed 1991      # the campaign
    python -m repro fuzz --n 500 --seed 1991 --jobs 4   # same, 4 workers
    python -m repro fuzz --reproduce 1991:37      # re-run program 37

The failure report carries both the original and the shrunk source, plus
the entry arguments, so a failing case can be pasted straight into a
regression test.

Campaigns parallelise cleanly because each program is a pure function of
``(S, i)``: the indices become jobs on a
:class:`repro.service.jobs.JobPool` (the service job layer this module's
PR-2/PR-4 pool machinery was generalized into), results are collected as
they finish, and the final report is sorted by index -- a campaign's
failure list is identical for every job count (only ``on_progress``
interleaving differs).

Campaigns are *resilient* by default: each program runs under an optional
wall-clock ``timeout_s``, and a program that crashes or times out is
retried once (with a short exponential backoff) and then **quarantined**
-- recorded in ``report.quarantined`` while the campaign continues.  The
legacy fail-fast behaviour (a crash aborts the campaign as
:class:`FuzzWorkerError`) is available with ``quarantine=False``.  Long
campaigns can write an atomic JSON checkpoint after every program
(``checkpoint_path``) and later resume from it (``resume_path``); a
resumed campaign's sorted result lists are identical to an uninterrupted
run's, for any job count.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Callable

from ..resilience.budget import watchdog
from ..resilience.errors import CheckpointError
from .differential import DEFAULT_MACHINES, DiffResult, run_differential
from .generator import GenProgram, generate_program
from .shrink import shrink_program

_SEED_STRIDE = 1_000_003
#: sleep before the retry of a crashed/timed-out program, doubled per
#: attempt (transient faults -- memory pressure, signal races -- get one
#: breath of air before we give up on the index)
_RETRY_BACKOFF_S = 0.05
#: attempts per program before quarantine: the first run plus one retry
_MAX_ATTEMPTS = 2
_CHECKPOINT_VERSION = 1


class FuzzWorkerError(RuntimeError):
    """A fuzz worker process died on an unexpected exception
    (``quarantine=False`` campaigns only)."""

    def __init__(self, index: int, worker_traceback: str):
        super().__init__(
            f"fuzz worker crashed on program {index}:\n{worker_traceback}")
        self.index = index
        self.worker_traceback = worker_traceback


def derive_seed(master_seed: int, index: int) -> int:
    """The generator seed of program ``index`` in a campaign."""
    return master_seed * _SEED_STRIDE + index


@dataclass
class FuzzFailure:
    """One failing program, before and after minimisation."""

    index: int
    seed: int
    detail: str
    source: str
    args: list
    shrunk_source: str | None = None
    shrunk_args: list | None = None
    shrunk_detail: str | None = None

    def format(self) -> str:
        out = [f"--- failure #{self.index} (seed {self.seed}) ---",
               self.detail,
               f"args: {self.args!r}"]
        if self.shrunk_source is not None:
            out += ["minimised reproducer:", self.shrunk_source,
                    f"args: {self.shrunk_args!r}",
                    self.shrunk_detail or ""]
        else:
            out += ["source:", self.source]
        return "\n".join(out)


@dataclass
class QuarantinedProgram:
    """A program whose *harness* run kept failing (crash or timeout) --
    parked after :data:`_MAX_ATTEMPTS` so the campaign can continue."""

    index: int
    seed: int
    attempts: int
    #: "crash" | "timeout"
    reason: str
    detail: str

    def format(self) -> str:
        return (f"--- quarantined #{self.index} (seed {self.seed}, "
                f"{self.reason} after {self.attempts} attempts) ---\n"
                f"{self.detail}")


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    master_seed: int
    attempted: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    #: programs parked after repeated crashes/timeouts (campaigns with
    #: ``quarantine=True``, the default)
    quarantined: list[QuarantinedProgram] = field(default_factory=list)
    #: per-program scheduling summaries (``collect_metrics=True`` only),
    #: sorted by index; see :func:`_program_metrics` for the keys
    metric_summaries: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        quarantine = (f", {len(self.quarantined)} quarantined"
                      if self.quarantined else "")
        return (f"fuzz: {self.attempted} programs, seed "
                f"{self.master_seed}: {status}{quarantine}")


def _program_metrics(index: int, program: GenProgram) -> dict:
    """Compile ``program`` once (rs6k, speculative) with metrics on and
    distill the campaign-level scheduling summary.  Deterministic in
    ``(seed, index)`` like everything else here."""
    from ..compiler import compile_c
    from ..machine.configs import CONFIGS
    from ..obs.metrics import MetricsCollector
    from ..sched.candidates import ScheduleLevel
    from ..xform.pipeline import PipelineConfig

    metrics = MetricsCollector()
    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE, metrics=metrics)
    compile_c(program.source, machine=CONFIGS["rs6k"](),
              level=ScheduleLevel.SPECULATIVE, config=config)
    ready_count, ready_total, ready_max = metrics.series.get(
        "sched.ready", (0, 0, 0))
    return {
        "index": index,
        "seed": program.seed,
        "motions_useful": metrics.counters.get("sched.motions.useful", 0),
        "motions_speculative": metrics.counters.get(
            "sched.motions.speculative", 0),
        "motions_duplicated": metrics.counters.get(
            "sched.motions.duplicated", 0),
        "spec_rejected": metrics.counters.get(
            "sched.speculation.rejected_live", 0),
        "spec_renamed": metrics.counters.get("sched.speculation.renamed", 0),
        "ready_mean": round(ready_total / ready_count, 3) if ready_count
                      else 0.0,
        "ready_max": ready_max,
    }


# -- checkpointing ------------------------------------------------------------

def _checkpoint_state(report: FuzzReport, *, n: int,
                      machines: tuple[str, ...], shrink: bool,
                      collect_metrics: bool, done: set[int]) -> dict:
    return {
        "version": _CHECKPOINT_VERSION,
        "master_seed": report.master_seed,
        "n": n,
        "machines": list(machines),
        "shrink": shrink,
        "collect_metrics": collect_metrics,
        "done": sorted(done),
        "failures": [asdict(f) for f in report.failures],
        "quarantined": [asdict(q) for q in report.quarantined],
        "metric_summaries": report.metric_summaries,
    }


def _save_checkpoint(path: str, state: dict) -> None:
    """Write atomically: a crash mid-write never corrupts the file."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
    os.replace(tmp, path)


#: required checkpoint fields and the types a v1 file must carry them
#: with (``bool`` is checked before ``int`` -- JSON ``true`` is not a
#: valid program count)
_CHECKPOINT_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "master_seed": int,
    "n": int,
    "machines": list,
    "shrink": bool,
    "collect_metrics": bool,
    "done": list,
    "failures": list,
    "quarantined": list,
    "metric_summaries": list,
}


def _check_schema(path: str, state: dict) -> None:
    """Reject a version-tagged file whose body is not a v1 checkpoint
    (hand-edited, truncated-then-repaired, or from a different tool)."""
    for key, want in _CHECKPOINT_SCHEMA.items():
        if key not in state:
            raise CheckpointError(
                f"checkpoint {path} does not match the "
                f"v{_CHECKPOINT_VERSION} schema: missing field {key!r}")
        value = state[key]
        bad_bool = want is int and isinstance(value, bool)
        if bad_bool or not isinstance(value, want):
            raise CheckpointError(
                f"checkpoint {path} does not match the "
                f"v{_CHECKPOINT_VERSION} schema: field {key!r} should be "
                f"{want.__name__}, got {type(value).__name__}")


def _load_checkpoint(path: str, *, n: int, seed: int,
                     machines: tuple[str, ...], shrink: bool,
                     collect_metrics: bool) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            state = json.load(fh)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(state, dict) \
            or state.get("version") != _CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has unsupported version "
            f"{state.get('version')!r}" if isinstance(state, dict)
            else f"corrupt checkpoint {path}: not a JSON object")
    _check_schema(path, state)
    expected = {"master_seed": seed, "n": n, "machines": list(machines),
                "shrink": shrink, "collect_metrics": collect_metrics}
    for key, want in expected.items():
        if state.get(key) != want:
            raise CheckpointError(
                f"checkpoint {path} belongs to a different campaign: "
                f"{key}={state.get(key)!r}, this campaign has {want!r}")
    return state


# -- per-program execution ----------------------------------------------------

def _attempt(master_seed: int, index: int, machines: tuple[str, ...],
             shrink: bool, collect_metrics: bool,
             timeout_s: float | None,
             ) -> tuple[FuzzFailure | None, dict | None]:
    """One harness run of one campaign index, bounded by ``timeout_s``."""
    with watchdog(timeout_s, f"fuzz:program-{index}"):
        return _harness(master_seed, index, machines, shrink,
                        collect_metrics)


def _harness(master_seed: int, index: int, machines: tuple[str, ...],
             shrink: bool, collect_metrics: bool,
             ) -> tuple[FuzzFailure | None, dict | None]:
    """The differential harness proper (deadline applied by the caller)."""
    program = generate_program(derive_seed(master_seed, index))
    outcome = run_differential(program, machines=machines)
    summary = (_program_metrics(index, program)
               if collect_metrics else None)
    if outcome.ok:
        return None, summary
    return (_build_failure(index, program, outcome, machines, shrink),
            summary)


def _fuzz_job(payload) -> tuple[FuzzFailure | None, dict | None]:
    """:class:`~repro.service.jobs.JobPool` handler: one campaign index.

    The job layer supplies the per-job deadline, the retry-with-backoff,
    and the quarantine bookkeeping that used to live here.
    """
    master_seed, index, machines, shrink, collect_metrics = payload
    return _harness(master_seed, index, machines, shrink, collect_metrics)


def fuzz(
    n: int,
    seed: int,
    *,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    shrink: bool = True,
    on_progress: Callable[[int, int], None] | None = None,
    stop_after: int | None = None,
    jobs: int = 1,
    collect_metrics: bool = False,
    timeout_s: float | None = None,
    quarantine: bool = True,
    checkpoint_path: str | None = None,
    resume_path: str | None = None,
    interrupt_after: int | None = None,
) -> FuzzReport:
    """Run ``n`` generated programs through the differential matrix.

    ``on_progress(done, failures)`` is called after every program;
    ``stop_after`` aborts the campaign early once that many failures have
    been collected (None = run everything).  ``jobs > 1`` distributes the
    programs over a worker pool; because every program derives from
    ``(seed, index)`` alone, the sorted failure list is independent of the
    job count (``stop_after`` may admit a different-but-overlapping subset
    when completion order differs).  ``collect_metrics`` additionally
    compiles each program with a metrics collector and records a
    per-program scheduling summary in ``report.metric_summaries``.

    ``timeout_s`` bounds each program's harness run; ``quarantine``
    (default) parks repeat offenders instead of aborting.
    ``checkpoint_path`` saves the campaign state atomically after every
    program; ``resume_path`` seeds the campaign from such a file and only
    runs the remaining indices -- the finished report is identical to an
    uninterrupted run's.  ``interrupt_after`` stops the campaign after
    that many programs *this run* (exercises the checkpoint/resume path).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    report = FuzzReport(master_seed=seed)
    done: set[int] = set()
    if resume_path is not None:
        state = _load_checkpoint(resume_path, n=n, seed=seed,
                                 machines=machines, shrink=shrink,
                                 collect_metrics=collect_metrics)
        done = set(state["done"])
        report.attempted = len(done)
        report.failures = [FuzzFailure(**f) for f in state["failures"]]
        report.quarantined = [QuarantinedProgram(**q)
                              for q in state["quarantined"]]
        report.metric_summaries = list(state["metric_summaries"])
    pending = [index for index in range(n) if index not in done]

    completed_this_run = 0

    def complete(index: int, failure, quarantined, error, summary) -> bool:
        """Fold one result into the report; False stops the campaign."""
        nonlocal completed_this_run
        if error is not None:
            raise FuzzWorkerError(index, error)
        done.add(index)
        report.attempted += 1
        completed_this_run += 1
        if failure is not None:
            report.failures.append(failure)
        if quarantined is not None:
            report.quarantined.append(quarantined)
        if summary is not None:
            report.metric_summaries.append(summary)
        if checkpoint_path is not None:
            _save_checkpoint(checkpoint_path, _checkpoint_state(
                report, n=n, machines=machines, shrink=shrink,
                collect_metrics=collect_metrics, done=done))
        if on_progress is not None:
            on_progress(report.attempted, len(report.failures))
        if stop_after is not None and len(report.failures) >= stop_after:
            return False
        if (interrupt_after is not None
                and completed_this_run >= interrupt_after):
            return False
        return True

    def finish() -> FuzzReport:
        report.failures.sort(key=lambda f: f.index)
        report.quarantined.sort(key=lambda q: q.index)
        report.metric_summaries.sort(key=lambda s: s["index"])
        return report

    if jobs == 1 and not quarantine:
        # legacy fail-fast: exceptions propagate to the caller raw
        for index in pending:
            failure, summary = _attempt(seed, index, machines, shrink,
                                        collect_metrics, timeout_s)
            if not complete(index, failure, None, None, summary):
                break
        return finish()

    from ..service.jobs import CRASHED, OK, QUARANTINED, JobPool, JobSpec

    specs = [JobSpec(id=index,
                     payload=(seed, index, machines, shrink,
                              collect_metrics))
             for index in pending]
    with JobPool(_fuzz_job, jobs=jobs, queue_size=max(16, 4 * jobs),
                 timeout_s=timeout_s, quarantine=quarantine,
                 max_attempts=_MAX_ATTEMPTS,
                 retry_backoff_s=_RETRY_BACKOFF_S) as pool:
        for result in pool.run(specs):
            index = result.id
            failure = parked = error = summary = None
            if result.status == OK:
                failure, summary = result.value
            elif result.status == QUARANTINED:
                parked = QuarantinedProgram(
                    index=index, seed=derive_seed(seed, index),
                    attempts=result.attempts, reason=result.reason,
                    detail=result.detail)
            elif result.status == CRASHED:
                error = result.detail
            if not complete(index, failure, parked, error, summary):
                break
        # leaving the with-block terminates any still-running workers
    return finish()


def _build_failure(
    index: int,
    program: GenProgram,
    outcome: DiffResult,
    machines: tuple[str, ...],
    shrink: bool,
) -> FuzzFailure:
    failure = FuzzFailure(
        index=index,
        seed=program.seed,
        detail=outcome.format_failures(),
        source=program.source,
        args=list(program.entry_args),
    )
    if shrink:
        def still_fails(candidate: GenProgram) -> bool:
            return not run_differential(candidate, machines=machines).ok

        small = shrink_program(program, still_fails)
        failure.shrunk_source = small.source
        failure.shrunk_args = list(small.entry_args)
        failure.shrunk_detail = run_differential(
            small, machines=machines).format_failures()
    return failure


def reproduce(master_seed: int, index: int,
              *, machines: tuple[str, ...] = DEFAULT_MACHINES,
              shrink: bool = True,
              timeout_s: float | None = None,
              ) -> FuzzFailure | GenProgram:
    """Re-run one campaign program, bounded by the same per-program
    ``timeout_s`` a campaign would apply.  Returns the
    :class:`FuzzFailure` (shrunk if requested) when it still fails, or
    the passing :class:`GenProgram` otherwise."""
    with watchdog(timeout_s, f"fuzz:program-{index}"):
        program = generate_program(derive_seed(master_seed, index))
        outcome = run_differential(program, machines=machines)
        if outcome.ok:
            return program
        return _build_failure(index, program, outcome, machines, shrink)


def degradation_rung(program: GenProgram, *, machine_name: str = "rs6k",
                     timeout_s: float | None = None) -> str:
    """Compile ``program`` once through the *resilient* pipeline and
    report the degradation-ladder rung it lands on (worst across the
    unit's functions) -- ``repro fuzz --reproduce`` prints this."""
    from ..compiler import compile_c
    from ..machine.configs import CONFIGS
    from ..resilience.ladder import ResilienceConfig, worst_rung
    from ..sched.candidates import ScheduleLevel
    from ..xform.pipeline import PipelineConfig

    config = PipelineConfig(
        verify=True,
        resilience=ResilienceConfig(program_budget_s=timeout_s))
    unit = compile_c(program.source, machine=CONFIGS[machine_name](),
                     level=ScheduleLevel.SPECULATIVE, config=config)
    return worst_rung(u.report.final_rung for u in unit)
