"""Differential fuzzing loop: generate, run the matrix, shrink failures.

Program ``i`` of a campaign with master seed ``S`` is always generated
from the derived seed ``S * 1_000_003 + i``, so any failure is
reproducible from ``(S, i)`` alone::

    python -m repro fuzz --n 500 --seed 1991      # the campaign
    python -m repro fuzz --n 500 --seed 1991 --jobs 4   # same, 4 workers
    python -m repro fuzz --reproduce 1991:37      # re-run program 37

The failure report carries both the original and the shrunk source, plus
the entry arguments, so a failing case can be pasted straight into a
regression test.

Campaigns parallelise cleanly because each program is a pure function of
``(S, i)``: the indices become jobs on a
:class:`repro.service.jobs.JobPool` (the service job layer this module's
PR-2/PR-4 pool machinery was generalized into), results are collected as
they finish, and the final report is sorted by index -- a campaign's
failure list is identical for every job count (only ``on_progress``
interleaving differs).

Campaigns are *resilient* by default: each program runs under an optional
wall-clock ``timeout_s``, and a program that crashes or times out is
retried once (with a short exponential backoff) and then **quarantined**
-- recorded in ``report.quarantined`` while the campaign continues.  The
legacy fail-fast behaviour (a crash aborts the campaign as
:class:`FuzzWorkerError`) is available with ``quarantine=False``.  Long
campaigns can keep a crash-tolerant checkpoint (``checkpoint_path``) and
later resume from it (``resume_path``); a resumed campaign's sorted
result lists are identical to an uninterrupted run's, for any job count.

The checkpoint is an append-only JSONL write-ahead log (v2): a header
line pinning the campaign parameters, then one entry per finished
program, flushed as it completes.  A ``kill -9`` can therefore tear at
most the *final* entry -- the loader drops a torn tail and simply re-runs
that index -- while a torn or mismatched header, or damage anywhere
before the tail, is still rejected as a corrupt/alien checkpoint (CLI
exit 2).  The single-document v1 format written by earlier releases is
accepted on resume unchanged.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Callable

from ..resilience.budget import watchdog
from ..resilience.errors import CheckpointError
from .differential import DEFAULT_MACHINES, DiffResult, run_differential
from .generator import GenProgram, generate_program
from .shrink import shrink_program

_SEED_STRIDE = 1_000_003
#: sleep before the retry of a crashed/timed-out program, doubled per
#: attempt (transient faults -- memory pressure, signal races -- get one
#: breath of air before we give up on the index)
_RETRY_BACKOFF_S = 0.05
#: attempts per program before quarantine: the first run plus one retry
_MAX_ATTEMPTS = 2
#: current checkpoint format: JSONL, header line + per-program entries
_CHECKPOINT_VERSION = 2


class FuzzWorkerError(RuntimeError):
    """A fuzz worker process died on an unexpected exception
    (``quarantine=False`` campaigns only)."""

    def __init__(self, index: int, worker_traceback: str):
        super().__init__(
            f"fuzz worker crashed on program {index}:\n{worker_traceback}")
        self.index = index
        self.worker_traceback = worker_traceback


def derive_seed(master_seed: int, index: int) -> int:
    """The generator seed of program ``index`` in a campaign."""
    return master_seed * _SEED_STRIDE + index


@dataclass
class FuzzFailure:
    """One failing program, before and after minimisation."""

    index: int
    seed: int
    detail: str
    source: str
    args: list
    shrunk_source: str | None = None
    shrunk_args: list | None = None
    shrunk_detail: str | None = None

    def format(self) -> str:
        out = [f"--- failure #{self.index} (seed {self.seed}) ---",
               self.detail,
               f"args: {self.args!r}"]
        if self.shrunk_source is not None:
            out += ["minimised reproducer:", self.shrunk_source,
                    f"args: {self.shrunk_args!r}",
                    self.shrunk_detail or ""]
        else:
            out += ["source:", self.source]
        return "\n".join(out)


@dataclass
class QuarantinedProgram:
    """A program whose *harness* run kept failing (crash or timeout) --
    parked after :data:`_MAX_ATTEMPTS` so the campaign can continue."""

    index: int
    seed: int
    attempts: int
    #: "crash" | "timeout"
    reason: str
    detail: str

    def format(self) -> str:
        return (f"--- quarantined #{self.index} (seed {self.seed}, "
                f"{self.reason} after {self.attempts} attempts) ---\n"
                f"{self.detail}")


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    master_seed: int
    attempted: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    #: programs parked after repeated crashes/timeouts (campaigns with
    #: ``quarantine=True``, the default)
    quarantined: list[QuarantinedProgram] = field(default_factory=list)
    #: per-program scheduling summaries (``collect_metrics=True`` only),
    #: sorted by index; see :func:`_program_metrics` for the keys
    metric_summaries: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        quarantine = (f", {len(self.quarantined)} quarantined"
                      if self.quarantined else "")
        return (f"fuzz: {self.attempted} programs, seed "
                f"{self.master_seed}: {status}{quarantine}")


def _program_metrics(index: int, program: GenProgram) -> dict:
    """Compile ``program`` once (rs6k, speculative) with metrics on and
    distill the campaign-level scheduling summary.  Deterministic in
    ``(seed, index)`` like everything else here."""
    from ..compiler import compile_c
    from ..machine.configs import CONFIGS
    from ..obs.metrics import MetricsCollector
    from ..sched.candidates import ScheduleLevel
    from ..xform.pipeline import PipelineConfig

    metrics = MetricsCollector()
    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE, metrics=metrics)
    compile_c(program.source, machine=CONFIGS["rs6k"](),
              level=ScheduleLevel.SPECULATIVE, config=config)
    ready_count, ready_total, ready_max = metrics.series.get(
        "sched.ready", (0, 0, 0))
    return {
        "index": index,
        "seed": program.seed,
        "motions_useful": metrics.counters.get("sched.motions.useful", 0),
        "motions_speculative": metrics.counters.get(
            "sched.motions.speculative", 0),
        "motions_duplicated": metrics.counters.get(
            "sched.motions.duplicated", 0),
        "spec_rejected": metrics.counters.get(
            "sched.speculation.rejected_live", 0),
        "spec_renamed": metrics.counters.get("sched.speculation.renamed", 0),
        "ready_mean": round(ready_total / ready_count, 3) if ready_count
                      else 0.0,
        "ready_max": ready_max,
    }


# -- checkpointing ------------------------------------------------------------

#: campaign parameters every checkpoint (v2 header, v1 body) must pin,
#: and the types it must carry them with (``bool`` is checked before
#: ``int`` -- JSON ``true`` is not a valid program count)
_HEADER_SCHEMA: dict[str, type] = {
    "master_seed": int,
    "n": int,
    "machines": list,
    "shrink": bool,
    "collect_metrics": bool,
}

#: a legacy v1 checkpoint is the header fields plus the result lists,
#: all in one JSON document
_V1_SCHEMA: dict[str, type] = {
    **_HEADER_SCHEMA,
    "done": list,
    "failures": list,
    "quarantined": list,
    "metric_summaries": list,
}


def _check_schema(path: str, state: dict, schema: dict, version: int) -> None:
    """Reject a version-tagged document whose body is not a checkpoint
    of that version (hand-edited, truncated-then-repaired, or from a
    different tool)."""
    for key, want in schema.items():
        if key not in state:
            raise CheckpointError(
                f"checkpoint {path} does not match the "
                f"v{version} schema: missing field {key!r}")
        value = state[key]
        bad_bool = want is int and isinstance(value, bool)
        if bad_bool or not isinstance(value, want):
            raise CheckpointError(
                f"checkpoint {path} does not match the "
                f"v{version} schema: field {key!r} should be "
                f"{want.__name__}, got {type(value).__name__}")


class _CheckpointWriter:
    """The v2 checkpoint WAL: header first (atomically, with any
    already-validated resumed entries), then O(1) appends -- one flushed
    JSONL entry per finished program."""

    def __init__(self, path: str, header: dict, entries=()):
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")
        os.replace(tmp, path)
        self._fh = open(path, "a", encoding="utf-8")

    def append(self, entry: dict) -> None:
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def _entries_from_state(state: dict) -> list[dict]:
    """Reconstruct the per-program v2 entries of a validated checkpoint
    state (seeds the rewrite a resumed campaign starts from)."""
    failures = {f["index"]: f for f in state["failures"]}
    quarantined = {q["index"]: q for q in state["quarantined"]}
    metrics = {s["index"]: s for s in state["metric_summaries"]}
    return [{"done": index,
             "failure": failures.get(index),
             "quarantined": quarantined.get(index),
             "metrics": metrics.get(index)}
            for index in sorted(state["done"])]


def _load_v1(path: str, text: str) -> dict:
    """A legacy single-document checkpoint: the whole file is one JSON
    object carrying the result lists inline."""
    try:
        state = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    _check_schema(path, state, _V1_SCHEMA, 1)
    return state


def _load_v2(path: str, header: dict, lines: list[str]) -> dict:
    """The JSONL WAL: validate the header, fold the entry lines.  A torn
    *final* line (the crash the format exists for) is dropped -- its
    index just re-runs; damage anywhere else is corruption."""
    _check_schema(path, header, _HEADER_SCHEMA, 2)
    while lines and not lines[-1].strip():
        lines.pop()
    done: set[int] = set()
    failures: list[dict] = []
    quarantined: list[dict] = []
    metric_summaries: list[dict] = []
    for pos, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            if pos == len(lines) - 1:
                break  # torn tail: that program will simply re-run
            raise CheckpointError(
                f"corrupt checkpoint {path}: line {pos + 2}: "
                f"{exc.msg}") from exc
        index = entry.get("done") if isinstance(entry, dict) else None
        if not isinstance(index, int) or isinstance(index, bool):
            raise CheckpointError(
                f"checkpoint {path} does not match the v2 schema: "
                f"line {pos + 2} is not a program entry")
        if index in done:
            continue
        done.add(index)
        if entry.get("failure") is not None:
            failures.append(entry["failure"])
        if entry.get("quarantined") is not None:
            quarantined.append(entry["quarantined"])
        if entry.get("metrics") is not None:
            metric_summaries.append(entry["metrics"])
    return {**{key: header[key] for key in _HEADER_SCHEMA},
            "version": 2, "done": sorted(done), "failures": failures,
            "quarantined": quarantined,
            "metric_summaries": metric_summaries}


def _load_checkpoint(path: str, *, n: int, seed: int,
                     machines: tuple[str, ...], shrink: bool,
                     collect_metrics: bool) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from exc
    first, _, _rest = text.partition("\n")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        # includes the torn-header case: a v2 WAL whose *first* line is
        # damaged pins nothing, so nothing of it can be trusted
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(header, dict):
        raise CheckpointError(
            f"corrupt checkpoint {path}: not a JSON object")
    version = header.get("version")
    if version == 1:
        state = _load_v1(path, text)
    elif version == _CHECKPOINT_VERSION:
        state = _load_v2(path, header, _rest.split("\n"))
    else:
        raise CheckpointError(
            f"checkpoint {path} has unsupported version {version!r}")
    expected = {"master_seed": seed, "n": n, "machines": list(machines),
                "shrink": shrink, "collect_metrics": collect_metrics}
    for key, want in expected.items():
        if state.get(key) != want:
            raise CheckpointError(
                f"checkpoint {path} belongs to a different campaign: "
                f"{key}={state.get(key)!r}, this campaign has {want!r}")
    return state


# -- per-program execution ----------------------------------------------------

def _attempt(master_seed: int, index: int, machines: tuple[str, ...],
             shrink: bool, collect_metrics: bool,
             timeout_s: float | None,
             ) -> tuple[FuzzFailure | None, dict | None]:
    """One harness run of one campaign index, bounded by ``timeout_s``."""
    with watchdog(timeout_s, f"fuzz:program-{index}"):
        return _harness(master_seed, index, machines, shrink,
                        collect_metrics)


def _harness(master_seed: int, index: int, machines: tuple[str, ...],
             shrink: bool, collect_metrics: bool,
             ) -> tuple[FuzzFailure | None, dict | None]:
    """The differential harness proper (deadline applied by the caller)."""
    program = generate_program(derive_seed(master_seed, index))
    outcome = run_differential(program, machines=machines)
    summary = (_program_metrics(index, program)
               if collect_metrics else None)
    if outcome.ok:
        return None, summary
    return (_build_failure(index, program, outcome, machines, shrink),
            summary)


def _fuzz_job(payload) -> tuple[FuzzFailure | None, dict | None]:
    """:class:`~repro.service.jobs.JobPool` handler: one campaign index.

    The job layer supplies the per-job deadline, the retry-with-backoff,
    and the quarantine bookkeeping that used to live here.
    """
    master_seed, index, machines, shrink, collect_metrics = payload
    return _harness(master_seed, index, machines, shrink, collect_metrics)


def fuzz(
    n: int,
    seed: int,
    *,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    shrink: bool = True,
    on_progress: Callable[[int, int], None] | None = None,
    stop_after: int | None = None,
    jobs: int = 1,
    collect_metrics: bool = False,
    timeout_s: float | None = None,
    quarantine: bool = True,
    checkpoint_path: str | None = None,
    resume_path: str | None = None,
    interrupt_after: int | None = None,
) -> FuzzReport:
    """Run ``n`` generated programs through the differential matrix.

    ``on_progress(done, failures)`` is called after every program;
    ``stop_after`` aborts the campaign early once that many failures have
    been collected (None = run everything).  ``jobs > 1`` distributes the
    programs over a worker pool; because every program derives from
    ``(seed, index)`` alone, the sorted failure list is independent of the
    job count (``stop_after`` may admit a different-but-overlapping subset
    when completion order differs).  ``collect_metrics`` additionally
    compiles each program with a metrics collector and records a
    per-program scheduling summary in ``report.metric_summaries``.

    ``timeout_s`` bounds each program's harness run; ``quarantine``
    (default) parks repeat offenders instead of aborting.
    ``checkpoint_path`` keeps an append-only JSONL WAL of finished
    programs (flushed per entry, so at most the final line can be torn
    by a crash); ``resume_path`` seeds the campaign from such a file --
    torn tail tolerated, that index re-runs -- and only runs the
    remaining indices; the finished report is identical to an
    uninterrupted run's.  ``interrupt_after`` stops the campaign after
    that many programs *this run* (exercises the checkpoint/resume path).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    report = FuzzReport(master_seed=seed)
    done: set[int] = set()
    state: dict | None = None
    if resume_path is not None:
        state = _load_checkpoint(resume_path, n=n, seed=seed,
                                 machines=machines, shrink=shrink,
                                 collect_metrics=collect_metrics)
        done = set(state["done"])
        report.attempted = len(done)
        report.failures = [FuzzFailure(**f) for f in state["failures"]]
        report.quarantined = [QuarantinedProgram(**q)
                              for q in state["quarantined"]]
        report.metric_summaries = list(state["metric_summaries"])
    writer: _CheckpointWriter | None = None
    if checkpoint_path is not None:
        header = {"version": _CHECKPOINT_VERSION, "master_seed": seed,
                  "n": n, "machines": list(machines), "shrink": shrink,
                  "collect_metrics": collect_metrics}
        writer = _CheckpointWriter(
            checkpoint_path, header,
            _entries_from_state(state) if state is not None else ())
    pending = [index for index in range(n) if index not in done]

    completed_this_run = 0

    def complete(index: int, failure, quarantined, error, summary) -> bool:
        """Fold one result into the report; False stops the campaign."""
        nonlocal completed_this_run
        if error is not None:
            raise FuzzWorkerError(index, error)
        done.add(index)
        report.attempted += 1
        completed_this_run += 1
        if failure is not None:
            report.failures.append(failure)
        if quarantined is not None:
            report.quarantined.append(quarantined)
        if summary is not None:
            report.metric_summaries.append(summary)
        if writer is not None:
            writer.append({
                "done": index,
                "failure": asdict(failure) if failure is not None else None,
                "quarantined": (asdict(quarantined)
                                if quarantined is not None else None),
                "metrics": summary})
        if on_progress is not None:
            on_progress(report.attempted, len(report.failures))
        if stop_after is not None and len(report.failures) >= stop_after:
            return False
        if (interrupt_after is not None
                and completed_this_run >= interrupt_after):
            return False
        return True

    def finish() -> FuzzReport:
        report.failures.sort(key=lambda f: f.index)
        report.quarantined.sort(key=lambda q: q.index)
        report.metric_summaries.sort(key=lambda s: s["index"])
        return report

    try:
        if jobs == 1 and not quarantine:
            # legacy fail-fast: exceptions propagate to the caller raw
            for index in pending:
                failure, summary = _attempt(seed, index, machines, shrink,
                                            collect_metrics, timeout_s)
                if not complete(index, failure, None, None, summary):
                    break
            return finish()

        from ..service.jobs import (
            CRASHED, OK, QUARANTINED, JobPool, JobSpec)

        specs = [JobSpec(id=index,
                         payload=(seed, index, machines, shrink,
                                  collect_metrics))
                 for index in pending]
        with JobPool(_fuzz_job, jobs=jobs, queue_size=max(16, 4 * jobs),
                     timeout_s=timeout_s, quarantine=quarantine,
                     max_attempts=_MAX_ATTEMPTS,
                     retry_backoff_s=_RETRY_BACKOFF_S) as pool:
            for result in pool.run(specs):
                index = result.id
                failure = parked = error = summary = None
                if result.status == OK:
                    failure, summary = result.value
                elif result.status == QUARANTINED:
                    parked = QuarantinedProgram(
                        index=index, seed=derive_seed(seed, index),
                        attempts=result.attempts, reason=result.reason,
                        detail=result.detail)
                elif result.status == CRASHED:
                    error = result.detail
                if not complete(index, failure, parked, error, summary):
                    break
            # leaving the with-block terminates still-running workers
        return finish()
    finally:
        if writer is not None:
            writer.close()


def _build_failure(
    index: int,
    program: GenProgram,
    outcome: DiffResult,
    machines: tuple[str, ...],
    shrink: bool,
) -> FuzzFailure:
    failure = FuzzFailure(
        index=index,
        seed=program.seed,
        detail=outcome.format_failures(),
        source=program.source,
        args=list(program.entry_args),
    )
    if shrink:
        def still_fails(candidate: GenProgram) -> bool:
            return not run_differential(candidate, machines=machines).ok

        small = shrink_program(program, still_fails)
        failure.shrunk_source = small.source
        failure.shrunk_args = list(small.entry_args)
        failure.shrunk_detail = run_differential(
            small, machines=machines).format_failures()
    return failure


def reproduce(master_seed: int, index: int,
              *, machines: tuple[str, ...] = DEFAULT_MACHINES,
              shrink: bool = True,
              timeout_s: float | None = None,
              ) -> FuzzFailure | GenProgram:
    """Re-run one campaign program, bounded by the same per-program
    ``timeout_s`` a campaign would apply.  Returns the
    :class:`FuzzFailure` (shrunk if requested) when it still fails, or
    the passing :class:`GenProgram` otherwise."""
    with watchdog(timeout_s, f"fuzz:program-{index}"):
        program = generate_program(derive_seed(master_seed, index))
        outcome = run_differential(program, machines=machines)
        if outcome.ok:
            return program
        return _build_failure(index, program, outcome, machines, shrink)


def degradation_rung(program: GenProgram, *, machine_name: str = "rs6k",
                     timeout_s: float | None = None) -> str:
    """Compile ``program`` once through the *resilient* pipeline and
    report the degradation-ladder rung it lands on (worst across the
    unit's functions) -- ``repro fuzz --reproduce`` prints this."""
    from ..compiler import compile_c
    from ..machine.configs import CONFIGS
    from ..resilience.ladder import ResilienceConfig, worst_rung
    from ..sched.candidates import ScheduleLevel
    from ..xform.pipeline import PipelineConfig

    config = PipelineConfig(
        verify=True,
        resilience=ResilienceConfig(program_budget_s=timeout_s))
    unit = compile_c(program.source, machine=CONFIGS[machine_name](),
                     level=ScheduleLevel.SPECULATIVE, config=config)
    return worst_rung(u.report.final_rung for u in unit)
