"""Differential fuzzing loop: generate, run the matrix, shrink failures.

Program ``i`` of a campaign with master seed ``S`` is always generated
from the derived seed ``S * 1_000_003 + i``, so any failure is
reproducible from ``(S, i)`` alone::

    python -m repro fuzz --n 500 --seed 1991      # the campaign
    python -m repro fuzz --reproduce 1991:37      # re-run program 37

The failure report carries both the original and the shrunk source, plus
the entry arguments, so a failing case can be pasted straight into a
regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .differential import DEFAULT_MACHINES, DiffResult, run_differential
from .generator import GenProgram, generate_program
from .shrink import shrink_program

_SEED_STRIDE = 1_000_003


def derive_seed(master_seed: int, index: int) -> int:
    """The generator seed of program ``index`` in a campaign."""
    return master_seed * _SEED_STRIDE + index


@dataclass
class FuzzFailure:
    """One failing program, before and after minimisation."""

    index: int
    seed: int
    detail: str
    source: str
    args: list
    shrunk_source: str | None = None
    shrunk_args: list | None = None
    shrunk_detail: str | None = None

    def format(self) -> str:
        out = [f"--- failure #{self.index} (seed {self.seed}) ---",
               self.detail,
               f"args: {self.args!r}"]
        if self.shrunk_source is not None:
            out += ["minimised reproducer:", self.shrunk_source,
                    f"args: {self.shrunk_args!r}",
                    self.shrunk_detail or ""]
        else:
            out += ["source:", self.source]
        return "\n".join(out)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    master_seed: int
    attempted: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (f"fuzz: {self.attempted} programs, seed "
                f"{self.master_seed}: {status}")


def fuzz(
    n: int,
    seed: int,
    *,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    shrink: bool = True,
    on_progress: Callable[[int, int], None] | None = None,
    stop_after: int | None = None,
) -> FuzzReport:
    """Run ``n`` generated programs through the differential matrix.

    ``on_progress(done, failures)`` is called after every program;
    ``stop_after`` aborts the campaign early once that many failures have
    been collected (None = run everything).
    """
    report = FuzzReport(master_seed=seed)
    for index in range(n):
        program = generate_program(derive_seed(seed, index))
        outcome = run_differential(program, machines=machines)
        report.attempted += 1
        if not outcome.ok:
            report.failures.append(
                _build_failure(index, program, outcome, machines, shrink))
        if on_progress is not None:
            on_progress(report.attempted, len(report.failures))
        if stop_after is not None and len(report.failures) >= stop_after:
            break
    return report


def _build_failure(
    index: int,
    program: GenProgram,
    outcome: DiffResult,
    machines: tuple[str, ...],
    shrink: bool,
) -> FuzzFailure:
    failure = FuzzFailure(
        index=index,
        seed=program.seed,
        detail=outcome.format_failures(),
        source=program.source,
        args=list(program.entry_args),
    )
    if shrink:
        def still_fails(candidate: GenProgram) -> bool:
            return not run_differential(candidate, machines=machines).ok

        small = shrink_program(program, still_fails)
        failure.shrunk_source = small.source
        failure.shrunk_args = list(small.entry_args)
        failure.shrunk_detail = run_differential(
            small, machines=machines).format_failures()
    return failure


def reproduce(master_seed: int, index: int,
              *, machines: tuple[str, ...] = DEFAULT_MACHINES,
              shrink: bool = True) -> FuzzFailure | GenProgram:
    """Re-run one campaign program.  Returns the :class:`FuzzFailure`
    (shrunk if requested) when it still fails, or the passing
    :class:`GenProgram` otherwise."""
    program = generate_program(derive_seed(master_seed, index))
    outcome = run_differential(program, machines=machines)
    if outcome.ok:
        return program
    return _build_failure(index, program, outcome, machines, shrink)
