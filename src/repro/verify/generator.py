"""Seeded grammar-based generator for mini-C test programs.

Programs are built as a *statement tree* (not a flat string), so the
shrinker can delete or flatten statements structurally and re-render; the
expressions inside each statement are pre-rendered strings (statement-level
shrinking is enough in practice -- an expression that matters survives, one
that does not disappears with its statement).

Generated programs are safe by construction:

* every variable is initialised at its (unique) declaration -- the lowerer
  rejects redeclaration, and uninitialised reads would be nondeterministic;
* `for` loops have constant bounds and `while` loops count a dedicated
  variable down, so every program terminates;
* divisors are either nonzero constants or masked-plus-one expressions
  (``(e & 7) + 1``), so the executor's division-by-zero trap never fires;
* shift amounts are small constants (the lowerer requires constant shifts);
* array indices are always masked to the array length (8 words);
* helper calls form an acyclic graph and helpers take scalars only (the
  linked-handler call boundary cannot pass arrays).

The generator deliberately *loves* short-circuit conditions (``&&``/``||``
appear with high probability): their multi-test CFG shapes produce join
blocks that are reached around their predecessors -- exactly the terrain
where an unsound speculation rule miscompiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_ARRAY_LEN = 8
_REL_OPS = ("<", "<=", ">", ">=", "==", "!=")
_ARITH_OPS = ("+", "-", "*", "&", "|", "^")


@dataclass
class Line:
    """One single-line statement (declaration, assignment, store, return,
    break, continue), already rendered."""

    text: str

    def render(self, indent: str) -> list[str]:
        return [f"{indent}{self.text}"]


@dataclass
class If:
    cond: str
    then: list = field(default_factory=list)
    els: list = field(default_factory=list)

    def render(self, indent: str) -> list[str]:
        out = [f"{indent}if ({self.cond}) {{"]
        for stmt in self.then:
            out.extend(stmt.render(indent + "    "))
        if self.els:
            out.append(f"{indent}}} else {{")
            for stmt in self.els:
                out.extend(stmt.render(indent + "    "))
        out.append(f"{indent}}}")
        return out


@dataclass
class Loop:
    """A `for` or `while` statement; ``head`` carries the whole header and
    ``tail`` an optional fixed final statement (the while counter's
    decrement, which shrinking must never remove)."""

    head: str
    body: list = field(default_factory=list)
    tail: str | None = None

    def render(self, indent: str) -> list[str]:
        out = [f"{indent}{self.head} {{"]
        for stmt in self.body:
            out.extend(stmt.render(indent + "    "))
        if self.tail:
            out.append(f"{indent}    {self.tail}")
        out.append(f"{indent}}}")
        return out


@dataclass
class GenFunction:
    name: str
    #: (kind, name) with kind "int" or "array"
    params: list[tuple[str, str]]
    body: list = field(default_factory=list)
    #: the mandatory trailing `return expr;` (never shrunk away)
    final_return: str = "return 0;"

    def render(self) -> list[str]:
        sig = ", ".join(
            f"int {n}[]" if kind == "array" else f"int {n}"
            for kind, n in self.params
        )
        out = [f"int {self.name}({sig}) {{"]
        for stmt in self.body:
            out.extend(stmt.render("    "))
        out.append(f"    {self.final_return}")
        out.append("}")
        return out


@dataclass
class GenProgram:
    """One generated test program plus the arguments to run it with."""

    seed: int
    functions: list[GenFunction]
    #: name of the function the differential runner executes
    entry: str
    #: positional arguments for the entry (ints and length-8 lists)
    entry_args: list

    @property
    def source(self) -> str:
        lines: list[str] = [f"/* generated: seed={self.seed} */"]
        for fn in self.functions:
            lines.extend(fn.render())
            lines.append("")
        return "\n".join(lines)

    def describe_args(self) -> str:
        return ", ".join(repr(a) for a in self.entry_args)


class _FunctionGen:
    """Generates one function's body within fixed scope rules."""

    def __init__(self, rng: random.Random, params: list[tuple[str, str]],
                 callees: list[tuple[str, int]]):
        self.rng = rng
        self.vars = [n for kind, n in params if kind == "int"]
        #: loop counters: readable, but assigning one could break
        #: termination, so they are never assignment targets
        self.ro_vars: list[str] = []
        self.arrays = [n for kind, n in params if kind == "array"]
        self.callees = callees
        self._counter = 0
        #: kinds of the enclosing loops, innermost last ("for" | "while")
        self._loop_stack: list[str] = []

    # -- names ----------------------------------------------------------

    def fresh(self, prefix: str = "v") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- expressions ----------------------------------------------------

    def atom(self) -> str:
        r = self.rng
        readable = self.vars + self.ro_vars
        pool = ["const"] * 2 + ["var"] * (3 if readable else 0)
        pool += ["load"] * (2 if self.arrays else 0)
        match r.choice(pool):
            case "var":
                return r.choice(readable)
            case "load":
                arr = r.choice(self.arrays)
                return f"{arr}[{self.index_expr()}]"
            case _:
                return str(r.randint(-9, 99))

    def index_expr(self) -> str:
        """An in-bounds array index: anything, masked to the length."""
        readable = self.vars + self.ro_vars
        if readable and self.rng.random() < 0.7:
            inner = self.rng.choice(readable)
        else:
            inner = str(self.rng.randint(0, 7))
            return inner  # small constant, already in bounds
        return f"({inner} & {_ARRAY_LEN - 1})"

    def expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth >= 2 or r.random() < 0.35:
            return self.atom()
        kind = r.random()
        if kind < 0.08 and self.callees and depth == 0:
            return self.call_expr()
        if kind < 0.16:
            # constant shift (the lowerer requires a literal amount)
            return f"({self.expr(depth + 1)} {r.choice(('<<', '>>'))} " \
                   f"{r.randint(1, 4)})"
        if kind < 0.26:
            # safe division / remainder: masked-plus-one divisor
            op = r.choice(("/", "%"))
            return f"({self.expr(depth + 1)} {op} " \
                   f"(({self.atom()} & 7) + 1))"
        op = r.choice(_ARITH_OPS)
        return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"

    def call_expr(self) -> str:
        name, arity = self.rng.choice(self.callees)
        args = ", ".join(self.atom() for _ in range(arity))
        return f"{name}({args})"

    def compare(self) -> str:
        return f"{self.expr(1)} {self.rng.choice(_REL_OPS)} {self.expr(1)}"

    def cond(self) -> str:
        """A condition; short-circuit shapes are generated *often* because
        their CFGs (non-dominated join blocks) are where speculation bugs
        live."""
        r = self.rng.random()
        if r < 0.30:
            return f"{self.compare()} && {self.compare()}"
        if r < 0.60:
            return f"{self.compare()} || {self.compare()}"
        if r < 0.68:
            return (f"{self.compare()} && "
                    f"({self.compare()} || {self.compare()})")
        return self.compare()

    # -- statements -----------------------------------------------------

    def stmt(self, depth: int, budget: int) -> object:
        r = self.rng
        roll = r.random()
        if roll < 0.14 and depth < 2 and budget >= 3:
            return self.gen_loop(depth, budget)
        if roll < 0.40 and depth < 3 and budget >= 2:
            return self.gen_if(depth, budget)
        return self.gen_line(depth)

    def gen_line(self, depth: int) -> Line:
        r = self.rng
        roll = r.random()
        if roll < 0.12 and self._loop_stack:
            # `continue` in a while-loop would skip the counter decrement
            # (infinite loop); only `for` routes it through the step block
            if self._loop_stack[-1] == "for" and r.random() < 0.5:
                return Line("continue;")
            return Line("break;")
        if roll < 0.35 and self.arrays:
            arr = r.choice(self.arrays)
            return Line(f"{arr}[{self.index_expr()}] = {self.expr()};")
        if roll < 0.60 and self.vars:
            var = r.choice(self.vars)
            if r.random() < 0.3:
                op = r.choice(("+=", "-=", "*=", "^="))
                return Line(f"{var} {op} {self.expr(1)};")
            return Line(f"{var} = {self.expr()};")
        name = self.fresh()
        line = Line(f"int {name} = {self.expr()};")
        self.vars.append(name)
        return line

    def _scoped_block(self, depth: int, budget: int) -> list:
        """Generate a nested block; variables it declares go out of scope
        when it closes (the lowerer's env is flat, but a decl on one path
        read on another would be an undefined value)."""
        n_vars, n_ro = len(self.vars), len(self.ro_vars)
        body = self.block(depth, budget)
        del self.vars[n_vars:]
        del self.ro_vars[n_ro:]
        return body

    def gen_if(self, depth: int, budget: int) -> If:
        cond = self.cond()  # before the bodies: only prior vars are visible
        then = self._scoped_block(depth + 1, max(1, budget // 2))
        els: list = []
        if self.rng.random() < 0.5:
            els = self._scoped_block(depth + 1, max(1, budget // 3))
        return If(cond, then, els)

    def gen_loop(self, depth: int, budget: int) -> Loop:
        r = self.rng
        if r.random() < 0.7:
            var = self.fresh("i")
            bound = r.randint(2, _ARRAY_LEN)
            # initialised by the loop header itself, so it stays readable
            # inside the body *and* after the loop
            self.ro_vars.append(var)
            self._loop_stack.append("for")
            body = self._scoped_block(depth + 1, max(1, budget - 2))
            self._loop_stack.pop()
            head = f"for (int {var} = 0; {var} < {bound}; {var} += 1)"
            loop = Loop(head, body)
        else:
            var = self.fresh("t")
            start = r.randint(2, 6)
            self.ro_vars.append(var)
            self._loop_stack.append("while")
            body = self._scoped_block(depth + 1, max(1, budget - 2))
            self._loop_stack.pop()
            loop = Loop(f"while ({var} > 0)", body, tail=f"{var} -= 1;")
            # the counter must exist before the loop: the caller prepends
            loop.head_decl = f"int {var} = {start};"  # type: ignore[attr-defined]
        return loop

    def block(self, depth: int, budget: int) -> list:
        out: list = []
        n = self.rng.randint(1, max(1, budget))
        for _ in range(n):
            stmt = self.stmt(depth, budget)
            decl = getattr(stmt, "head_decl", None)
            if decl is not None:
                out.append(Line(decl))
            out.append(stmt)
        return out


def generate_program(seed: int) -> GenProgram:
    """Deterministically generate one runnable test program from ``seed``."""
    rng = random.Random(seed)

    helpers: list[tuple[str, int]] = []
    functions: list[GenFunction] = []
    for h in range(rng.randint(0, 2)):
        arity = rng.randint(1, 3)
        params = [("int", f"a{i}") for i in range(arity)]
        gen = _FunctionGen(rng, params, list(helpers))
        fn = GenFunction(f"helper{h}", params)
        fn.body = gen.block(0, rng.randint(2, 5))
        fn.final_return = f"return {gen.expr()};"
        functions.append(fn)
        helpers.append((fn.name, arity))

    n_scalars = rng.randint(1, 3)
    n_arrays = rng.randint(1, 2)
    params = [("int", f"a{i}") for i in range(n_scalars)]
    params += [("array", f"p{i}") for i in range(n_arrays)]
    gen = _FunctionGen(rng, params, helpers)
    entry = GenFunction("test", params)
    entry.body = gen.block(0, rng.randint(5, 10))
    entry.final_return = f"return {gen.expr()};"
    functions.append(entry)

    args: list = [rng.randint(-10, 50) for _ in range(n_scalars)]
    args += [[rng.randint(-20, 80) for _ in range(_ARRAY_LEN)]
             for _ in range(n_arrays)]
    return GenProgram(seed=seed, functions=functions, entry="test",
                      entry_args=args)
