"""Greedy structural minimisation of failing generated programs.

Classic delta debugging over the generator's statement tree: propose a
smaller variant, keep it iff the caller's predicate still holds (i.e. the
failure still reproduces), repeat to a fixpoint.  Variants that no longer
compile are harmless -- the predicate treats any non-reproduction
(including a parse or lowering error) as "does not fail", so they are
simply rejected.

Reduction operations, tried largest-first:

* drop a whole function (helpers whose calls all got deleted);
* drop a contiguous chunk of a statement list (halves, then quarters, ...);
* drop a single statement;
* replace an ``if``/loop by its body (flattening the control structure);
* replace a scalar entry argument by 0.

The predicate is invoked once per proposed variant, so shrinking a
differential failure re-runs the full level x machine matrix each step;
generated programs are small and this stays well under a second per
candidate in practice.
"""

from __future__ import annotations

import copy
from typing import Callable

from .generator import GenProgram, If, Loop

#: safety valve: stop after this many predicate evaluations
MAX_PROBES = 400


def shrink_program(
    program: GenProgram,
    still_fails: Callable[[GenProgram], bool],
) -> GenProgram:
    """The smallest variant of ``program`` (under the operations above)
    for which ``still_fails`` holds.  ``program`` itself must fail."""
    best = program
    probes = 0

    def probe(candidate: GenProgram) -> bool:
        nonlocal probes, best
        if probes >= MAX_PROBES:
            return False
        probes += 1
        try:
            failed = still_fails(candidate)
        except Exception:
            failed = False  # broken variant: reject
        if failed:
            best = candidate
        return failed

    changed = True
    while changed and probes < MAX_PROBES:
        changed = False
        if _try_drop_functions(best, probe):
            changed = True
            continue
        if _try_reduce_bodies(best, probe):
            changed = True
            continue
        if _try_zero_args(best, probe):
            changed = True
    return best


def _try_drop_functions(program: GenProgram, probe) -> bool:
    for i, fn in enumerate(program.functions):
        if fn.name == program.entry:
            continue
        candidate = copy.deepcopy(program)
        del candidate.functions[i]
        if probe(candidate):
            return True
    return False


def _bodies(program: GenProgram):
    """Yield ``(function_index, path)`` for every statement list, where
    ``path`` is a sequence of (statement_index, body_name) hops from the
    function body down to the list."""
    def walk(stmts, path):
        yield path
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, If):
                yield from walk(stmt.then, path + ((i, "then"),))
                if stmt.els:
                    yield from walk(stmt.els, path + ((i, "els"),))
            elif isinstance(stmt, Loop):
                yield from walk(stmt.body, path + ((i, "body"),))

    for fi, fn in enumerate(program.functions):
        for path in walk(fn.body, ()):
            yield fi, path


def _resolve(program: GenProgram, fi: int, path) -> list:
    stmts = program.functions[fi].body
    for index, name in path:
        stmts = getattr(stmts[index], name)
    return stmts


def _try_reduce_bodies(program: GenProgram, probe) -> bool:
    for fi, path in list(_bodies(program)):
        stmts = _resolve(program, fi, path)
        n = len(stmts)
        # chunks, biggest first
        size = n
        while size >= 1:
            start = 0
            while start < n:
                candidate = copy.deepcopy(program)
                target = _resolve(candidate, fi, path)
                del target[start:start + size]
                if probe(candidate):
                    return True
                start += size
            size //= 2
        # flatten compound statements into their bodies
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, If):
                for body_name in ("then", "els"):
                    inner = getattr(stmt, body_name)
                    if not inner:
                        continue
                    candidate = copy.deepcopy(program)
                    target = _resolve(candidate, fi, path)
                    target[i:i + 1] = getattr(target[i], body_name)
                    if probe(candidate):
                        return True
            elif isinstance(stmt, Loop):
                candidate = copy.deepcopy(program)
                target = _resolve(candidate, fi, path)
                target[i:i + 1] = target[i].body
                if probe(candidate):
                    return True
    return False


def _try_zero_args(program: GenProgram, probe) -> bool:
    for i, arg in enumerate(program.entry_args):
        if isinstance(arg, int) and arg != 0:
            candidate = copy.deepcopy(program)
            candidate.entry_args[i] = 0
            if probe(candidate):
                return True
        elif isinstance(arg, list) and any(arg):
            candidate = copy.deepcopy(program)
            candidate.entry_args[i] = [0] * len(arg)
            if probe(candidate):
                return True
    return False
