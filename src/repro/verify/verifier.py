"""Static verification of global/local schedules.

Given a snapshot of a function *before* a scheduling pass (see
:meth:`repro.ir.Function.clone`) and the function *after* it, the verifier
checks -- without executing anything -- that the pass only did things the
paper allows:

* **skeleton** -- scheduling never creates, removes or re-terminates basic
  blocks ("the original order of branches is preserved", Section 5.1);
* **conservation** -- every instruction survives exactly once (modulo
  Definition 6 duplication), with only its registers possibly renamed;
* **placement** -- an instruction that changed blocks moved within its
  region, into a block for which its home was a legal candidate at the
  requested :class:`~repro.sched.candidates.ScheduleLevel` (equivalent
  blocks for useful motion, dominated blocks at most ``max_speculation``
  CSPDG branches away for speculative motion -- Definitions 4, 6 and 7);
* **dependence** -- every flow/anti/output/memory edge of the region's
  pre-scheduling data dependence graph (built un-reduced, so no edge is
  hidden by transitivity) still runs source-before-destination: same block
  implies earlier index, different blocks imply forward-graph
  reachability.  Edges legitimately dissolved by the scheduler's on-demand
  renaming (Section 4.2) are recognised from the after-side operands and
  skipped;
* **speculation** -- replaying the recorded motions in issue order against
  a fresh :class:`~repro.sched.speculation.LiveOnExitTracker` (seeded from
  the snapshot's liveness solution, exactly like the scheduling driver),
  every speculative motion must pass the Section 5.3 live-on-exit test at
  the moment it happened.

Flow-edge *delays* impose timing, not ordering: the simulated machine
interlocks (like the RS/6000), so a schedule that ignores a delay is slow,
never wrong.  The verifier therefore enforces delays as ordering
constraints (source strictly before destination) and leaves stall-cycle
accounting to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..dataflow.liveness import compute_liveness
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from ..ir.verify import VerificationError, verify_function
from ..machine.model import MachineModel
from ..pdg.data_deps import DepEdge, DepKind
from ..sched.candidates import ScheduleLevel, candidate_blocks
from ..sched.driver import default_live_at_exit
from ..sched.global_sched import Motion
from ..sched.regions import RegionSpec, build_region_pdg, find_regions
from ..sched.speculation import LiveOnExitTracker


class ScheduleVerificationError(VerificationError):
    """The scheduled function violates a schedule-legality invariant."""

    def __init__(self, report: "VerifyReport"):
        super().__init__(report.format())
        self.report = report


@dataclass(frozen=True)
class VerifyIssue:
    """One violation found by the verifier."""

    #: "skeleton" | "conservation" | "placement" | "dependence" | "speculation"
    kind: str
    message: str
    uid: int | None = None

    def __str__(self) -> str:
        tag = f" (I{self.uid})" if self.uid is not None else ""
        return f"[{self.kind}]{tag} {self.message}"


@dataclass
class VerifyReport:
    """Everything one verification pass looked at, plus what it found."""

    function: str
    level: ScheduleLevel
    issues: list[VerifyIssue] = field(default_factory=list)
    checked_edges: int = 0
    checked_motions: int = 0
    checked_regions: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, kind: str, message: str, uid: int | None = None) -> None:
        self.issues.append(VerifyIssue(kind, message, uid))

    def raise_if_failed(self) -> "VerifyReport":
        if not self.ok:
            raise ScheduleVerificationError(self)
        return self

    def format(self) -> str:
        head = (f"schedule verification of {self.function} "
                f"@{self.level.value}: "
                f"{len(self.issues)} issue(s), {self.checked_edges} edges, "
                f"{self.checked_motions} motions, "
                f"{self.checked_regions} regions")
        return "\n".join([head, *(f"  {i}" for i in self.issues)])

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.issues)} issues"
        return f"<VerifyReport {self.function}: {status}>"


@dataclass(frozen=True)
class _Placed:
    """Where one instruction sits in a function."""

    ins: Instruction
    label: str
    index: int


def _index(func: Function) -> dict[int, _Placed]:
    """Map uid -> placement.  Duplicate uids are a skeleton error and are
    reported by the caller via :func:`verify_function`."""
    out: dict[int, _Placed] = {}
    for block in func.blocks:
        for i, ins in enumerate(block.instrs):
            out[ins.uid] = _Placed(ins, block.label, i)
    return out


def _immutable_fields(ins: Instruction) -> tuple:
    """The parts of an instruction scheduling may never change.

    Registers are excluded (on-demand renaming may substitute them); the
    memory *displacement* and symbol must survive even when the base
    register is renamed.
    """
    mem = (ins.mem.disp, ins.mem.symbol) if ins.mem is not None else None
    return (ins.opcode, ins.imm, mem, ins.target, ins.mask,
            len(ins.defs), len(ins.uses))


def _edge_dissolved(edge: DepEdge, a: Instruction, b: Instruction) -> bool:
    """Did renaming legitimately remove the dependence ``edge``?

    Recomputed from the *after* operands: a flow edge needs the source to
    still define a register the destination uses, and so on.  Memory edges
    never dissolve (renaming does not touch the memory disambiguator's
    verdict -- base registers may be renamed but then both sides were).
    """
    if edge.kind is DepKind.FLOW:
        return not (set(a.reg_defs()) & set(b.reg_uses()))
    if edge.kind is DepKind.ANTI:
        return not (set(a.reg_uses()) & set(b.reg_defs()))
    if edge.kind is DepKind.OUTPUT:
        return not (set(a.reg_defs()) & set(b.reg_defs()))
    return False


def verify_schedule(
    before: Function,
    after: Function,
    machine: MachineModel,
    *,
    level: ScheduleLevel = ScheduleLevel.SPECULATIVE,
    live_at_exit: frozenset[Reg] | None = None,
    motions: list[Motion] | tuple[Motion, ...] = (),
    max_speculation: int = 1,
    allow_duplication: bool = False,
    raise_on_error: bool = True,
) -> VerifyReport:
    """Check that ``after`` is a legal schedule of ``before``.

    ``before`` must be a uid-preserving snapshot (:meth:`Function.clone`)
    taken immediately before the scheduling pass; ``motions`` is the pass's
    recorded motion list (in issue order), used for the speculation replay
    and for recognising Definition 6 duplication copies.  Passing
    ``level=ScheduleLevel.NONE`` asserts a purely local pass: any
    cross-block movement at all is reported.

    Returns a :class:`VerifyReport`; raises
    :class:`ScheduleVerificationError` on violations unless
    ``raise_on_error`` is false.
    """
    report = VerifyReport(function=after.name, level=level)

    # -- skeleton --------------------------------------------------------
    try:
        verify_function(after)
    except VerificationError as exc:
        report.add("skeleton", str(exc))
        return _finish(report, raise_on_error)
    before_labels = [b.label for b in before.blocks]
    after_labels = [b.label for b in after.blocks]
    if before_labels != after_labels:
        report.add("skeleton",
                   f"block layout changed: {before_labels} -> {after_labels}")
        return _finish(report, raise_on_error)
    for b_block, a_block in zip(before.blocks, after.blocks):
        b_term, a_term = b_block.terminator, a_block.terminator
        b_key = (b_term.uid, b_term.opcode, b_term.target) if b_term else None
        a_key = (a_term.uid, a_term.opcode, a_term.target) if a_term else None
        if b_key != a_key:
            report.add("skeleton",
                       f"terminator of {b_block.label} changed: "
                       f"{b_term!r} -> {a_term!r}")

    # -- conservation ----------------------------------------------------
    before_at = _index(before)
    after_at = _index(after)
    dup_uids = _check_conservation(report, before_at, after_at,
                                   motions, allow_duplication)
    if not report.ok:
        return _finish(report, raise_on_error)

    # -- per-region placement + dependence checks ------------------------
    regions = find_regions(before)
    region_of: dict[str, RegionSpec] = {}
    for spec in regions:
        for label in spec.member_labels:
            region_of[label] = spec
    pdgs: dict[str, object] = {}

    def pdg_of(spec: RegionSpec):
        if spec.header_node not in pdgs:
            # un-reduced: the verifier must see every natural edge, not the
            # transitive reduction the scheduler works from.  The builder
            # is injected from data_deps directly so namespace patches of
            # ``repro.pdg.pdg.build_region_ddg`` (chaos fault injection,
            # reference-mode swaps) cannot corrupt the judge.
            from ..pdg.data_deps import build_region_ddg

            pdgs[spec.header_node] = build_region_pdg(
                before, machine, spec, reduce_ddg=False,
                ddg_builder=build_region_ddg)
        return pdgs[spec.header_node]

    _check_placement(report, before, before_at, after_at, dup_uids,
                     region_of, pdg_of, level, max_speculation,
                     motions, allow_duplication)
    covered = _check_dependences(report, regions, pdg_of, after_at,
                                 before_at)
    _check_stray_blocks(report, before, machine, after_at, covered)
    report.checked_regions = len(regions)

    # -- speculation replay ---------------------------------------------
    _replay_motions(report, before, after_at, motions, region_of, pdg_of,
                    live_at_exit)

    return _finish(report, raise_on_error)


def _finish(report: VerifyReport, raise_on_error: bool) -> VerifyReport:
    return report.raise_if_failed() if raise_on_error else report


def _check_conservation(
    report: VerifyReport,
    before_at: dict[int, _Placed],
    after_at: dict[int, _Placed],
    motions,
    allow_duplication: bool,
) -> set[int]:
    """Missing/extra/mutated instructions.  Returns the uids of accepted
    duplication copies (excluded from the placement check)."""
    for uid, placed in before_at.items():
        if uid not in after_at:
            report.add("conservation",
                       f"instruction vanished from {placed.label}: "
                       f"{placed.ins!r}", uid)
            continue
        b_ins, a_ins = placed.ins, after_at[uid].ins
        if _immutable_fields(b_ins) != _immutable_fields(a_ins):
            report.add("conservation",
                       f"instruction mutated beyond renaming: "
                       f"{b_ins!r} -> {a_ins!r}", uid)
    dup_uids: set[int] = set()
    dup_motions = [m for m in motions if m.duplicated]
    for uid, placed in after_at.items():
        if uid in before_at:
            continue
        match = allow_duplication and any(
            m.opcode == placed.ins.opcode.mnemonic
            and placed.label in m.duplicated_into
            for m in dup_motions
        )
        if match:
            dup_uids.add(uid)
        else:
            report.add("conservation",
                       f"instruction appeared out of nowhere in "
                       f"{placed.label}: {placed.ins!r}", uid)
    return dup_uids


def _check_placement(
    report: VerifyReport,
    before: Function,
    before_at: dict[int, _Placed],
    after_at: dict[int, _Placed],
    dup_uids: set[int],
    region_of: dict[str, RegionSpec],
    pdg_of,
    level: ScheduleLevel,
    max_speculation: int,
    motions,
    allow_duplication: bool,
) -> None:
    """Every block change must be a motion the paper's rules allow."""
    candidates_cache: dict[tuple[str, str], tuple[list[str], list[str]]] = {}
    dup_moves = {m.uid: m for m in motions if m.duplicated}
    before_preds: dict[str, list[str]] | None = None
    for uid, placed in before_at.items():
        after = after_at.get(uid)
        if after is None or after.label == placed.label:
            continue
        home, dest = placed.label, after.label
        ins = after.ins
        spec = region_of.get(home)
        if spec is None or dest not in spec.member_labels:
            report.add("placement",
                       f"{ins!r} left its region: {home} -> {dest}", uid)
            continue
        dup = dup_moves.get(uid)
        if dup is not None and dup.src == home and dup.dst == dest:
            # Definition 6: the original may move into a non-dominating
            # predecessor only when every *other* predecessor of its home
            # join got a copy.
            if not allow_duplication:
                report.add("placement",
                           f"{ins!r} moved {home} -> {dest} with "
                           f"duplication, but duplication was disabled",
                           uid)
                continue
            if before_preds is None:
                before_preds = {
                    label: [p.label for p in preds]
                    for label, preds in before.predecessors_map().items()
                }
            needed = set(before_preds.get(home, ())) - {dest}
            if not needed <= set(dup.duplicated_into):
                report.add("placement",
                           f"{ins!r} moved {home} -> {dest} with copies "
                           f"into {sorted(dup.duplicated_into)} but "
                           f"predecessors {sorted(needed)} all need one "
                           f"(Definition 6)", uid)
            continue
        if level is ScheduleLevel.NONE:
            report.add("placement",
                       f"{ins!r} moved {home} -> {dest} in a local-only "
                       f"pass", uid)
            continue
        if not ins.opcode.can_move_globally:
            report.add("placement",
                       f"{ins!r} may never cross block boundaries but "
                       f"moved {home} -> {dest}", uid)
            continue
        pdg = pdg_of(spec)
        key = (spec.header_node, dest)
        if key not in candidates_cache:
            candidates_cache[key] = candidate_blocks(
                pdg, dest, level, max_speculation=max_speculation)
        equiv, speculative = candidates_cache[key]
        if home in equiv:
            continue  # useful motion between equivalent blocks
        if home in speculative:
            if not ins.opcode.can_speculate:
                report.add("placement",
                           f"{ins!r} was executed speculatively "
                           f"({home} -> {dest}) but its opcode may not "
                           f"speculate", uid)
            elif not pdg.dom.strictly_dominates(dest, home):
                # candidate_blocks enforces this too; an independent check
                # here keeps the verifier honest if that filter regresses
                report.add("placement",
                           f"{ins!r} moved {home} -> {dest} but {dest} "
                           f"does not dominate {home} (Definition 6 "
                           f"requires duplication)", uid)
            continue
        if uid in dup_uids:
            continue
        report.add("placement",
                   f"{ins!r} moved {home} -> {dest}, which is neither an "
                   f"equivalent nor a legal {max_speculation}-branch "
                   f"speculative placement at level {level.value}", uid)


def _check_dependences(
    report: VerifyReport,
    regions: list[RegionSpec],
    pdg_of,
    after_at: dict[int, _Placed],
    before_at: dict[int, _Placed],
) -> set[str]:
    """Every pre-scheduling dependence still runs forward.  Returns the
    labels whose intra-block dependences were covered by a region DDG."""
    covered: set[str] = set()
    for spec in regions:
        pdg = pdg_of(spec)
        covered.update(spec.member_labels)
        barrier_ids = {id(s.barrier) for s in pdg.subloops}
        for edge in pdg.ddg.edges():
            if id(edge.src) in barrier_ids or id(edge.dst) in barrier_ids:
                continue  # abstract inner-loop summaries have no after-side
            report.checked_edges += 1
            a = after_at.get(edge.src.uid)
            b = after_at.get(edge.dst.uid)
            if a is None or b is None:
                continue  # conservation already reported it
            if _edge_dissolved(edge, a.ins, b.ins):
                continue
            if a.label == b.label:
                if a.index >= b.index:
                    report.add("dependence",
                               f"{edge!r} inverted inside {a.label}: "
                               f"I{edge.src.uid} at index {a.index} is not "
                               f"before I{edge.dst.uid} at {b.index}",
                               edge.dst.uid)
            elif (a.label, b.label) not in pdg.reachable_pairs:
                report.add("dependence",
                           f"{edge!r} broken across blocks: I{edge.src.uid} "
                           f"in {a.label} no longer executes before "
                           f"I{edge.dst.uid} in {b.label}", edge.dst.uid)
    return covered


def _check_stray_blocks(
    report: VerifyReport,
    before: Function,
    machine: MachineModel,
    after_at: dict[int, _Placed],
    covered: set[str],
) -> None:
    """Intra-block dependence check for blocks outside every region
    (unreachable code still gets the post-pass block scheduler)."""
    from ..pdg.data_deps import build_block_ddg

    for block in before.blocks:
        if block.label in covered:
            continue
        ddg = build_block_ddg(block, machine, reduce=False)
        for edge in ddg.edges():
            report.checked_edges += 1
            a = after_at.get(edge.src.uid)
            b = after_at.get(edge.dst.uid)
            if a is None or b is None:
                continue
            if _edge_dissolved(edge, a.ins, b.ins):
                continue
            if a.label != b.label or a.index >= b.index:
                report.add("dependence",
                           f"{edge!r} violated in stray block "
                           f"{block.label}", edge.dst.uid)


def _replay_motions(
    report: VerifyReport,
    before: Function,
    after_at: dict[int, _Placed],
    motions,
    region_of: dict[str, RegionSpec],
    pdg_of,
    live_at_exit: frozenset[Reg] | None,
) -> None:
    """Re-run the Section 5.3 discipline over the recorded motions.

    The tracker is seeded exactly like the scheduling driver's (one shared
    live-out map across regions, one tracker per region forward graph) and
    updated after *every* motion, so the replay sees the same dynamic
    liveness the scheduler saw -- a scheduler that skipped the test is
    caught on the first clobbering motion.
    """
    if not motions:
        return
    if live_at_exit is None:
        live_at_exit = default_live_at_exit(before)
    liveness = compute_liveness(before, live_at_exit,
                                ControlFlowGraph(before))
    live_out_map = liveness.live_out_map()
    trackers: dict[str, LiveOnExitTracker] = {}
    for motion in motions:
        report.checked_motions += 1
        spec = region_of.get(motion.dst)
        if spec is None:
            report.add("speculation",
                       f"{motion!r} targets a block outside every region",
                       motion.uid)
            continue
        tracker = trackers.get(spec.header_node)
        if tracker is None:
            tracker = LiveOnExitTracker(live_out_map,
                                        pdg_of(spec).forward)
            trackers[spec.header_node] = tracker
        placed = after_at.get(motion.uid)
        if placed is None:
            if not motion.duplicated:
                report.add("speculation",
                           f"{motion!r} refers to a missing instruction",
                           motion.uid)
            continue
        ins = placed.ins
        if motion.speculative:
            # The Section 5.3 predicate, restated here on purpose rather
            # than delegated to LiveOnExitTracker.blocks_motion: the
            # verifier must catch a scheduler whose own legality test was
            # broken, so it cannot share that test's implementation.
            live = tracker.live_out_of(motion.dst)
            clobbered = [r for r in ins.reg_defs() if r in live]
            if clobbered:
                report.add("speculation",
                           f"{motion!r} clobbers live-on-exit "
                           f"register(s) {clobbered} of {motion.dst} "
                           f"(Section 5.3)", motion.uid)
        tracker.record_motion(ins, motion.src, motion.dst)
