"""Correctness tooling: static schedule verification + differential fuzzing.

Three cooperating layers (see ISSUE: Ito's CFG/PDG equivalence result makes
schedule legality *statically checkable*; the fuzzer then certifies the
whole pipeline *observationally* across every level and machine):

* :func:`verify_schedule` -- prove one scheduling sweep legal against the
  pre-scheduling PDG (dependences, candidate placement, Section 5.3
  live-on-exit speculation);
* :func:`generate_program` -- seeded, shrinkable mini-C test programs;
* :func:`run_differential` / :func:`fuzz` -- compile at NONE / USEFUL /
  SPECULATIVE on several machine models, compare observations, minimise
  failures.
"""

from .differential import (
    DEFAULT_MACHINES,
    ComboResult,
    DiffResult,
    run_differential,
)
from .fuzz import (
    FuzzFailure,
    FuzzReport,
    FuzzWorkerError,
    QuarantinedProgram,
    degradation_rung,
    derive_seed,
    fuzz,
    reproduce,
)
from .generator import GenProgram, generate_program
from .shrink import shrink_program
from .verifier import (
    ScheduleVerificationError,
    VerifyIssue,
    VerifyReport,
    verify_schedule,
)

__all__ = [
    "DEFAULT_MACHINES",
    "ComboResult",
    "DiffResult",
    "FuzzFailure",
    "FuzzReport",
    "FuzzWorkerError",
    "GenProgram",
    "QuarantinedProgram",
    "ScheduleVerificationError",
    "VerifyIssue",
    "VerifyReport",
    "degradation_rung",
    "derive_seed",
    "fuzz",
    "generate_program",
    "reproduce",
    "run_differential",
    "shrink_program",
    "verify_schedule",
]
