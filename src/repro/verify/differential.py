"""Differential execution of one program across levels and machines.

The oracle is the observation a real program makes: the entry function's
return value, the final contents of every array argument, and the sequence
of helper calls (callee + arguments; call order is fixed by the paper's
model -- calls never move -- so it must be identical everywhere).  Each
program is compiled at every :class:`ScheduleLevel` on every machine
variant with the pipeline's self-checking mode on, so a run also fails if
any emitted schedule is rejected by the static verifier.

Timing is *not* part of the oracle (different machines time differently by
design), but per-combination cycle counts are collected for the
monotonicity property tests -- and every cycle count is cross-checked
against the BSP DAG cost model (:mod:`repro.sim.bsp`): a simulated count
that beats the BSP lower bound, or drifts beyond its documented
tolerance, fails the combo just like a wrong answer would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler import compile_c
from ..machine.configs import CONFIGS
from ..sched.candidates import ScheduleLevel
from ..sim.bsp import check_bsp
from ..xform.pipeline import PipelineConfig
from .generator import GenProgram
from .verifier import ScheduleVerificationError

#: default machine variants: the paper's RS/6000, a 1-wide in-order
#: pipeline, and a 2-way superscalar -- diverse enough to shake out
#: machine-dependent scheduling differences without tripling the runtime
DEFAULT_MACHINES = ("rs6k", "scalar", "ss2")

_LEVELS = (ScheduleLevel.NONE, ScheduleLevel.USEFUL,
           ScheduleLevel.SPECULATIVE)


@dataclass
class ComboResult:
    """Observable outcome of one (machine, level) compilation + run."""

    machine: str
    level: ScheduleLevel
    return_value: int | None = None
    arrays: list[list[int]] = field(default_factory=list)
    calls: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)
    cycles: int = 0
    #: BSP DAG-model lower bound on the cycles of the executed trace
    bsp_lower_bound: int = 0
    error: str | None = None

    @property
    def observation(self):
        return (self.return_value, self.arrays, self.calls)


@dataclass
class DiffResult:
    """Outcome of running one program through the whole matrix."""

    program: GenProgram
    combos: list[ComboResult] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def cycles(self, machine: str, level: ScheduleLevel) -> int:
        for combo in self.combos:
            if combo.machine == machine and combo.level is level:
                return combo.cycles
        raise KeyError((machine, level))

    def format_failures(self) -> str:
        return "\n".join(self.failures)


def run_differential(
    program: GenProgram,
    *,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    verify: bool = True,
) -> DiffResult:
    """Compile + run ``program`` at every level on every machine and
    compare every observation against the (first machine, NONE) baseline.
    """
    result = DiffResult(program=program)
    source = program.source
    for machine_name in machines:
        machine_factory = CONFIGS[machine_name]
        for level in _LEVELS:
            combo = ComboResult(machine=machine_name, level=level)
            result.combos.append(combo)
            tag = f"{machine_name}/{level.value}"
            try:
                unit = compile_c(
                    source,
                    machine=machine_factory(),
                    level=level,
                    config=PipelineConfig(level=level, verify=verify),
                )
            except ScheduleVerificationError as exc:
                combo.error = f"verifier: {exc}"
                result.failures.append(f"[{tag}] schedule rejected by "
                                       f"verifier:\n{exc}")
                continue
            except Exception as exc:
                combo.error = f"compile: {exc!r}"
                result.failures.append(f"[{tag}] compilation crashed: "
                                       f"{exc!r}")
                continue
            try:
                run = unit.run(program.entry, *program.entry_args)
            except Exception as exc:
                combo.error = f"run: {exc!r}"
                result.failures.append(f"[{tag}] execution crashed: "
                                       f"{exc!r}")
                continue
            combo.return_value = run.return_value
            combo.arrays = run.arrays
            combo.calls = list(run.execution.calls)
            combo.cycles = run.cycles
            bsp = check_bsp(run.execution.instr_trace, unit.machine,
                            run.cycles)
            combo.bsp_lower_bound = bsp.bound.lower_bound
            if not bsp.ok:
                result.failures.append(f"[{tag}] {bsp.format()}")

    baseline = next((c for c in result.combos if c.error is None), None)
    if baseline is None:
        return result
    base_tag = f"{baseline.machine}/{baseline.level.value}"
    for combo in result.combos:
        if combo.error is not None or combo is baseline:
            continue
        if combo.return_value != baseline.return_value:
            result.failures.append(
                f"[{combo.machine}/{combo.level.value}] return value "
                f"{combo.return_value} != {baseline.return_value} "
                f"({base_tag})")
        if combo.arrays != baseline.arrays:
            result.failures.append(
                f"[{combo.machine}/{combo.level.value}] array contents "
                f"{combo.arrays} != {baseline.arrays} ({base_tag})")
        if combo.calls != baseline.calls:
            result.failures.append(
                f"[{combo.machine}/{combo.level.value}] call sequence "
                f"{combo.calls} != {baseline.calls} ({base_tag})")
    return result
