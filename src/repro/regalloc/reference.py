"""Reference (seed) interference-graph construction.

The dense builder (:func:`repro.regalloc.interference.build_interference`)
accumulates bitset rows over the shared :class:`repro.dataflow.dense.RegTable`;
this preserves the seed's per-block ``set`` scan verbatim as the
equivalence oracle and measured baseline.
"""

from __future__ import annotations

from ..cfg.graph import ControlFlowGraph
from ..dataflow.reference import compute_liveness_reference
from ..ir.function import Function
from ..ir.opcodes import Opcode
from ..ir.operand import Reg, RegClass
from .interference import InterferenceGraph


def build_interference_reference(
    func: Function,
    *,
    live_at_exit: frozenset[Reg] = frozenset(),
    liveness=None,
    analyses=None,
) -> InterferenceGraph:
    """Build the interference graph of ``func`` (seed set-scan).

    ``analyses`` mirrors the dense builder's keyword so the oracle arms
    can patch this function in behind the allocator unchanged; under the
    reference patches the cache's ``compute_liveness`` is already the
    seed solver, so sharing through it stays bit-identical.
    """
    if liveness is None:
        if analyses is not None:
            liveness = analyses.liveness(live_at_exit)
        else:
            liveness = compute_liveness_reference(func, live_at_exit,
                                                  ControlFlowGraph(func))
    graph = InterferenceGraph()
    for ins in func.instructions():
        for reg in (*ins.reg_defs(), *ins.reg_uses()):
            if reg.rclass is not RegClass.CTR:
                graph.add_node(reg)

    for block in func.blocks:
        live: set[Reg] = set(liveness.live_out(block))
        for ins in reversed(block.instrs):
            defs = [r for r in ins.reg_defs() if r.rclass is not RegClass.CTR]
            uses = [r for r in ins.reg_uses() if r.rclass is not RegClass.CTR]
            is_move = ins.opcode in (Opcode.LR, Opcode.FMR)
            if is_move and defs and uses:
                graph.moves.add((defs[0], uses[0]))
            for d in defs:
                for other in live:
                    if is_move and uses and other == uses[0]:
                        continue  # LR rd=rs: rd and rs may share a colour
                    graph.add_edge(d, other)
                # simultaneous definitions (LU) interfere with each other
                for d2 in defs:
                    graph.add_edge(d, d2)
            live.difference_update(defs)
            live.update(uses)
    return graph
