"""Graph-coloring register allocation (the Section 2 post-scheduling step).

The paper runs global scheduling on unbounded symbolic registers and maps
them to machine registers afterwards "using one of the standard (coloring)
algorithms"; this package supplies that allocator (Chaitin-Briggs) so the
pipeline can also be exercised in the paper's alternative order --
"conceptually there is no problem to activate the instruction scheduling
after the register allocation is completed" -- and the [BEH89] tension
between the two phase orders can be measured.
"""

from .allocator import (
    AllocationError,
    AllocationReport,
    DEFAULT_K,
    SPILL_BASE,
    allocate_registers,
)
from .interference import InterferenceGraph, build_interference, verify_coloring

__all__ = [
    "AllocationError",
    "AllocationReport",
    "DEFAULT_K",
    "InterferenceGraph",
    "SPILL_BASE",
    "allocate_registers",
    "build_interference",
    "verify_coloring",
]
