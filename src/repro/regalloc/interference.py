"""Interference graphs from instruction-level liveness.

Section 2: "during the register allocation phase of the compiler, the
symbolic registers are mapped onto the real machine registers, using one
of the standard (coloring) algorithms."  This module builds the input to
that coloring: two symbolic registers *interfere* when one is defined
while the other is live (they can never share a machine register).

Move instructions (``LR rd = rs``) get the classic special case: the
definition does not interfere with its own source, leaving the coalescing
opportunity open.

Construction runs on bitset rows over the liveness solve's shared
:class:`repro.dataflow.dense.RegTable`: the live set is carried as one
int, each definition's new edges are one AND against the live mask, and
rows are clipped to the defining register's class in the closing pass
(edges only join same-class registers).  The rows ARE the graph -- the
allocator's coloring loop, the coalescer and the verifier consume them
directly, and the classic adjacency sets only materialize if a
set-dialect consumer touches ``InterferenceGraph.adjacency``.  The
seed's per-block ``set`` scan is preserved as
:func:`repro.regalloc.reference.build_interference_reference`.
"""

from __future__ import annotations

from ..cfg.graph import ControlFlowGraph
from ..dataflow.dense import BYTE_BITS, RegTable
from ..dataflow.liveness import LivenessInfo, compute_liveness
from ..ir.function import Function
from ..ir.opcodes import Opcode
from ..ir.operand import Reg, RegClass


class InterferenceGraph:
    """Undirected interference edges, per register class.

    Two storage dialects.  The seed dialect is the classic ``adjacency``
    dict (register -> set of same-class interfering registers), used by
    the reference builder and by hand-built graphs in the tests.  The
    dense builder instead hands over symmetric bitset ``rows`` (bit ->
    neighbour mask over a shared :class:`RegTable`); the coloring loop,
    coalescer and verifier all consume the rows directly, and the
    ``adjacency`` dict only materializes lazily if some consumer asks
    for the set view.  Materializing switches the graph to the set
    dialect for good (the rows are dropped so a later mutation through
    ``add_edge`` cannot leave them stale).
    """

    __slots__ = ("moves", "_adjacency", "table", "rows", "nodes_mask")

    def __init__(self) -> None:
        #: move pairs (dst, src) seen -- coalescing candidates
        self.moves: set[tuple[Reg, Reg]] = set()
        self._adjacency: dict[Reg, set[Reg]] | None = {}
        #: dense dialect: the interning table, the symmetric bit ->
        #: neighbour-mask rows, and the mask of every node (isolated
        #: ones included); ``rows is None`` means set dialect
        self.table: RegTable | None = None
        self.rows: dict[int, int] | None = None
        self.nodes_mask = 0

    def _adopt_rows(self, table: RegTable, rows: dict[int, int],
                    nodes_mask: int) -> None:
        self.table = table
        self.rows = rows
        self.nodes_mask = nodes_mask
        self._adjacency = None

    @property
    def adjacency(self) -> dict[Reg, set[Reg]]:
        """Register -> set of interfering registers (same class).

        On a dense graph the first access materializes the sets from the
        bitset rows and retires the rows."""
        adj = self._adjacency
        if adj is None:
            adj = self._adjacency = {}
            table = self.table
            regs_row = table._row()
            regs_of = table.regs_of
            rget = self.rows.get
            data = self.nodes_mask.to_bytes(
                (self.nodes_mask.bit_length() + 7) >> 3, "little")
            for base, byte in enumerate(data):
                if byte:
                    base8 = base << 3
                    for b in BYTE_BITS[byte]:
                        o = base8 + b
                        adj[regs_row[o]] = regs_of(rget(o, 0))
            self.table = None
            self.rows = None
            self.nodes_mask = 0
        return adj

    def add_node(self, reg: Reg) -> None:
        self.adjacency.setdefault(reg, set())

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b or a.rclass is not b.rclass:
            return
        adjacency = self.adjacency
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    def interferes(self, a: Reg, b: Reg) -> bool:
        if self.rows is not None:
            bit = self.table.bit
            ab = bit.get(a)
            bb = bit.get(b)
            if ab is None or bb is None:
                return False
            return bool((self.rows.get(ab, 0) >> bb) & 1)
        return b in self._adjacency.get(a, ())

    def degree(self, reg: Reg) -> int:
        if self.rows is not None:
            b = self.table.bit.get(reg)
            return 0 if b is None else self.rows.get(b, 0).bit_count()
        return len(self._adjacency.get(reg, ()))

    def nodes_of_class(self, rclass: RegClass) -> list[Reg]:
        if self.rows is not None:
            table = self.table
            regs_row = table._row()
            mask = self.nodes_mask & table.class_mask(rclass)
            out: list[Reg] = []
            data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
            for base, byte in enumerate(data):
                if byte:
                    base8 = base << 3
                    out += [regs_row[base8 + b] for b in BYTE_BITS[byte]]
            return out
        return [r for r in self._adjacency if r.rclass is rclass]


def build_interference(
    func: Function,
    *,
    live_at_exit: frozenset[Reg] = frozenset(),
    liveness: LivenessInfo | None = None,
    analyses=None,
) -> InterferenceGraph:
    """Build the interference graph of ``func``.

    ``analyses`` (an :class:`repro.dataflow.cache.AnalysisCache`) shares
    the function's liveness solve -- and through it the CFG, the dense
    CSR snapshot and the ``RegTable`` interning pass -- with the caller;
    the allocator threads one cache through every coalescing iteration
    and spill round.  Without it the builder derives a private solve.
    """
    if liveness is None:
        if analyses is not None:
            liveness = analyses.liveness(live_at_exit)
        else:
            liveness = compute_liveness(func, live_at_exit,
                                        ControlFlowGraph(func))
    if not hasattr(liveness, "live_out_mask"):
        # a reference LivenessInfo (oracle arms): no masks to row over
        from .reference import build_interference_reference
        return build_interference_reference(func, liveness=liveness)

    table = liveness.table
    bit = table.bit
    masks = table.mask
    mget = masks.get
    #: bit -> mask of interfering bits (grown on demand)
    rows: dict[int, int] = {}
    rget = rows.get
    graph = InterferenceGraph()
    ctr = RegClass.CTR
    lr = Opcode.LR
    fmr = Opcode.FMR
    node_mask = 0
    # one backward scan does the interning and the row building at once:
    # cross-class and CTR bits ride along in every row (filtering them
    # per instruction costs more than carrying them) and the closure
    # below clips each row to its owner's class in one AND
    for block in func.blocks:
        live = liveness.live_out_mask(block.label)
        for ins in reversed(block.instrs):
            use_mask = 0
            for r in ins.uses:
                m = mget(r)
                if m is None:
                    b = bit.get(r)
                    if b is None:
                        b = bit[r] = len(bit)
                    m = masks[r] = 1 << b
                use_mask |= m
            defs = ins.defs
            def_mask = 0
            for r in defs:
                m = mget(r)
                if m is None:
                    b = bit.get(r)
                    if b is None:
                        b = bit[r] = len(bit)
                    m = masks[r] = 1 << b
                def_mask |= m
            node_mask |= use_mask | def_mask
            opcode = ins.opcode
            move_src = 0
            if opcode is lr or opcode is fmr:
                d = [r for r in defs if r.rclass is not ctr]
                u = [r for r in ins.uses if r.rclass is not ctr]
                if d and u:
                    graph.moves.add((d[0], u[0]))
                if u:
                    move_src = masks[u[0]]
            for d in defs:
                if d.rclass is ctr:
                    continue
                # live registers, minus self; a move's def skips its
                # source (they may share a colour); the def also clashes
                # with its simultaneous siblings (LU)
                adds = (live | def_mask) & ~(masks[d] | move_src)
                if adds:
                    db = bit[d]
                    rows[db] = rget(db, 0) | adds
            live = (live & ~def_mask) | use_mask

    # the scan interned every register the function mentions, so the
    # per-class masks are final.  The counter register never interferes
    # (allocation ignores it): strip it from the node set, and clip each
    # row to its defining register's class -- edges only join same-class
    # registers
    class_masks = {rc: table.class_mask(rc) for rc in RegClass}
    node_mask &= ~class_masks[ctr]
    regs_row = table._row()
    for db in rows:
        rows[db] &= class_masks[regs_row[db].rclass]

    # symmetric closure on the int rows; the rows ARE the graph -- the
    # coloring loop consumes them directly, and the classic adjacency
    # sets only materialize if a set-dialect consumer asks
    sym = dict(rows)
    sget = sym.get
    for db, mask in rows.items():
        dm = 1 << db
        data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
        for base, byte in enumerate(data):
            if byte:
                base8 = base << 3
                for b in BYTE_BITS[byte]:
                    o = base8 + b
                    sym[o] = sget(o, 0) | dm
    all_nodes = node_mask
    for db, mask in rows.items():
        all_nodes |= (1 << db) | mask
    graph._adopt_rows(table, sym, all_nodes)
    return graph


def verify_coloring(graph: InterferenceGraph,
                    mapping: dict[Reg, Reg]) -> None:
    """Assert that ``mapping`` assigns distinct machine registers to every
    interfering pair (used by the allocator's self-check and the tests)."""
    if graph.rows is not None:
        # walk the bitset rows as ints -- no adjacency-set materialization
        regs_row = graph.table._row()
        for db, mask in graph.rows.items():
            reg = regs_row[db]
            colour = mapping.get(reg)
            if colour is None:
                continue
            data = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
            for base, byte in enumerate(data):
                if byte:
                    base8 = base << 3
                    for b in BYTE_BITS[byte]:
                        other = regs_row[base8 + b]
                        if mapping.get(other) == colour:
                            raise AssertionError(
                                f"{reg} and {other} interfere but both "
                                f"map to {colour}"
                            )
        return
    for reg, neighbours in graph.adjacency.items():
        for other in neighbours:
            if reg in mapping and other in mapping:
                if mapping[reg] == mapping[other]:
                    raise AssertionError(
                        f"{reg} and {other} interfere but both map to "
                        f"{mapping[reg]}"
                    )
