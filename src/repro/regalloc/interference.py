"""Interference graphs from instruction-level liveness.

Section 2: "during the register allocation phase of the compiler, the
symbolic registers are mapped onto the real machine registers, using one
of the standard (coloring) algorithms."  This module builds the input to
that coloring: two symbolic registers *interfere* when one is defined
while the other is live (they can never share a machine register).

Move instructions (``LR rd = rs``) get the classic special case: the
definition does not interfere with its own source, leaving the coalescing
opportunity open.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..dataflow.liveness import LivenessInfo, compute_liveness
from ..ir.function import Function
from ..ir.opcodes import Opcode
from ..ir.operand import Reg, RegClass


@dataclass
class InterferenceGraph:
    """Undirected interference edges, per register class."""

    #: adjacency: register -> set of interfering registers (same class)
    adjacency: dict[Reg, set[Reg]] = field(default_factory=dict)
    #: move pairs (dst, src) seen -- coalescing candidates
    moves: set[tuple[Reg, Reg]] = field(default_factory=set)

    def add_node(self, reg: Reg) -> None:
        self.adjacency.setdefault(reg, set())

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b or a.rclass is not b.rclass:
            return
        self.add_node(a)
        self.add_node(b)
        self.adjacency[a].add(b)
        self.adjacency[b].add(a)

    def interferes(self, a: Reg, b: Reg) -> bool:
        return b in self.adjacency.get(a, ())

    def degree(self, reg: Reg) -> int:
        return len(self.adjacency.get(reg, ()))

    def nodes_of_class(self, rclass: RegClass) -> list[Reg]:
        return [r for r in self.adjacency if r.rclass is rclass]


def build_interference(
    func: Function,
    *,
    live_at_exit: frozenset[Reg] = frozenset(),
    liveness: LivenessInfo | None = None,
) -> InterferenceGraph:
    """Build the interference graph of ``func``."""
    if liveness is None:
        liveness = compute_liveness(func, live_at_exit,
                                    ControlFlowGraph(func))
    graph = InterferenceGraph()
    for ins in func.instructions():
        for reg in (*ins.reg_defs(), *ins.reg_uses()):
            if reg.rclass is not RegClass.CTR:
                graph.add_node(reg)

    for block in func.blocks:
        live: set[Reg] = set(liveness.live_out(block))
        for ins in reversed(block.instrs):
            defs = [r for r in ins.reg_defs() if r.rclass is not RegClass.CTR]
            uses = [r for r in ins.reg_uses() if r.rclass is not RegClass.CTR]
            is_move = ins.opcode in (Opcode.LR, Opcode.FMR)
            if is_move and defs and uses:
                graph.moves.add((defs[0], uses[0]))
            for d in defs:
                for other in live:
                    if is_move and uses and other == uses[0]:
                        continue  # LR rd=rs: rd and rs may share a colour
                    graph.add_edge(d, other)
                # simultaneous definitions (LU) interfere with each other
                for d2 in defs:
                    graph.add_edge(d, d2)
            live.difference_update(defs)
            live.update(uses)
    return graph


def verify_coloring(graph: InterferenceGraph,
                    mapping: dict[Reg, Reg]) -> None:
    """Assert that ``mapping`` assigns distinct machine registers to every
    interfering pair (used by the allocator's self-check and the tests)."""
    for reg, neighbours in graph.adjacency.items():
        for other in neighbours:
            if reg in mapping and other in mapping:
                if mapping[reg] == mapping[other]:
                    raise AssertionError(
                        f"{reg} and {other} interfere but both map to "
                        f"{mapping[reg]}"
                    )
