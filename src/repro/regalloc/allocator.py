"""Chaitin-Briggs graph-coloring register allocation.

The standard build / simplify / (optimistic) select / spill loop:

1. build the interference graph (:mod:`repro.regalloc.interference`);
2. *simplify*: repeatedly remove a node with degree < K (it is trivially
   colourable); when none exists, remove the cheapest spill candidate
   anyway (Briggs' optimism: it may still get a colour);
3. *select*: pop nodes back, assigning the lowest machine register not
   used by an already-coloured neighbour;
4. any node that finds no colour is *spilled*: its value lives in a
   dedicated memory slot, every definition is followed by a store and
   every use preceded by a load of a fresh short-lived temporary; then
   the whole process repeats on the rewritten function.

K per class matches the RS/6000: 32 GPRs, 32 FPRs, 8 CRs.  Spill slots
are absolute addresses in a reserved region; their base is materialised
with ``LI`` (two extra instructions per access -- crude, but honest about
the cost the paper's register-allocation discussion alludes to).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow.cache import AnalysisCache
from ..dataflow.dense import bits_of
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode
from ..ir.operand import MemRef, Reg, RegClass
from .interference import InterferenceGraph, build_interference, verify_coloring

#: machine registers available per class (the RS/6000 counts)
DEFAULT_K = {RegClass.GPR: 32, RegClass.FPR: 32, RegClass.CR: 8}

#: base address of the spill area in simulated memory
SPILL_BASE = 0x7F00_0000

#: give up after this many build/spill rounds (a safety valve; each round
#: strictly reduces live-range lengths)
_MAX_ROUNDS = 16


class AllocationError(RuntimeError):
    """Allocation failed (e.g. unspillable class ran out of registers)."""


@dataclass
class AllocationReport:
    """Outcome of register allocation."""

    #: symbolic register -> machine register (final round's mapping);
    #: coalesced registers map to their representative's machine register
    mapping: dict[Reg, Reg] = field(default_factory=dict)
    #: registers spilled to memory, in spill order
    spilled: list[Reg] = field(default_factory=list)
    #: (eliminated register, representative) pairs from move coalescing
    coalesced: list[tuple[Reg, Reg]] = field(default_factory=list)
    #: self-moves deleted after coalescing
    moves_removed: int = 0
    rounds: int = 0

    def machine_registers_used(self, rclass: RegClass) -> int:
        return len({r for r in self.mapping.values() if r.rclass is rclass})


def allocate_registers(
    func: Function,
    *,
    live_at_exit: frozenset[Reg] = frozenset(),
    k: dict[RegClass, int] | None = None,
    coalesce: bool = True,
) -> AllocationReport:
    """Allocate machine registers for ``func`` in place.

    ``live_at_exit`` registers keep their values observable: they are
    still renamed (and possibly coalesced), so callers must translate
    through ``report.mapping``.  ``coalesce`` enables Briggs conservative
    move coalescing, which also deletes the register moves it makes
    redundant.
    """
    k = {**DEFAULT_K, **(k or {})}
    report = AllocationReport()
    spill_slots: dict[Reg, int] = {}

    # one analysis cache for the whole allocation: every interference
    # build (each coalescing iteration, each spill round) shares the same
    # CFG, dense CSR snapshot and RegTable interning pass; mutations drop
    # only the liveness tier -- the block structure never changes here
    analyses = AnalysisCache(func)

    # values observed after the function returns cannot live in memory
    unspillable = set(live_at_exit)
    aliases: dict[Reg, Reg] = {}

    if coalesce:
        live_at_exit = _coalesce_moves(func, live_at_exit, k, aliases,
                                       report, analyses)
        unspillable = set(live_at_exit)

    for _round in range(_MAX_ROUNDS):
        report.rounds += 1
        graph = build_interference(func, live_at_exit=live_at_exit,
                                   analyses=analyses)
        mapping, spills = _color(graph, k, unspillable)
        if not spills:
            verify_coloring(graph, mapping)
            _apply_mapping(func, mapping)
            for eliminated, rep in aliases.items():
                resolved = rep
                while resolved in aliases:
                    resolved = aliases[resolved]
                if resolved in mapping:
                    mapping[eliminated] = mapping[resolved]
            report.mapping = mapping
            return report
        for reg in spills:
            if reg.rclass is not RegClass.GPR:
                raise AllocationError(
                    f"cannot spill {reg} ({reg.rclass.name}); "
                    f"only GPRs have spill code"
                )
            if reg in unspillable:
                raise AllocationError(
                    f"{reg} is live at function exit and cannot be spilled"
                )
            slot = spill_slots.setdefault(
                reg, SPILL_BASE + 8 * len(spill_slots))
            _spill(func, reg, slot)
            report.spilled.append(reg)
        # spill code only inserts loads/stores into existing blocks, so
        # the CFG-shape tier survives; the dataflow facts do not
        analyses.invalidate_liveness()
    raise AllocationError(
        f"no colouring after {_MAX_ROUNDS} spill rounds")


def _coalesce_moves(
    func: Function,
    live_at_exit: frozenset[Reg],
    k: dict[RegClass, int],
    aliases: dict[Reg, Reg],
    report: AllocationReport,
    analyses: AnalysisCache,
) -> frozenset[Reg]:
    """Briggs conservative coalescing.

    A move pair may merge when the combined node has fewer than K
    neighbours of significant (>= K) degree -- then colouring stays as
    easy as before.  Each merge renames the move's destination into its
    source everywhere and deletes the now self-referential move.
    """
    changed = True
    while changed:
        changed = False
        graph = build_interference(func, live_at_exit=live_at_exit,
                                   analyses=analyses)
        moves = sorted(graph.moves,
                       key=lambda m: (m[0].rclass.value, m[0].index,
                                      m[1].index))
        for dst, src in moves:
            if dst == src or dst.rclass is not src.rclass:
                continue
            limit = k.get(dst.rclass)
            if limit is None or graph.interferes(dst, src):
                continue
            if graph.rows is not None:
                # Briggs test on the bitset rows: OR the two neighbour
                # masks, drop the pair itself, popcount the significants
                bit = graph.table.bit
                rget = graph.rows.get
                db, sb = bit[dst], bit[src]
                combined_mask = ((rget(db, 0) | rget(sb, 0))
                                 & ~((1 << db) | (1 << sb)))
                significant = sum(
                    1 for n in bits_of(combined_mask)
                    if rget(n, 0).bit_count() >= limit)
            else:
                combined = (graph.adjacency.get(dst, set())
                            | graph.adjacency.get(src, set())) - {dst, src}
                significant = sum(1 for n in combined
                                  if graph.degree(n) >= limit)
            if significant >= limit:
                continue
            # merge: dst disappears into src
            rename = {dst: src}
            for ins in func.instructions():
                ins.rename_registers(rename)
            aliases[dst] = src
            report.coalesced.append((dst, src))
            for block in func.blocks:
                kept = []
                for ins in block.instrs:
                    if (ins.opcode in (Opcode.LR, Opcode.FMR)
                            and ins.defs == ins.uses):
                        report.moves_removed += 1
                        continue
                    kept.append(ins)
                block.instrs = kept
            if dst in live_at_exit:
                live_at_exit = frozenset(
                    (set(live_at_exit) - {dst}) | {src})
            # the merge renamed operands and deleted moves in place;
            # block structure (and so the CFG tier) is untouched
            analyses.invalidate_liveness()
            changed = True
            break  # the graph is stale: rebuild before the next merge
    return live_at_exit


def _color(graph: InterferenceGraph, k: dict[RegClass, int],
           unspillable: set[Reg]) -> tuple[dict[Reg, Reg], list[Reg]]:
    """One simplify/select pass; returns (mapping, actual spills)."""
    if graph.rows is not None:
        return _color_dense(graph, k, unspillable)
    mapping: dict[Reg, Reg] = {}
    spills: list[Reg] = []
    for rclass, limit in k.items():
        nodes = graph.nodes_of_class(rclass)
        degrees = {r: graph.degree(r) for r in nodes}
        removed: set[Reg] = set()
        stack: list[Reg] = []
        work = set(nodes)
        while work:
            candidate = None
            for reg in sorted(work, key=lambda r: (degrees[r], r.index)):
                if degrees[reg] < limit:
                    candidate = reg
                    break
            if candidate is None:
                # spill candidate: highest degree first (Chaitin's cheap
                # heuristic); values live past the function's end must not
                # end their lives in a memory slot
                choices = [r for r in work if r not in unspillable] or \
                    list(work)
                candidate = max(sorted(choices, key=lambda r: r.index),
                                key=lambda r: degrees[r])
            work.discard(candidate)
            removed.add(candidate)
            stack.append(candidate)
            for neighbour in graph.adjacency[candidate]:
                if neighbour not in removed and neighbour in degrees:
                    degrees[neighbour] -= 1
        while stack:
            reg = stack.pop()
            taken = {
                mapping[n].index
                for n in graph.adjacency[reg]
                if n in mapping
            }
            colour = next((c for c in range(limit) if c not in taken), None)
            if colour is None:
                spills.append(reg)
            else:
                mapping[reg] = Reg(rclass, colour)
    return mapping, spills


def _color_dense(graph: InterferenceGraph, k: dict[RegClass, int],
                 unspillable: set[Reg]) -> tuple[dict[Reg, Reg], list[Reg]]:
    """Dense-dialect twin of the simplify/select pass above.

    Takes the *same* decisions with the same tie-breaks -- candidate is
    the (degree, register index) minimum, the spill pick is the lowest-
    index register of maximal degree -- but on the graph's bitset rows:
    degrees are popcounts, removal is one mask OR, and the adjacency
    sets never materialize.
    """
    table = graph.table
    rget = graph.rows.get
    regs_row = table._row()
    mapping: dict[Reg, Reg] = {}
    spills: list[Reg] = []
    #: bit -> assigned colour index, filled as select pops the stack
    colour_of: dict[int, int] = {}
    for rclass, limit in k.items():
        nodes = bits_of(graph.nodes_mask & table.class_mask(rclass))
        degrees = {b: rget(b, 0).bit_count() for b in nodes}
        removed_mask = 0
        stack: list[int] = []
        work = set(nodes)
        while work:
            best_key = None
            candidate = -1
            for b in work:
                key = (degrees[b], regs_row[b].index)
                if best_key is None or key < best_key:
                    best_key = key
                    candidate = b
            if best_key[0] >= limit:
                # no trivially-colourable node: spill candidate of
                # highest degree (Chaitin's cheap heuristic); values
                # live past the function's end must not end their
                # lives in a memory slot
                choices = [b for b in work
                           if regs_row[b] not in unspillable] or list(work)
                candidate = min(
                    choices,
                    key=lambda b: (-degrees[b], regs_row[b].index))
            work.discard(candidate)
            removed_mask |= 1 << candidate
            stack.append(candidate)
            for n in bits_of(rget(candidate, 0) & ~removed_mask):
                if n in degrees:
                    degrees[n] -= 1
        while stack:
            b = stack.pop()
            taken = {colour_of[n] for n in bits_of(rget(b, 0))
                     if n in colour_of}
            colour = next((c for c in range(limit) if c not in taken), None)
            if colour is None:
                spills.append(regs_row[b])
            else:
                colour_of[b] = colour
                mapping[regs_row[b]] = Reg(rclass, colour)
    return mapping, spills


def _apply_mapping(func: Function, mapping: dict[Reg, Reg]) -> None:
    for ins in func.instructions():
        ins.rename_registers(mapping)


def _spill(func: Function, reg: Reg, slot: int) -> None:
    """Rewrite every access to ``reg`` through its memory slot."""
    for block in func.blocks:
        rewritten: list[Instruction] = []
        for ins in block.instrs:
            uses_reg = reg in ins.reg_uses()
            defines_reg = reg in ins.reg_defs()
            if uses_reg:
                temp = func.new_gpr()
                addr = func.new_gpr()
                li = Instruction(Opcode.LI, defs=(addr,), imm=slot,
                                 comment=f"spill addr {reg}")
                load = Instruction(Opcode.L, defs=(temp,), uses=(addr,),
                                   mem=MemRef(addr, 0, symbol="spill"),
                                   comment=f"reload {reg}")
                func.assign_uid(li)
                func.assign_uid(load)
                rewritten.extend([li, load])
                ins.rename_uses_of(reg, temp)
            rewritten.append(ins)
            if defines_reg:
                out = func.new_gpr()
                ins.defs = tuple(out if r == reg else r for r in ins.defs)
                addr = func.new_gpr()
                li = Instruction(Opcode.LI, defs=(addr,), imm=slot,
                                 comment=f"spill addr {reg}")
                store = Instruction(Opcode.ST, uses=(out, addr),
                                    mem=MemRef(addr, 0, symbol="spill"),
                                    comment=f"spill {reg}")
                func.assign_uid(li)
                func.assign_uid(store)
                rewritten.extend([li, store])
        block.instrs = rewritten
