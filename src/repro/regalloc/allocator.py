"""Chaitin-Briggs graph-coloring register allocation.

The standard build / simplify / (optimistic) select / spill loop:

1. build the interference graph (:mod:`repro.regalloc.interference`);
2. *simplify*: repeatedly remove a node with degree < K (it is trivially
   colourable); when none exists, remove the cheapest spill candidate
   anyway (Briggs' optimism: it may still get a colour);
3. *select*: pop nodes back, assigning the lowest machine register not
   used by an already-coloured neighbour;
4. any node that finds no colour is *spilled*: its value lives in a
   dedicated memory slot, every definition is followed by a store and
   every use preceded by a load of a fresh short-lived temporary; then
   the whole process repeats on the rewritten function.

K per class matches the RS/6000: 32 GPRs, 32 FPRs, 8 CRs.  Spill slots
are absolute addresses in a reserved region; their base is materialised
with ``LI`` (two extra instructions per access -- crude, but honest about
the cost the paper's register-allocation discussion alludes to).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode
from ..ir.operand import MemRef, Reg, RegClass
from .interference import InterferenceGraph, build_interference, verify_coloring

#: machine registers available per class (the RS/6000 counts)
DEFAULT_K = {RegClass.GPR: 32, RegClass.FPR: 32, RegClass.CR: 8}

#: base address of the spill area in simulated memory
SPILL_BASE = 0x7F00_0000

#: give up after this many build/spill rounds (a safety valve; each round
#: strictly reduces live-range lengths)
_MAX_ROUNDS = 16


class AllocationError(RuntimeError):
    """Allocation failed (e.g. unspillable class ran out of registers)."""


@dataclass
class AllocationReport:
    """Outcome of register allocation."""

    #: symbolic register -> machine register (final round's mapping);
    #: coalesced registers map to their representative's machine register
    mapping: dict[Reg, Reg] = field(default_factory=dict)
    #: registers spilled to memory, in spill order
    spilled: list[Reg] = field(default_factory=list)
    #: (eliminated register, representative) pairs from move coalescing
    coalesced: list[tuple[Reg, Reg]] = field(default_factory=list)
    #: self-moves deleted after coalescing
    moves_removed: int = 0
    rounds: int = 0

    def machine_registers_used(self, rclass: RegClass) -> int:
        return len({r for r in self.mapping.values() if r.rclass is rclass})


def allocate_registers(
    func: Function,
    *,
    live_at_exit: frozenset[Reg] = frozenset(),
    k: dict[RegClass, int] | None = None,
    coalesce: bool = True,
) -> AllocationReport:
    """Allocate machine registers for ``func`` in place.

    ``live_at_exit`` registers keep their values observable: they are
    still renamed (and possibly coalesced), so callers must translate
    through ``report.mapping``.  ``coalesce`` enables Briggs conservative
    move coalescing, which also deletes the register moves it makes
    redundant.
    """
    k = {**DEFAULT_K, **(k or {})}
    report = AllocationReport()
    spill_slots: dict[Reg, int] = {}

    # values observed after the function returns cannot live in memory
    unspillable = set(live_at_exit)
    aliases: dict[Reg, Reg] = {}

    if coalesce:
        live_at_exit = _coalesce_moves(func, live_at_exit, k, aliases,
                                       report)
        unspillable = set(live_at_exit)

    for _round in range(_MAX_ROUNDS):
        report.rounds += 1
        graph = build_interference(func, live_at_exit=live_at_exit)
        mapping, spills = _color(graph, k, unspillable)
        if not spills:
            verify_coloring(graph, mapping)
            _apply_mapping(func, mapping)
            for eliminated, rep in aliases.items():
                resolved = rep
                while resolved in aliases:
                    resolved = aliases[resolved]
                if resolved in mapping:
                    mapping[eliminated] = mapping[resolved]
            report.mapping = mapping
            return report
        for reg in spills:
            if reg.rclass is not RegClass.GPR:
                raise AllocationError(
                    f"cannot spill {reg} ({reg.rclass.name}); "
                    f"only GPRs have spill code"
                )
            if reg in unspillable:
                raise AllocationError(
                    f"{reg} is live at function exit and cannot be spilled"
                )
            slot = spill_slots.setdefault(
                reg, SPILL_BASE + 8 * len(spill_slots))
            _spill(func, reg, slot)
            report.spilled.append(reg)
    raise AllocationError(
        f"no colouring after {_MAX_ROUNDS} spill rounds")


def _coalesce_moves(
    func: Function,
    live_at_exit: frozenset[Reg],
    k: dict[RegClass, int],
    aliases: dict[Reg, Reg],
    report: AllocationReport,
) -> frozenset[Reg]:
    """Briggs conservative coalescing.

    A move pair may merge when the combined node has fewer than K
    neighbours of significant (>= K) degree -- then colouring stays as
    easy as before.  Each merge renames the move's destination into its
    source everywhere and deletes the now self-referential move.
    """
    changed = True
    while changed:
        changed = False
        graph = build_interference(func, live_at_exit=live_at_exit)
        moves = sorted(graph.moves,
                       key=lambda m: (m[0].rclass.value, m[0].index,
                                      m[1].index))
        for dst, src in moves:
            if dst == src or dst.rclass is not src.rclass:
                continue
            limit = k.get(dst.rclass)
            if limit is None or graph.interferes(dst, src):
                continue
            combined = (graph.adjacency.get(dst, set())
                        | graph.adjacency.get(src, set())) - {dst, src}
            significant = sum(1 for n in combined
                              if graph.degree(n) >= limit)
            if significant >= limit:
                continue
            # merge: dst disappears into src
            rename = {dst: src}
            for ins in func.instructions():
                ins.rename_registers(rename)
            aliases[dst] = src
            report.coalesced.append((dst, src))
            for block in func.blocks:
                kept = []
                for ins in block.instrs:
                    if (ins.opcode in (Opcode.LR, Opcode.FMR)
                            and ins.defs == ins.uses):
                        report.moves_removed += 1
                        continue
                    kept.append(ins)
                block.instrs = kept
            if dst in live_at_exit:
                live_at_exit = frozenset(
                    (set(live_at_exit) - {dst}) | {src})
            changed = True
            break  # the graph is stale: rebuild before the next merge
    return live_at_exit


def _color(graph: InterferenceGraph, k: dict[RegClass, int],
           unspillable: set[Reg]) -> tuple[dict[Reg, Reg], list[Reg]]:
    """One simplify/select pass; returns (mapping, actual spills)."""
    mapping: dict[Reg, Reg] = {}
    spills: list[Reg] = []
    for rclass, limit in k.items():
        nodes = graph.nodes_of_class(rclass)
        degrees = {r: graph.degree(r) for r in nodes}
        removed: set[Reg] = set()
        stack: list[Reg] = []
        work = set(nodes)
        while work:
            candidate = None
            for reg in sorted(work, key=lambda r: (degrees[r], r.index)):
                if degrees[reg] < limit:
                    candidate = reg
                    break
            if candidate is None:
                # spill candidate: highest degree first (Chaitin's cheap
                # heuristic); values live past the function's end must not
                # end their lives in a memory slot
                choices = [r for r in work if r not in unspillable] or \
                    list(work)
                candidate = max(sorted(choices, key=lambda r: r.index),
                                key=lambda r: degrees[r])
            work.discard(candidate)
            removed.add(candidate)
            stack.append(candidate)
            for neighbour in graph.adjacency[candidate]:
                if neighbour not in removed and neighbour in degrees:
                    degrees[neighbour] -= 1
        while stack:
            reg = stack.pop()
            taken = {
                mapping[n].index
                for n in graph.adjacency[reg]
                if n in mapping
            }
            colour = next((c for c in range(limit) if c not in taken), None)
            if colour is None:
                spills.append(reg)
            else:
                mapping[reg] = Reg(rclass, colour)
    return mapping, spills


def _apply_mapping(func: Function, mapping: dict[Reg, Reg]) -> None:
    for ins in func.instructions():
        ins.rename_registers(mapping)


def _spill(func: Function, reg: Reg, slot: int) -> None:
    """Rewrite every access to ``reg`` through its memory slot."""
    for block in func.blocks:
        rewritten: list[Instruction] = []
        for ins in block.instrs:
            uses_reg = reg in ins.reg_uses()
            defines_reg = reg in ins.reg_defs()
            if uses_reg:
                temp = func.new_gpr()
                addr = func.new_gpr()
                li = Instruction(Opcode.LI, defs=(addr,), imm=slot,
                                 comment=f"spill addr {reg}")
                load = Instruction(Opcode.L, defs=(temp,), uses=(addr,),
                                   mem=MemRef(addr, 0, symbol="spill"),
                                   comment=f"reload {reg}")
                func.assign_uid(li)
                func.assign_uid(load)
                rewritten.extend([li, load])
                ins.rename_uses_of(reg, temp)
            rewritten.append(ins)
            if defines_reg:
                out = func.new_gpr()
                ins.defs = tuple(out if r == reg else r for r in ins.defs)
                addr = func.new_gpr()
                li = Instruction(Opcode.LI, defs=(addr,), imm=slot,
                                 comment=f"spill addr {reg}")
                store = Instruction(Opcode.ST, uses=(out, addr),
                                    mem=MemRef(addr, 0, symbol="spill"),
                                    comment=f"spill {reg}")
                func.assign_uid(li)
                func.assign_uid(store)
                rewritten.extend([li, store])
        block.instrs = rewritten
