"""Compile-as-a-service: job layer, cache, daemon, and the healing shell.

The reusable pieces (see DESIGN.md sections 10 and 13):

* :mod:`repro.service.jobs` -- bounded-queue, sharded, quarantining
  :class:`JobPool`, generalized out of the PR-2/PR-4 fuzz machinery;
* :mod:`repro.service.supervisor` -- :class:`SupervisedPool`, the
  crash-only wrapper that detects dead/hung workers, rebuilds the pool
  in place, and trips a circuit breaker into inline mode;
* :mod:`repro.service.cache` -- content-addressed :class:`ArtifactCache`
  (SHA-256 of source x machine x level x config);
* :mod:`repro.service.journal` -- the write-ahead :class:`Journal` that
  makes ``kill -9`` recoverable (``--journal`` / ``--resume-journal``);
* :mod:`repro.service.daemon` -- the JSONL front door behind
  ``python -m repro serve``, with admission control and protocol
  hardening;
* :mod:`repro.service.scorecard` -- the live operator report.
"""

from .cache import Artifact, ArtifactCache, cache_key, config_fingerprint
from .daemon import AdmissionController, Daemon, ServeConfig
from .jobs import (
    CRASHED,
    ERROR,
    OK,
    QUARANTINED,
    JobPool,
    JobResult,
    JobSpec,
    JobWorkerError,
)
from .journal import Journal, JournalError, JournalState, load_journal
from .scorecard import format_scorecard
from .supervisor import SupervisedPool, SupervisorConfig

__all__ = [
    "Artifact",
    "ArtifactCache",
    "cache_key",
    "config_fingerprint",
    "AdmissionController",
    "Daemon",
    "ServeConfig",
    "JobPool",
    "JobResult",
    "JobSpec",
    "JobWorkerError",
    "Journal",
    "JournalError",
    "JournalState",
    "load_journal",
    "SupervisedPool",
    "SupervisorConfig",
    "OK",
    "ERROR",
    "QUARANTINED",
    "CRASHED",
    "format_scorecard",
]
