"""Compile-as-a-service: the job layer, artifact cache, and daemon.

The reusable pieces (see DESIGN.md section 10):

* :mod:`repro.service.jobs` -- bounded-queue, sharded, quarantining
  :class:`JobPool`, generalized out of the PR-2/PR-4 fuzz machinery;
* :mod:`repro.service.cache` -- content-addressed :class:`ArtifactCache`
  (SHA-256 of source x machine x level x config);
* :mod:`repro.service.daemon` -- the JSONL front door behind
  ``python -m repro serve``;
* :mod:`repro.service.scorecard` -- the live operator report.
"""

from .cache import Artifact, ArtifactCache, cache_key, config_fingerprint
from .daemon import Daemon, ServeConfig
from .jobs import (
    CRASHED,
    ERROR,
    OK,
    QUARANTINED,
    JobPool,
    JobResult,
    JobSpec,
    JobWorkerError,
)
from .scorecard import format_scorecard

__all__ = [
    "Artifact",
    "ArtifactCache",
    "cache_key",
    "config_fingerprint",
    "Daemon",
    "ServeConfig",
    "JobPool",
    "JobResult",
    "JobSpec",
    "JobWorkerError",
    "OK",
    "ERROR",
    "QUARANTINED",
    "CRASHED",
    "format_scorecard",
]
