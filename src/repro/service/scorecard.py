"""The ``repro stats``-style live service scorecard.

Rendered to stderr after every batch (``repro serve --scorecard``) and
once at shutdown: requests and QPS, per-status counts, cache hit rate,
the degradation-rung histogram, queue-depth pressure, and the health of
the self-healing layers -- supervisor rebuilds and circuit-breaker
state, admission-control shed windows, journal records -- the numbers
an operator watches to know whether the service is keeping up.
"""

from __future__ import annotations

#: ladder order for the rung histogram (most aggressive first)
_RUNGS = ("speculative", "useful", "bb", "identity")
_STATUSES = ("ok", "cache-hit", "degraded", "quarantined",
             "overloaded", "error")


def format_scorecard(metrics, cache, config, *, elapsed_s: float,
                     supervisor: dict | None = None) -> str:
    c = metrics.counters
    requests = c.get("service.requests", 0)
    batches = c.get("service.batches", 0)
    lines = ["== service scorecard =="]
    qps = requests / elapsed_s if elapsed_s > 0 else 0.0
    lines.append(f"  requests   {requests:>7}  in {batches} batch(es), "
                 f"{elapsed_s:.2f} s  ({qps:.1f} req/s)")
    status_bits = "  ".join(
        f"{name} {c.get(f'service.status.{name}', 0)}"
        for name in _STATUSES if c.get(f"service.status.{name}", 0))
    if status_bits:
        lines.append(f"  statuses   {status_bits}")
    total_lookups = cache.hits + cache.misses
    if total_lookups:
        lines.append(f"  cache      {cache.hits} hit(s), "
                     f"{cache.misses} miss(es)  "
                     f"({cache.hit_rate:.1%} hit rate, "
                     f"{len(cache)} entr{'y' if len(cache) == 1 else 'ies'} "
                     f"resident)")
    rung_bits = "  ".join(
        f"{rung} {c.get(f'service.rung.{rung}', 0)}"
        for rung in _RUNGS if c.get(f"service.rung.{rung}", 0))
    if rung_bits:
        lines.append(f"  rungs      {rung_bits}")
    depth_n, _total, depth_peak = metrics.series.get(
        "service.queue.depth", (0, 0.0, 0.0))
    if depth_n:
        lines.append(f"  queue      depth avg "
                     f"{metrics.mean('service.queue.depth'):.1f}, "
                     f"peak {depth_peak:.0f}, bound {config.queue_size} "
                     f"(pool: {config.jobs} worker(s))")
    if supervisor is not None:
        breaker = "OPEN (inline mode)" if supervisor["breaker_open"] \
            else "closed"
        lines.append(f"  supervisor {supervisor['rebuilds']} rebuild(s), "
                     f"{supervisor['workers_lost']} worker(s) lost, "
                     f"{supervisor['hangs']} hang(s), breaker {breaker}")
    shed_starts = c.get("service.admission.shed_start", 0)
    if shed_starts:
        lines.append(f"  admission  {shed_starts} shed window(s), "
                     f"{c.get('service.status.overloaded', 0)} request(s) "
                     f"fast-failed")
    replayed = c.get("service.journal.replayed", 0)
    if replayed:
        lines.append(f"  journal    {replayed} request(s) replayed "
                     f"on resume")
    return "\n".join(lines)
