"""Reusable batch-job layer: bounded queue, sharded pool, quarantine.

This is the worker-management substrate of ``verify/fuzz.py`` (PRs 2 and
4) generalized into a service-grade primitive.  A :class:`JobPool` runs
picklable *jobs* -- ``(id, payload)`` pairs handed to one module-level
handler function -- on a sharded :mod:`multiprocessing` pool:

* **bounded queue with backpressure** -- at most ``queue_size`` jobs are
  in flight; :meth:`JobPool.submit` *blocks* the producer until a slot
  frees.  Nothing is ever dropped;
* **per-job deadlines** -- every attempt runs under the resilience
  layer's :func:`~repro.resilience.budget.watchdog` (SIGALRM in the
  worker process), so a hanging handler is interrupted mid-flight;
* **retry-once-then-quarantine** -- a crash or timeout is retried after
  a short exponential backoff and then parked as a ``quarantined``
  result while the pool keeps serving (``quarantine=False`` restores
  fail-fast semantics: the raw traceback comes back as a ``crashed``
  result for the caller to raise);
* **typed errors** -- exception types listed in ``typed_errors`` (e.g. a
  parse error) are *expected* failures: reported once as an ``error``
  result, never retried, never quarantined;
* **graceful drain/shutdown** -- :meth:`drain` waits for every accepted
  job and returns results sorted by id; closing the pool with work still
  outstanding terminates the workers (the fuzz ``stop_after`` path).

Determinism: a job's result is a pure function of its payload, so the
*sorted* result list of a batch is identical for every ``jobs`` value --
the property the differential fuzzer has relied on since PR 2, now free
for every client of the layer.

Jobs run in forked workers when ``jobs > 1`` and inline (same process,
same code path) when ``jobs == 1``, which keeps single-process runs
trivially deterministic and debuggable.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..obs.metrics import NULL_METRICS
from ..resilience.budget import watchdog
from ..resilience.errors import BudgetExceeded

#: sleep before the retry of a crashed/timed-out job, doubled per attempt
DEFAULT_RETRY_BACKOFF_S = 0.05
#: attempts per job before quarantine: the first run plus one retry
DEFAULT_MAX_ATTEMPTS = 2

#: result statuses
OK = "ok"
ERROR = "error"              # an expected, typed failure -- not retried
QUARANTINED = "quarantined"  # crashed/hung twice; parked, pool continues
CRASHED = "crashed"          # quarantine=False: raw traceback for caller


class JobWorkerError(RuntimeError):
    """A job handler died on an unexpected exception (``quarantine=False``
    pools only -- the caller turns the ``crashed`` result into this)."""

    def __init__(self, job_id, worker_traceback: str):
        super().__init__(
            f"job worker crashed on job {job_id}:\n{worker_traceback}")
        self.job_id = job_id
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: an orderable id plus a picklable payload."""

    id: Any
    payload: Any


@dataclass
class JobResult:
    """The outcome of one job, whatever happened to it."""

    id: Any
    status: str
    value: Any = None
    #: exception class name for ERROR; "crash" | "timeout" for
    #: QUARANTINED/CRASHED
    reason: str = ""
    detail: str = ""
    attempts: int = 1
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def raise_if_crashed(self) -> "JobResult":
        if self.status == CRASHED:
            raise JobWorkerError(self.id, self.detail)
        return self


def _execute(task) -> JobResult:
    """Worker entry point: run one job, never raise.

    ``task`` carries everything the attempt needs because the pool
    workers share no state with the parent beyond this tuple.
    """
    (handler, spec, timeout_s, quarantine, typed_errors,
     max_attempts, backoff_s) = task
    attempts = 0
    started = time.perf_counter()
    while True:
        attempts += 1
        try:
            with watchdog(timeout_s, f"job:{spec.id}"):
                value = handler(spec.payload)
            return JobResult(spec.id, OK, value=value, attempts=attempts,
                             elapsed_s=time.perf_counter() - started)
        except typed_errors as exc:
            return JobResult(spec.id, ERROR, reason=type(exc).__name__,
                             detail=str(exc), attempts=attempts,
                             elapsed_s=time.perf_counter() - started)
        except BudgetExceeded as exc:
            reason, detail = "timeout", str(exc)
        except Exception:
            reason, detail = "crash", traceback.format_exc()
        if not quarantine:
            return JobResult(spec.id, CRASHED, reason=reason, detail=detail,
                             attempts=attempts,
                             elapsed_s=time.perf_counter() - started)
        if attempts >= max_attempts:
            return JobResult(spec.id, QUARANTINED, reason=reason,
                             detail=detail, attempts=attempts,
                             elapsed_s=time.perf_counter() - started)
        time.sleep(backoff_s * (2 ** (attempts - 1)))


class JobPool:
    """A bounded, sharded, quarantining executor for picklable jobs.

    ``handler`` must be a module-level function (it is pickled by
    reference into the workers).  Use either the streaming API
    (:meth:`run` -- yields results as they complete, the fuzz campaign
    shape) or the submit/drain API (:meth:`submit` + :meth:`drain` --
    the daemon's batch shape); do not mix them on one pool.
    """

    def __init__(
        self,
        handler: Callable[[Any], Any],
        *,
        jobs: int = 1,
        queue_size: int = 64,
        timeout_s: float | None = None,
        quarantine: bool = True,
        typed_errors: tuple = (),
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        metrics=None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {jobs}")
        if queue_size < 1:
            raise ValueError(
                f"queue_size must be a positive integer, got {queue_size}")
        self.jobs = jobs
        self.queue_size = queue_size
        self._handler = handler
        self._timeout_s = timeout_s
        self._quarantine = quarantine
        self._typed_errors = tuple(typed_errors)
        self._max_attempts = max_attempts
        self._backoff_s = retry_backoff_s
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._pool = None
        if jobs > 1:
            import multiprocessing

            self._pool = multiprocessing.get_context().Pool(processes=jobs)
        #: in-flight cap: submit() blocks here -- the backpressure valve
        self._slots = threading.BoundedSemaphore(queue_size)
        self._completed: queue.SimpleQueue = queue.SimpleQueue()
        # both counters are touched by the submitting thread only
        self._submitted = 0
        self._collected = 0
        self._closed = False

    # -- internals -----------------------------------------------------------

    def _task(self, spec: JobSpec):
        return (self._handler, spec, self._timeout_s, self._quarantine,
                self._typed_errors, self._max_attempts, self._backoff_s)

    def _on_done(self, result: JobResult) -> None:
        # runs on the pool's result-handler thread: enqueue, free a slot
        self._completed.put(result)
        self._slots.release()

    def _on_error(self, exc: BaseException) -> None:
        # _execute never raises, so this only fires on infrastructure
        # failures (e.g. an unpicklable result); synthesize a crash so
        # the accounting -- and the backpressure slot -- stays balanced
        self._completed.put(JobResult(None, CRASHED, reason="crash",
                                      detail=repr(exc)))
        self._slots.release()

    def _dispatch(self, spec: JobSpec) -> None:
        self._submitted += 1
        if self._metrics.enabled:
            self._metrics.observe("service.queue.depth", self.pending)
        self._pool.apply_async(_execute, (self._task(spec),),
                               callback=self._on_done,
                               error_callback=self._on_error)

    # -- submit / drain (the daemon shape) -----------------------------------

    @property
    def pending(self) -> int:
        """Jobs accepted but not yet collected."""
        return self._submitted - self._collected

    def submit(self, spec: JobSpec) -> None:
        """Accept one job.  Blocks while ``queue_size`` jobs are in
        flight -- bounded-queue backpressure, never a drop."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._pool is None:
            self._submitted += 1
            if self._metrics.enabled:
                self._metrics.observe("service.queue.depth", self.pending)
            self._completed.put(_execute(self._task(spec)))
            return
        self._slots.acquire()
        self._dispatch(spec)

    def next_result(self, timeout: float | None = None) -> JobResult:
        """Block until one accepted job finishes and return its result.

        With a ``timeout`` (seconds), raises :class:`queue.Empty` when no
        result arrives in time -- the supervisor's polling hook."""
        if self.pending <= 0:
            raise RuntimeError("no jobs outstanding")
        result = (self._completed.get() if timeout is None
                  else self._completed.get(timeout=timeout))
        self._collected += 1
        return result

    def run_inline(self, spec: JobSpec) -> JobResult:
        """Execute one job in the calling process, bypassing the workers
        -- the circuit breaker's fallback path.  The job still runs under
        the watchdog/retry/quarantine ladder; the result is returned
        directly and never enters the pool's accounting."""
        return _execute(self._task(spec))

    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes ([] for inline pools).
        The supervisor compares successive snapshots to detect deaths --
        multiprocessing replaces a dead worker's *process*, but the job it
        was running is lost without this layer noticing."""
        if self._pool is None:
            return []
        return [p.pid for p in self._pool._pool if p.pid is not None]

    def dead_workers(self) -> int:
        """Workers whose process has exited but not yet been reaped."""
        if self._pool is None:
            return 0
        return sum(1 for p in self._pool._pool if p.exitcode is not None)

    def drain(self) -> list[JobResult]:
        """Wait for every accepted job; results sorted by id."""
        out = []
        while self.pending > 0:
            out.append(self.next_result())
        out.sort(key=lambda r: (r.id is None, r.id))
        return out

    # -- streaming (the fuzz-campaign shape) ---------------------------------

    def run(self, specs: Iterable[JobSpec]) -> Iterator[JobResult]:
        """Submit every spec, yielding results as they complete.

        At most ``queue_size`` jobs are in flight; the generator
        interleaves submission with collection, so breaking out early
        (``stop_after``) leaves the remaining work undispatched.  Yield
        order is completion order (serial pools complete in submission
        order); ids let the caller sort.
        """
        if self._pool is None:
            for spec in specs:
                self._submitted += 1
                result = _execute(self._task(spec))
                self._collected += 1
                yield result
            return
        it = iter(specs)
        exhausted = False
        while True:
            while not exhausted and self._slots.acquire(blocking=False):
                spec = next(it, None)
                if spec is None:
                    self._slots.release()
                    exhausted = True
                    break
                self._dispatch(spec)
            if self.pending == 0:
                if exhausted:
                    return
                continue
            yield self.next_result()

    # -- lifecycle -----------------------------------------------------------

    def close(self, *, kill: bool = False) -> None:
        """Shut the pool down.  Outstanding jobs (an early break out of
        :meth:`run`) are abandoned by terminating the workers; a drained
        pool closes gracefully.  ``kill=True`` SIGKILLs the workers --
        the supervisor's rebuild path, where a worker may be too hung to
        honour SIGTERM.  A SIGKILLed worker can die *holding the shared
        task-queue lock*, which deadlocks ``Pool.terminate()`` (it
        blocks acquiring that lock to flush the queue) -- so the kill
        path never calls terminate: it disarms the pool's exit
        finalizer, stops the worker-respawn thread, kills and reaps the
        processes, and abandons the daemonic handler threads."""
        if self._closed:
            return
        self._closed = True
        if self._pool is None:
            return
        if kill:
            from multiprocessing.pool import TERMINATE

            self._pool._terminate.cancel()
            self._pool._worker_handler._state = TERMINATE
            for proc in self._pool._pool:
                if proc.exitcode is None:
                    try:
                        proc.kill()
                    except OSError:
                        pass
            for proc in self._pool._pool:
                proc.join()
            return
        if self.pending > 0:
            self._pool.terminate()
        else:
            self._pool.close()
        self._pool.join()

    def __enter__(self) -> "JobPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
