"""The ``repro serve`` front door: JSONL requests in, JSONL responses out.

A *request* is one JSON object per line::

    {"id": 7, "source": "int f(int x) { return x + 1; }",
     "machine": "rs6k", "level": "speculative",
     "config": {"unroll_max_blocks": 0}, "resilient": true}

Only ``source`` is required; ``machine``/``level``/``resilient`` default
to the daemon's flags, ``config`` may override scalar
:class:`~repro.xform.pipeline.PipelineConfig` fields, and ``trace: true``
asks for the decision trace in the response.  A *response* echoes the
request ``id`` (or its ordinal when absent) and carries a status:

* ``ok``         -- compiled at the requested aggressiveness;
* ``degraded``   -- compiled, but the PR-4 ladder had to fall back;
* ``cache-hit``  -- served from the content-addressed artifact cache
  (byte-identical to the compile that seeded it), including duplicates
  inside one batch, which compile once and share the artifact;
* ``quarantined`` -- the job crashed or hung twice and was parked;
* ``error``      -- a malformed request or a typed front-end error
  (parse/lowering), reported without retry.

Responses always come back **in request order**, and -- because every
status above is decided by batch position, never by completion order --
a batch's responses are byte-identical for every ``--jobs`` value.

Shutdown is graceful: SIGTERM/SIGINT stop the intake, every request
already read is still compiled and answered, then the pool drains and
the daemon exits -- an accepted job is never lost.  A malformed or
hanging request can never take the daemon down: malformed lines become
``error`` responses, hangs are bounded by the per-job deadline and
quarantined by the job layer.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import threading
import time
from dataclasses import dataclass, fields as dataclass_fields

from ..machine.configs import CONFIGS
from ..obs.metrics import MetricsCollector
from ..sched.candidates import ScheduleLevel
from ..xform.pipeline import PipelineConfig
from . import worker
from .cache import Artifact, ArtifactCache, cache_key
from .jobs import ERROR, OK, QUARANTINED, JobPool, JobSpec
from .scorecard import format_scorecard

_LEVELS = {level.value: level for level in ScheduleLevel}

#: PipelineConfig fields a request's ``config`` object may override --
#: the scalar knobs; level/observability/resilience have dedicated keys
_OVERRIDABLE = frozenset(
    f.name for f in dataclass_fields(PipelineConfig)
    if f.name not in {"level", "trace", "metrics", "profile", "resilience"})


@dataclass
class ServeConfig:
    """Knobs of one daemon instance (the ``repro serve`` flags)."""

    jobs: int = 1
    machine: str = "rs6k"
    level: str = "speculative"
    #: per-job wall-clock deadline (None = unbounded)
    timeout_s: float | None = None
    #: default for requests that do not carry ``resilient``
    resilient: bool = False
    cache_entries: int = 256
    cache_dir: str | None = None
    batch_size: int = 32
    queue_size: int = 64
    #: admit the ``chaos_hang_s`` fault-injection hook (tests/CI only)
    allow_chaos: bool = False
    #: print a scorecard to stderr after every batch
    scorecard: bool = False


class _BadRequest(ValueError):
    """A request the daemon refuses before compiling anything."""


def _read_lines(stream, sink: queue.SimpleQueue) -> None:
    """Reader-thread body: forward lines, then an EOF sentinel.  Keeping
    the blocking read off the main thread lets SIGTERM drain promptly
    even while the peer holds the stream open."""
    try:
        for line in stream:
            sink.put(line)
    except (OSError, ValueError):
        pass  # peer vanished mid-read: treat as EOF
    sink.put(None)


class Daemon:
    """A long-lived batch-compile service over one :class:`JobPool`."""

    def __init__(self, config: ServeConfig | None = None,
                 metrics: MetricsCollector | None = None):
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.cache = ArtifactCache(self.config.cache_entries,
                                   disk_dir=self.config.cache_dir,
                                   metrics=self.metrics)
        self._pool: JobPool | None = None
        self._shutdown = threading.Event()
        self._seq = 0
        self._started = time.perf_counter()

    # -- lifecycle -----------------------------------------------------------

    @property
    def pool(self) -> JobPool:
        if self._pool is None:
            self._pool = JobPool(
                worker.compile_request,
                jobs=self.config.jobs,
                queue_size=self.config.queue_size,
                timeout_s=self.config.timeout_s,
                typed_errors=worker.TYPED_ERRORS,
                metrics=self.metrics,
            )
        return self._pool

    def request_shutdown(self) -> None:
        """Stop accepting new requests; already-accepted work drains."""
        self._shutdown.set()

    @property
    def shutting_down(self) -> bool:
        return self._shutdown.is_set()

    def install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.request_shutdown())

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "Daemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request parsing -----------------------------------------------------

    def _parse_request(self, line: str):
        """(id, payload, wants_trace) -- raises :class:`_BadRequest`."""
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise _BadRequest("request must be a JSON object")
        source = doc.get("source")
        if not isinstance(source, str):
            raise _BadRequest("request needs a string 'source'")
        machine = doc.get("machine", self.config.machine)
        if machine not in CONFIGS:
            raise _BadRequest(f"unknown machine {machine!r}; choose from "
                              f"{sorted(CONFIGS)}")
        level = doc.get("level", self.config.level)
        if level not in _LEVELS:
            raise _BadRequest(f"unknown level {level!r}; choose from "
                              f"{sorted(_LEVELS)}")
        overrides = doc.get("config") or {}
        if not isinstance(overrides, dict):
            raise _BadRequest("'config' must be a JSON object")
        for key, value in overrides.items():
            if key not in _OVERRIDABLE:
                raise _BadRequest(
                    f"config field {key!r} is not overridable; allowed: "
                    f"{sorted(_OVERRIDABLE)}")
            if not isinstance(value, (bool, int)):
                raise _BadRequest(
                    f"config field {key!r} must be a scalar, "
                    f"got {type(value).__name__}")
        resilient = bool(doc.get("resilient", self.config.resilient))
        payload = {"source": source, "machine": machine, "level": level,
                   "config": dict(sorted(overrides.items())),
                   "resilient": resilient}
        hang_s = doc.get("chaos_hang_s")
        if hang_s is not None:
            if not self.config.allow_chaos:
                raise _BadRequest(
                    "'chaos_hang_s' requires the daemon's --chaos flag")
            if not isinstance(hang_s, (int, float)) \
                    or isinstance(hang_s, bool):
                raise _BadRequest("'chaos_hang_s' must be a number")
            payload["chaos_hang_s"] = float(hang_s)
        return doc.get("id"), payload, bool(doc.get("trace", False))

    # -- the batch engine ----------------------------------------------------

    def serve_batch_lines(self, lines: list[str]) -> list[dict]:
        """Answer one batch of raw JSONL request lines, in order.

        Requests sharing a cache key compile once: the first occurrence
        runs (or hits the cache), every duplicate shares its outcome --
        so the status vector is a function of the batch alone, identical
        for any pool width.
        """
        entries = []  # (response_id, payload|None, error|None, trace?)
        for line in lines:
            rid = self._seq
            self._seq += 1
            self.metrics.inc("service.requests")
            try:
                req_id, payload, wants_trace = self._parse_request(line)
                if req_id is not None:
                    rid = req_id
                entries.append((rid, payload, None, wants_trace))
            except _BadRequest as exc:
                entries.append((rid, None, str(exc), False))

        # content-address every compile and dedupe within the batch
        first_of: dict[str, int] = {}
        jobs: list[JobSpec] = []
        keyed = []  # per entry: (key, is_first, cached_artifact|None)
        for index, (rid, payload, err, _) in enumerate(entries):
            if err is not None:
                keyed.append((None, False, None))
                continue
            key = cache_key(payload["source"], payload["machine"],
                            worker.build_config(payload["level"],
                                                payload["config"],
                                                payload["resilient"]))
            if key in first_of:
                keyed.append((key, False, None))
                continue
            first_of[key] = index
            artifact = self.cache.get(key)
            if artifact is None:
                jobs.append(JobSpec(id=index, payload=payload))
            keyed.append((key, True, artifact))

        for spec in jobs:
            self.pool.submit(spec)
        by_index = {result.id: result for result in self.pool.drain()}

        # fold outcomes back into request order
        outcomes: dict[str, dict] = {}
        responses = []
        for index, (rid, payload, err, wants_trace) in enumerate(entries):
            if err is not None:
                responses.append(self._finish(
                    {"id": rid, "status": "error", "reason": "bad-request",
                     "error": err}))
                continue
            key, is_first, cached = keyed[index]
            if is_first:
                outcomes[key] = self._first_outcome(key, payload, cached,
                                                    by_index.get(index))
            elif outcomes[key].get("artifact") is not None:
                # a shared in-batch artifact is a cache hit in all but
                # timing; count it so the hit rate reflects work saved
                self.cache.hits += 1
                self.metrics.inc("service.cache.hit")
            responses.append(self._finish(self._respond(
                rid, outcomes[key], is_first=is_first,
                wants_trace=wants_trace)))
        self.metrics.inc("service.batches")
        return responses

    def _first_outcome(self, key: str, payload: dict,
                       cached: Artifact | None, result) -> dict:
        """Classify the first occurrence of a cache key in this batch."""
        if cached is not None:
            return {"status": "cache-hit", "artifact": cached}
        if result is None:  # defensive: the pool lost track of the job
            return {"status": "error", "reason": "internal",
                    "error": "job result missing"}
        if result.status == OK:
            artifact = Artifact.from_json(result.value)
            requested = worker.start_rung(worker.build_config(
                payload["level"], payload["config"],
                payload["resilient"])).value
            if artifact.rung == requested:
                self.cache.put(key, artifact)
                return {"status": "ok", "artifact": artifact}
            return {"status": "degraded", "artifact": artifact}
        if result.status == ERROR:
            return {"status": "error", "reason": result.reason,
                    "error": result.detail}
        if result.status == QUARANTINED:
            return {"status": "quarantined", "reason": result.reason}
        # CRASHED only happens on quarantine=False pools; the daemon
        # always quarantines, but fail soft if it ever surfaces
        return {"status": "error", "reason": "crash", "error": result.detail}

    def _respond(self, rid, outcome: dict, *, is_first: bool,
                 wants_trace: bool) -> dict:
        status = outcome["status"]
        if not is_first and status in ("ok", "degraded", "cache-hit"):
            # duplicates share the first occurrence's artifact; a shared
            # full-quality artifact is by definition a cache hit
            status = "cache-hit" if status != "degraded" else "degraded"
        response = {"id": rid, "status": status}
        artifact = outcome.get("artifact")
        if artifact is not None:
            response["rung"] = artifact.rung
            response["assembly"] = artifact.assembly
            response["counters"] = artifact.counters
            if wants_trace:
                response["trace"] = artifact.trace
        if "reason" in outcome:
            response["reason"] = outcome["reason"]
        if "error" in outcome:
            response["error"] = outcome["error"]
        return response

    def _finish(self, response: dict) -> dict:
        self.metrics.inc(f"service.status.{response['status']}")
        if "rung" in response:
            self.metrics.inc(f"service.rung.{response['rung']}")
        return response

    # -- stream / socket front ends ------------------------------------------

    def serve_stream(self, in_stream, out_stream,
                     err_stream=None) -> dict:
        """Serve JSONL from a text stream until EOF or shutdown.

        Lines are gathered into batches of at most ``batch_size`` (or
        whatever has arrived when the stream goes quiet) and answered in
        order; responses are flushed per batch so a live client sees
        progress.  On shutdown, every line already read is still
        answered before the daemon stops.
        """
        # fork the workers *before* the reader thread can block holding
        # ``in_stream``'s buffer lock: a worker forked mid-read inherits
        # the locked (possibly sys.stdin) buffer and its bootstrap
        # deadlocks in multiprocessing's _close_stdin
        self.pool
        lines: queue.SimpleQueue = queue.SimpleQueue()
        reader = threading.Thread(target=_read_lines,
                                  args=(in_stream, lines), daemon=True)
        reader.start()
        eof = False
        while not eof and not self.shutting_down:
            batch: list[str] = []
            while len(batch) < self.config.batch_size:
                try:
                    line = (lines.get(timeout=0.1) if not batch
                            else lines.get_nowait())
                except queue.Empty:
                    if batch or self.shutting_down:
                        break
                    continue
                if line is None:
                    eof = True
                    break
                if line.strip():
                    batch.append(line)
            if batch:
                self._emit(batch, out_stream, err_stream)
        # drain: answer every line the reader already handed us
        final: list[str] = []
        while True:
            try:
                line = lines.get_nowait()
            except queue.Empty:
                break
            if line is None:
                break
            if line.strip():
                final.append(line)
        if final:
            self._emit(final, out_stream, err_stream)
        return self.summary()

    def _emit(self, batch: list[str], out_stream, err_stream) -> None:
        for response in self.serve_batch_lines(batch):
            out_stream.write(json.dumps(response, separators=(",", ":")))
            out_stream.write("\n")
        out_stream.flush()
        if self.config.scorecard and err_stream is not None:
            print(self.scorecard(), file=err_stream, flush=True)

    def serve_socket(self, path: str, err_stream=None,
                     *, ready: threading.Event | None = None) -> dict:
        """Serve JSONL sessions on a Unix socket, one client at a time."""
        # fork the workers before any client connects: a worker forked
        # after accept() inherits the connection fd and holds it open,
        # so the client never sees EOF when its session ends
        self.pool
        try:
            os.unlink(path)
        except OSError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
            listener.listen(1)
            listener.settimeout(0.2)
            if ready is not None:
                ready.set()
            while not self.shutting_down:
                try:
                    conn, _addr = listener.accept()
                except socket.timeout:
                    continue
                with conn:
                    rfile = conn.makefile("r", encoding="utf-8")
                    wfile = conn.makefile("w", encoding="utf-8")
                    try:
                        self.serve_stream(rfile, wfile, err_stream)
                    finally:
                        # the makefile wrappers keep the socket fd alive
                        # past ``conn.close()``; close them so the client
                        # sees EOF once its session is answered
                        for stream in (wfile, rfile):
                            try:
                                stream.close()
                            except OSError:
                                pass
        finally:
            listener.close()
            try:
                os.unlink(path)
            except OSError:
                pass
        return self.summary()

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        counters = self.metrics.counters
        return {
            "requests": counters.get("service.requests", 0),
            "batches": counters.get("service.batches", 0),
            "statuses": {name.rsplit(".", 1)[1]: count
                         for name, count in sorted(counters.items())
                         if name.startswith("service.status.")},
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
            "elapsed_s": time.perf_counter() - self._started,
        }

    def scorecard(self) -> str:
        return format_scorecard(self.metrics, self.cache, self.config,
                                elapsed_s=time.perf_counter() - self._started)
