"""The ``repro serve`` front door: JSONL requests in, JSONL responses out.

A *request* is one JSON object per line::

    {"id": 7, "source": "int f(int x) { return x + 1; }",
     "machine": "rs6k", "level": "speculative",
     "config": {"unroll_max_blocks": 0}, "resilient": true}

Only ``source`` is required; ``machine``/``level``/``resilient`` default
to the daemon's flags, ``config`` may override scalar
:class:`~repro.xform.pipeline.PipelineConfig` fields, and ``trace: true``
asks for the decision trace in the response.  Any *other* top-level key
is refused with a per-request typed error -- an unknown field is more
likely a protocol mismatch than a request we should half-honour.  A
*response* echoes the request ``id`` (or its ordinal when absent) and
carries a status:

* ``ok``         -- compiled at the requested aggressiveness;
* ``degraded``   -- compiled, but the PR-4 ladder had to fall back, or
  admission control shed the request one rung down
  (``--degrade-under-load``; the shed-rung schedule is re-verified);
* ``cache-hit``  -- served from the content-addressed artifact cache
  (byte-identical to the compile that seeded it), including duplicates
  inside one batch, which compile once and share the artifact;
* ``quarantined`` -- the job crashed or hung twice and was parked;
* ``overloaded`` -- admission control is above high water and the
  daemon fast-failed the request instead of queueing it;
* ``error``      -- a malformed/oversized/unknown-field request or a
  typed front-end error (parse/lowering), reported without retry.

Responses always come back **in request order**, and -- because every
status above is decided by batch position, never by completion order --
a batch's responses are byte-identical for every ``--jobs`` value.

Three service-hardening layers ride on top of the batch engine:

* **supervision** -- the pool is a
  :class:`~repro.service.supervisor.SupervisedPool`: dead or hung
  workers are detected and the pool rebuilt in place; repeated rebuilds
  trip a circuit breaker into inline mode (see ``supervisor.py``);
* **write-ahead journal** -- ``--journal`` records accepted requests
  and completions so ``--resume-journal`` can replay whatever a crash
  interrupted (see ``journal.py``);
* **admission control** -- ``--high-water``/``--low-water`` bound the
  unserved-request depth with hysteresis; above high water new work is
  fast-failed (``overloaded``) or, with ``--degrade-under-load``, shed
  one ladder rung down and re-verified.  ``--max-request-bytes`` and
  ``--read-deadline`` harden the framing: an oversized or half-sent
  line becomes a typed error, never a wedged session.

Shutdown is graceful: SIGTERM/SIGINT stop the intake, every request
already read is still compiled and answered, then the pool drains and
the daemon exits -- an accepted job is never lost.  A malformed or
hanging request can never take the daemon down: malformed lines become
``error`` responses, hangs are bounded by the per-job deadline and
quarantined by the job layer, and a client that disconnects mid-batch
only ends its own session.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import threading
import time
from dataclasses import dataclass, fields as dataclass_fields

from ..machine.configs import CONFIGS
from ..obs.events import AdmissionEvent
from ..obs.metrics import MetricsCollector
from ..obs.tracer import NULL_TRACER
from ..sched.candidates import ScheduleLevel
from ..xform.pipeline import PipelineConfig
from . import worker
from .cache import Artifact, ArtifactCache, cache_key
from .jobs import ERROR, OK, QUARANTINED, JobPool, JobSpec
from .journal import Journal, load_journal
from .scorecard import format_scorecard
from .supervisor import SupervisedPool, SupervisorConfig

_LEVELS = {level.value: level for level in ScheduleLevel}

#: PipelineConfig fields a request's ``config`` object may override --
#: the scalar knobs; level/observability/resilience have dedicated keys
_OVERRIDABLE = frozenset(
    f.name for f in dataclass_fields(PipelineConfig)
    if f.name not in {"level", "trace", "metrics", "profile", "resilience"})

#: the complete request vocabulary; anything else is a typed error
_REQUEST_KEYS = frozenset({"id", "source", "machine", "level", "config",
                           "resilient", "trace", "chaos_hang_s"})

#: ``--degrade-under-load``: one scheduling rung down per shed request
_SHED_LEVEL = {"speculative": "useful", "useful": "none", "none": "none"}


@dataclass
class ServeConfig:
    """Knobs of one daemon instance (the ``repro serve`` flags)."""

    jobs: int = 1
    machine: str = "rs6k"
    level: str = "speculative"
    #: per-job wall-clock deadline (None = unbounded)
    timeout_s: float | None = None
    #: default for requests that do not carry ``resilient``
    resilient: bool = False
    cache_entries: int = 256
    cache_dir: str | None = None
    batch_size: int = 32
    queue_size: int = 64
    #: admit the ``chaos_hang_s`` fault-injection hook (tests/CI only)
    allow_chaos: bool = False
    #: print a scorecard to stderr after every batch
    scorecard: bool = False
    # -- supervision ---------------------------------------------------------
    #: wrap the pool in the supervisor (off = raw pool, the bench baseline)
    supervise: bool = True
    #: supervisor hang deadline for in-flight jobs (None = watchdog only)
    hang_timeout_s: float | None = None
    #: pool rebuilds inside the window before the breaker trips
    max_rebuilds: int = 3
    rebuild_window_s: float = 60.0
    # -- write-ahead journal -------------------------------------------------
    journal_path: str | None = None
    #: replay the journal's incomplete requests before serving new ones
    resume_journal: bool = False
    # -- admission control ---------------------------------------------------
    #: unserved-request depth that starts shedding (None = admission off)
    high_water: int | None = None
    #: depth at which shedding stops (default: high_water // 2)
    low_water: int | None = None
    #: shed by degrading one ladder rung instead of fast-failing
    degrade_under_load: bool = False
    # -- protocol hardening --------------------------------------------------
    #: longest request line accepted (None = unbounded)
    max_request_bytes: int | None = None
    #: socket read deadline per client, seconds (None = patient)
    read_deadline_s: float | None = None


class _BadRequest(ValueError):
    """A request the daemon refuses before compiling anything.

    ``reason`` is the typed tag the response carries -- ``bad-json`` for
    unparsable lines, ``unknown-field`` for vocabulary violations,
    ``oversized`` for frames past ``--max-request-bytes``, and
    ``bad-request`` for everything else.
    """

    def __init__(self, message: str, reason: str = "bad-request"):
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class _Oversized:
    """Sentinel the bounded reader yields instead of a too-long line."""

    prefix: str


def _bounded_lines(stream, max_bytes: int):
    """Iterate lines of ``stream``, replacing any line longer than
    ``max_bytes`` with an :class:`_Oversized` sentinel.  The remainder
    of the long line is swallowed so framing stays intact -- one bad
    frame costs one typed error, not the session."""
    while True:
        line = stream.readline(max_bytes + 1)
        if not line:
            return
        if len(line) > max_bytes and not line.endswith("\n"):
            while True:
                rest = stream.readline(max_bytes + 1)
                if not rest or rest.endswith("\n"):
                    break
            yield _Oversized(prefix=line[:80])
        else:
            yield line


def _read_lines(stream, sink: queue.SimpleQueue,
                max_bytes: int | None = None) -> None:
    """Reader-thread body: forward lines, then an EOF sentinel.  Keeping
    the blocking read off the main thread lets SIGTERM drain promptly
    even while the peer holds the stream open."""
    try:
        source = (stream if max_bytes is None
                  else _bounded_lines(stream, max_bytes))
        for line in source:
            sink.put(line)
    except (OSError, ValueError):
        pass  # peer vanished or went quiet past its deadline: EOF
    sink.put(None)


class AdmissionController:
    """High/low-watermark hysteresis over the unserved-request depth.

    Above ``high_water`` the daemon starts shedding; it keeps shedding
    until the depth falls to ``low_water`` -- the gap is what stops the
    service flapping between accept and shed at the boundary.  Both
    transitions are emitted as typed :class:`AdmissionEvent`s.
    """

    def __init__(self, high_water: int, low_water: int | None = None, *,
                 metrics=None, tracer=None):
        if high_water < 1:
            raise ValueError(
                f"high_water must be a positive integer, got {high_water}")
        if low_water is None:
            low_water = high_water // 2
        if low_water >= high_water:
            raise ValueError(
                f"low_water ({low_water}) must be below "
                f"high_water ({high_water})")
        self.high_water = high_water
        self.low_water = low_water
        self.shedding = False
        self.sheds = 0
        self._metrics = metrics
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def update(self, depth: int) -> bool:
        """Fold one depth observation; returns the shedding state."""
        if not self.shedding and depth > self.high_water:
            self.shedding = True
            self.sheds += 1
            self._emit("shed-start", depth)
        elif self.shedding and depth <= self.low_water:
            self.shedding = False
            self._emit("shed-stop", depth)
        return self.shedding

    def _emit(self, action: str, depth: int) -> None:
        if self._metrics is not None:
            self._metrics.inc(
                f"service.admission.{action.replace('-', '_')}")
        if self._tracer.enabled:
            self._tracer.emit(AdmissionEvent(
                action=action, depth=depth,
                high_water=self.high_water, low_water=self.low_water))


class Daemon:
    """A long-lived batch-compile service over one supervised pool."""

    def __init__(self, config: ServeConfig | None = None,
                 metrics: MetricsCollector | None = None, tracer=None):
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cache = ArtifactCache(self.config.cache_entries,
                                   disk_dir=self.config.cache_dir,
                                   metrics=self.metrics)
        self._pool = None
        self._journal: Journal | None = None
        self._admission: AdmissionController | None = None
        if self.config.high_water is not None:
            self._admission = AdmissionController(
                self.config.high_water, self.config.low_water,
                metrics=self.metrics, tracer=self.tracer)
        self._shutdown = threading.Event()
        self._seq = 0
        self._started = time.perf_counter()

    # -- lifecycle -----------------------------------------------------------

    @property
    def pool(self):
        if self._pool is None:
            if self.config.supervise:
                self._pool = SupervisedPool(
                    worker.compile_request,
                    jobs=self.config.jobs,
                    queue_size=self.config.queue_size,
                    timeout_s=self.config.timeout_s,
                    typed_errors=worker.TYPED_ERRORS,
                    metrics=self.metrics,
                    tracer=self.tracer,
                    supervisor=SupervisorConfig(
                        hang_timeout_s=self.config.hang_timeout_s,
                        max_rebuilds=self.config.max_rebuilds,
                        rebuild_window_s=self.config.rebuild_window_s),
                )
            else:
                self._pool = JobPool(
                    worker.compile_request,
                    jobs=self.config.jobs,
                    queue_size=self.config.queue_size,
                    timeout_s=self.config.timeout_s,
                    typed_errors=worker.TYPED_ERRORS,
                    metrics=self.metrics,
                )
        return self._pool

    def supervisor_stats(self) -> dict | None:
        if isinstance(self._pool, SupervisedPool):
            return self._pool.stats()
        return None

    def request_shutdown(self) -> None:
        """Stop accepting new requests; already-accepted work drains."""
        self._shutdown.set()

    @property
    def shutting_down(self) -> bool:
        return self._shutdown.is_set()

    def install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.request_shutdown())

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "Daemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the write-ahead journal ---------------------------------------------

    def start_journal(self) -> None:
        """Open a fresh journal at ``--journal`` (truncating any old one)."""
        if self.config.journal_path is not None and self._journal is None:
            self._journal = Journal(self.config.journal_path)

    def resume_from_journal(self, out_stream, err_stream=None) -> int:
        """Recover from ``--journal``: seed the cache with every recorded
        artifact, truncate a torn tail, then replay each request that has
        no completion record through the normal batch path (responses go
        to ``out_stream``).  Returns the number of requests replayed.
        Raises :class:`~repro.service.journal.JournalError` on a journal
        corrupt beyond its final line."""
        path = self.config.journal_path
        state = load_journal(path)
        for key, doc in state.artifacts:
            self.cache.put(key, Artifact.from_json(doc))
        self._journal = Journal(path, resume_from=state)
        self._seq = state.max_seq + 1
        pending = state.incomplete()
        if pending:
            self.metrics.inc("service.journal.replayed", len(pending))
        size = self.config.batch_size
        for start in range(0, len(pending), size):
            answers = self._serve_batch(pending[start:start + size])
            self._write_answers(answers, out_stream, err_stream)
        return len(pending)

    # -- request parsing -----------------------------------------------------

    def _parse_request(self, line: str):
        """(id, payload, wants_trace) -- raises :class:`_BadRequest`."""
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"not valid JSON: {exc}",
                              reason="bad-json") from exc
        if not isinstance(doc, dict):
            raise _BadRequest("request must be a JSON object",
                              reason="bad-json")
        unknown = sorted(set(doc) - _REQUEST_KEYS)
        if unknown:
            raise _BadRequest(
                f"unknown request field(s) {unknown}; allowed: "
                f"{sorted(_REQUEST_KEYS)}", reason="unknown-field")
        source = doc.get("source")
        if not isinstance(source, str):
            raise _BadRequest("request needs a string 'source'")
        machine = doc.get("machine", self.config.machine)
        if machine not in CONFIGS:
            raise _BadRequest(f"unknown machine {machine!r}; choose from "
                              f"{sorted(CONFIGS)}")
        level = doc.get("level", self.config.level)
        if level not in _LEVELS:
            raise _BadRequest(f"unknown level {level!r}; choose from "
                              f"{sorted(_LEVELS)}")
        overrides = doc.get("config") or {}
        if not isinstance(overrides, dict):
            raise _BadRequest("'config' must be a JSON object")
        for key, value in overrides.items():
            if key not in _OVERRIDABLE:
                raise _BadRequest(
                    f"config field {key!r} is not overridable; allowed: "
                    f"{sorted(_OVERRIDABLE)}", reason="unknown-field")
            if not isinstance(value, (bool, int)):
                raise _BadRequest(
                    f"config field {key!r} must be a scalar, "
                    f"got {type(value).__name__}")
        resilient = bool(doc.get("resilient", self.config.resilient))
        payload = {"source": source, "machine": machine, "level": level,
                   "config": dict(sorted(overrides.items())),
                   "resilient": resilient}
        hang_s = doc.get("chaos_hang_s")
        if hang_s is not None:
            if not self.config.allow_chaos:
                raise _BadRequest(
                    "'chaos_hang_s' requires the daemon's --chaos flag")
            if not isinstance(hang_s, (int, float)) \
                    or isinstance(hang_s, bool):
                raise _BadRequest("'chaos_hang_s' must be a number")
            payload["chaos_hang_s"] = float(hang_s)
        return doc.get("id"), payload, bool(doc.get("trace", False))

    @staticmethod
    def _shed_payload(payload: dict) -> dict:
        """The ``--degrade-under-load`` transform: one scheduling rung
        down, and ``verify`` forced on so the shed-rung schedule is
        proven before it is served."""
        shed = dict(payload)
        shed["level"] = _SHED_LEVEL[payload["level"]]
        overrides = dict(payload["config"])
        overrides["verify"] = True
        shed["config"] = dict(sorted(overrides.items()))
        return shed

    # -- the batch engine ----------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def serve_batch_lines(self, lines: list[str]) -> list[dict]:
        """Answer one batch of raw JSONL request lines, in order.

        Requests sharing a cache key compile once: the first occurrence
        runs (or hits the cache), every duplicate shares its outcome --
        so the status vector is a function of the batch alone, identical
        for any pool width.
        """
        pairs = [(self._next_seq(), line) for line in lines]
        return [answer["response"] for answer in self._serve_batch(pairs)]

    def _serve_batch(self, pairs: list[tuple[int, object]],
                     *, shed: bool = False) -> list[dict]:
        """Serve ``(seq, line)`` pairs; each answer carries the response
        plus what the journal's completion record needs (``seq``, and
        the cache ``key``/``artifact`` for ``ok`` compiles)."""
        entries = []
        for seq, line in pairs:
            self.metrics.inc("service.requests")
            entry = {"seq": seq, "rid": seq, "payload": None, "err": None,
                     "reason": "bad-request", "trace": False, "shed": None}
            if isinstance(line, _Oversized):
                entry["err"] = (
                    "request line exceeds --max-request-bytes "
                    f"({self.config.max_request_bytes}); "
                    f"starts: {json.dumps(line.prefix)[:60]}")
                entry["reason"] = "oversized"
            else:
                try:
                    req_id, payload, wants_trace = self._parse_request(line)
                    if req_id is not None:
                        entry["rid"] = req_id
                    entry["payload"] = payload
                    entry["trace"] = wants_trace
                except _BadRequest as exc:
                    entry["err"] = str(exc)
                    entry["reason"] = exc.reason
            if shed and entry["payload"] is not None:
                if self.config.degrade_under_load:
                    entry["payload"] = self._shed_payload(entry["payload"])
                    entry["shed"] = "degraded"
                else:
                    entry["payload"] = None
                    entry["shed"] = "overloaded"
            entries.append(entry)

        # content-address every compile and dedupe within the batch
        first_of: dict[str, int] = {}
        jobs: list[JobSpec] = []
        keyed = []  # per entry: (key, is_first, cached_artifact|None)
        for index, entry in enumerate(entries):
            payload = entry["payload"]
            if payload is None:
                keyed.append((None, False, None))
                continue
            key = cache_key(payload["source"], payload["machine"],
                            worker.build_config(payload["level"],
                                                payload["config"],
                                                payload["resilient"]))
            if key in first_of:
                keyed.append((key, False, None))
                continue
            first_of[key] = index
            artifact = self.cache.get(key)
            if artifact is None:
                jobs.append(JobSpec(id=index, payload=payload))
            keyed.append((key, True, artifact))

        by_index = {}
        if jobs:  # a fully-cached batch never needs (or forks) the pool
            for spec in jobs:
                self.pool.submit(spec)
            by_index = {result.id: result for result in self.pool.drain()}

        # fold outcomes back into request order
        outcomes: dict[str, dict] = {}
        answers = []
        for index, entry in enumerate(entries):
            answer = {"seq": entry["seq"], "key": None, "artifact": None}
            if entry["shed"] == "overloaded":
                answer["response"] = self._finish(
                    {"id": entry["rid"], "status": "overloaded",
                     "reason": "queue-depth",
                     "error": "service above high water; retry later"})
                answers.append(answer)
                continue
            if entry["err"] is not None:
                answer["response"] = self._finish(
                    {"id": entry["rid"], "status": "error",
                     "reason": entry["reason"], "error": entry["err"]})
                answers.append(answer)
                continue
            key, is_first, cached = keyed[index]
            if is_first:
                outcomes[key] = self._first_outcome(
                    key, entry["payload"], cached, by_index.get(index))
            elif outcomes[key].get("artifact") is not None:
                # a shared in-batch artifact is a cache hit in all but
                # timing; count it so the hit rate reflects work saved
                self.cache.hits += 1
                self.metrics.inc("service.cache.hit")
            response = self._respond(entry["rid"], outcomes[key],
                                     is_first=is_first,
                                     wants_trace=entry["trace"])
            if entry["shed"] == "degraded" \
                    and response["status"] in ("ok", "cache-hit"):
                response["status"] = "degraded"
                response["reason"] = "overload"
            if outcomes[key]["status"] == "ok":
                answer["key"] = key
                answer["artifact"] = outcomes[key]["artifact"].to_json()
            answer["response"] = self._finish(response)
            answers.append(answer)
        self.metrics.inc("service.batches")
        return answers

    def _first_outcome(self, key: str, payload: dict,
                       cached: Artifact | None, result) -> dict:
        """Classify the first occurrence of a cache key in this batch."""
        if cached is not None:
            return {"status": "cache-hit", "artifact": cached}
        if result is None:  # defensive: the pool lost track of the job
            return {"status": "error", "reason": "internal",
                    "error": "job result missing"}
        if result.status == OK:
            artifact = Artifact.from_json(result.value)
            requested = worker.start_rung(worker.build_config(
                payload["level"], payload["config"],
                payload["resilient"])).value
            if artifact.rung == requested:
                self.cache.put(key, artifact)
                return {"status": "ok", "artifact": artifact}
            return {"status": "degraded", "artifact": artifact}
        if result.status == ERROR:
            return {"status": "error", "reason": result.reason,
                    "error": result.detail}
        if result.status == QUARANTINED:
            return {"status": "quarantined", "reason": result.reason}
        # CRASHED only happens on quarantine=False pools; the daemon
        # always quarantines, but fail soft if it ever surfaces
        return {"status": "error", "reason": "crash", "error": result.detail}

    def _respond(self, rid, outcome: dict, *, is_first: bool,
                 wants_trace: bool) -> dict:
        status = outcome["status"]
        if not is_first and status in ("ok", "degraded", "cache-hit"):
            # duplicates share the first occurrence's artifact; a shared
            # full-quality artifact is by definition a cache hit
            status = "cache-hit" if status != "degraded" else "degraded"
        response = {"id": rid, "status": status}
        artifact = outcome.get("artifact")
        if artifact is not None:
            response["rung"] = artifact.rung
            response["assembly"] = artifact.assembly
            response["counters"] = artifact.counters
            if wants_trace:
                response["trace"] = artifact.trace
        if "reason" in outcome:
            response["reason"] = outcome["reason"]
        if "error" in outcome:
            response["error"] = outcome["error"]
        return response

    def _finish(self, response: dict) -> dict:
        self.metrics.inc(f"service.status.{response['status']}")
        if "rung" in response:
            self.metrics.inc(f"service.rung.{response['rung']}")
        return response

    # -- stream / socket front ends ------------------------------------------

    def serve_stream(self, in_stream, out_stream,
                     err_stream=None) -> dict:
        """Serve JSONL from a text stream until EOF or shutdown.

        Lines are gathered into batches of at most ``batch_size`` (or
        whatever has arrived when the stream goes quiet) and answered in
        order; responses are flushed per batch so a live client sees
        progress.  On shutdown, every line already read is still
        answered before the daemon stops.
        """
        # fork the workers *before* the reader thread can block holding
        # ``in_stream``'s buffer lock: a worker forked mid-read inherits
        # the locked (possibly sys.stdin) buffer and its bootstrap
        # deadlocks in multiprocessing's _close_stdin
        self.pool
        lines: queue.SimpleQueue = queue.SimpleQueue()
        reader = threading.Thread(
            target=_read_lines,
            args=(in_stream, lines, self.config.max_request_bytes),
            daemon=True)
        reader.start()
        eof = False
        while not eof and not self.shutting_down:
            batch: list = []
            while len(batch) < self.config.batch_size:
                try:
                    line = (lines.get(timeout=0.1) if not batch
                            else lines.get_nowait())
                except queue.Empty:
                    if batch or self.shutting_down:
                        break
                    continue
                if line is None:
                    eof = True
                    break
                if isinstance(line, _Oversized) or line.strip():
                    batch.append(line)
            if batch:
                shed = False
                if self._admission is not None:
                    shed = self._admission.update(lines.qsize())
                self._emit(batch, out_stream, err_stream, shed=shed)
        # drain: answer every line the reader already handed us
        final: list = []
        while True:
            try:
                line = lines.get_nowait()
            except queue.Empty:
                break
            if line is None:
                break
            if isinstance(line, _Oversized) or line.strip():
                final.append(line)
        if final:
            shed = False
            if self._admission is not None:
                shed = self._admission.update(0)
            self._emit(final, out_stream, err_stream, shed=shed)
        return self.summary()

    def _emit(self, batch: list, out_stream, err_stream,
              *, shed: bool = False) -> None:
        pairs = [(self._next_seq(), line) for line in batch]
        if self._journal is not None:
            for seq, line in pairs:
                raw = line.prefix if isinstance(line, _Oversized) else line
                self._journal.record_request(seq, raw)
        answers = self._serve_batch(pairs, shed=shed)
        self._write_answers(answers, out_stream, err_stream)

    def _write_answers(self, answers: list[dict], out_stream,
                       err_stream) -> None:
        """Write responses, then journal each completion.  A client that
        vanishes mid-batch stops the writes but never the journal -- the
        work is done either way -- and surfaces as a session-ending
        :class:`BrokenPipeError` after the records are safe."""
        broken = False
        for answer in answers:
            if not broken:
                try:
                    out_stream.write(json.dumps(answer["response"],
                                                separators=(",", ":")))
                    out_stream.write("\n")
                except OSError:
                    broken = True
                    self.metrics.inc("service.client.disconnects")
            if self._journal is not None:
                self._journal.record_done(
                    answer["seq"], answer["response"]["id"],
                    answer["response"]["status"],
                    answer["key"], answer["artifact"])
        if not broken:
            try:
                out_stream.flush()
            except OSError:
                broken = True
                self.metrics.inc("service.client.disconnects")
        if self.config.scorecard and err_stream is not None:
            print(self.scorecard(), file=err_stream, flush=True)
        if broken:
            raise BrokenPipeError("client disconnected mid-batch")

    def serve_socket(self, path: str, err_stream=None,
                     *, ready: threading.Event | None = None) -> dict:
        """Serve JSONL sessions on a Unix socket, one client at a time.

        A session that misbehaves -- disconnects mid-batch, stalls past
        ``--read-deadline`` -- costs only itself; the listener and the
        pool keep serving the next client.
        """
        # fork the workers before any client connects: a worker forked
        # after accept() inherits the connection fd and holds it open,
        # so the client never sees EOF when its session ends
        self.pool
        try:
            os.unlink(path)
        except OSError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
            listener.listen(1)
            listener.settimeout(0.2)
            if ready is not None:
                ready.set()
            while not self.shutting_down:
                try:
                    conn, _addr = listener.accept()
                except socket.timeout:
                    continue
                with conn:
                    if self.config.read_deadline_s is not None:
                        # a slow-loris client trips this in the reader
                        # thread, which treats it as that session's EOF
                        conn.settimeout(self.config.read_deadline_s)
                    rfile = conn.makefile("r", encoding="utf-8")
                    wfile = conn.makefile("w", encoding="utf-8")
                    try:
                        self.serve_stream(rfile, wfile, err_stream)
                    except OSError:
                        self.metrics.inc("service.sessions.dropped")
                    finally:
                        # the makefile wrappers keep the socket fd alive
                        # past ``conn.close()``; close them so the client
                        # sees EOF once its session is answered
                        for stream in (wfile, rfile):
                            try:
                                stream.close()
                            except OSError:
                                pass
        finally:
            listener.close()
            try:
                os.unlink(path)
            except OSError:
                pass
        return self.summary()

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        counters = self.metrics.counters
        out = {
            "requests": counters.get("service.requests", 0),
            "batches": counters.get("service.batches", 0),
            "statuses": {name.rsplit(".", 1)[1]: count
                         for name, count in sorted(counters.items())
                         if name.startswith("service.status.")},
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
            "elapsed_s": time.perf_counter() - self._started,
        }
        stats = self.supervisor_stats()
        if stats is not None:
            out["supervisor"] = stats
        if self._journal is not None:
            out["journal_records"] = self._journal.records
        if self._admission is not None:
            out["sheds"] = self._admission.sheds
        return out

    def scorecard(self) -> str:
        return format_scorecard(self.metrics, self.cache, self.config,
                                elapsed_s=time.perf_counter() - self._started,
                                supervisor=self.supervisor_stats())
