"""Content-addressed artifact cache: compile once, serve forever.

A compile's output is a pure function of ``(source text, machine, level,
pipeline configuration)``, so the service keys artifacts by the SHA-256
of exactly that tuple.  :func:`config_fingerprint` folds **every**
:class:`~repro.xform.pipeline.PipelineConfig` field that can change what
the pipeline emits into the key -- new fields join the fingerprint
automatically, so a config knob can never silently alias two different
outputs (the cache-key soundness property in
``tests/service/test_cache_properties.py``).  Only the observability
sinks (``trace``/``metrics``) are excluded: tracing on is proven
byte-identical to tracing off.

An :class:`Artifact` is everything a response needs -- per-function
assembly, the decision trace (timer-free JSONL lines), the deterministic
metrics counters, and the resilience rung.  Only full-quality (``ok``)
compiles are cached; degraded results are timing-dependent and must be
re-earned.

The store is a two-tier affair: an in-memory LRU (dict ordered by
recency) in front of an optional on-disk directory (one JSON file per
key, written atomically), so warm artifacts survive daemon restarts.
Hits and misses are counted locally and surfaced through the
:class:`~repro.obs.metrics.MetricsCollector` as ``service.cache.hit`` /
``service.cache.miss``.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field, fields as dataclass_fields
from dataclasses import is_dataclass

from ..obs.metrics import NULL_METRICS
from ..xform.pipeline import PipelineConfig

#: PipelineConfig fields that cannot change what the pipeline emits
#: (observability is noninterfering by construction -- see
#: ``tests/obs/``'s tracing-noninterference property tests)
NON_OUTPUT_FIELDS = frozenset({"trace", "metrics"})


def _encode(value):
    """A deterministic, JSON-able projection of one config value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _encode(getattr(value, f.name))
                for f in dataclass_fields(value)}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in sorted(value.items())}
    if isinstance(value, (set, frozenset)):
        return sorted(_encode(v) for v in value)
    return repr(value)


def config_fingerprint(config: PipelineConfig) -> dict:
    """Every output-affecting PipelineConfig field, deterministically
    encoded.  Fields added to the config in the future are included by
    construction."""
    return {f.name: _encode(getattr(config, f.name))
            for f in dataclass_fields(PipelineConfig)
            if f.name not in NON_OUTPUT_FIELDS}


def cache_key(source: str, machine_name: str,
              config: PipelineConfig) -> str:
    """SHA-256 content address of one compile request."""
    doc = {
        "source": source,
        "machine": machine_name,
        "config": config_fingerprint(config),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class Artifact:
    """One cached compile: everything a service response is made of."""

    #: function name -> Figure-2-style assembly listing
    assembly: dict[str, str] = field(default_factory=dict)
    #: decision trace, one compact-JSON line per event (timer fields
    #: stripped so an artifact is byte-stable across recompiles)
    trace: list[str] = field(default_factory=list)
    #: deterministic metrics counters (no timers, no series)
    counters: dict[str, int] = field(default_factory=dict)
    #: worst degradation-ladder rung across the unit's functions
    rung: str = "speculative"

    def to_json(self) -> dict:
        return {"assembly": self.assembly, "trace": self.trace,
                "counters": self.counters, "rung": self.rung}

    @classmethod
    def from_json(cls, doc: dict) -> "Artifact":
        return cls(assembly=dict(doc["assembly"]), trace=list(doc["trace"]),
                   counters=dict(doc["counters"]), rung=doc["rung"])


class ArtifactCache:
    """In-memory LRU over an optional on-disk store, hit/miss counted."""

    def __init__(self, max_entries: int = 256, *,
                 disk_dir: str | None = None, metrics=None):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive integer, got {max_entries}")
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._entries: OrderedDict[str, Artifact] = OrderedDict()
        self.hits = 0
        self.misses = 0
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.json")

    def get(self, key: str) -> Artifact | None:
        artifact = self._entries.get(key)
        if artifact is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._metrics.inc("service.cache.hit")
            return artifact
        if self.disk_dir is not None:
            try:
                with open(self._disk_path(key), encoding="utf-8") as fh:
                    artifact = Artifact.from_json(json.load(fh))
            except (OSError, ValueError, KeyError):
                artifact = None  # absent or corrupt: treat as a miss
            if artifact is not None:
                self._remember(key, artifact)  # promote to memory
                self.hits += 1
                self._metrics.inc("service.cache.hit")
                return artifact
        self.misses += 1
        self._metrics.inc("service.cache.miss")
        return None

    def put(self, key: str, artifact: Artifact) -> None:
        self._remember(key, artifact)
        if self.disk_dir is not None:
            # atomic: a crash mid-write never corrupts the store
            path = self._disk_path(key)
            tmp = f"{path}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(artifact.to_json(), fh)
            os.replace(tmp, path)

    def _remember(self, key: str, artifact: Artifact) -> None:
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
