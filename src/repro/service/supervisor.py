"""Worker supervision: keep the pool serving through crashes and hangs.

A :class:`~repro.service.jobs.JobPool` is only as reliable as its worker
processes: ``multiprocessing`` transparently replaces a worker that
*dies*, but the job it was running vanishes -- ``drain()`` then waits
forever on a result that will never arrive -- and a worker that *hangs*
past the in-worker SIGALRM watchdog (or on a pool with no deadline at
all) wedges the whole service.  :class:`SupervisedPool` closes both
holes with the crash-only move: it mirrors the pool's submit/drain API,
tracks every in-flight job, and when its health check sees a lost or
overdue worker it **rebuilds the pool in place** -- already-completed
results are harvested, hung jobs are parked as typed ``quarantined``
results, and everything else is resubmitted.  Because a job's result is
a pure function of its payload (the PR-6 determinism contract), a
resubmitted job returns byte-identical output, so supervision never
changes what a batch answers -- only whether it answers at all.

After :attr:`SupervisorConfig.max_rebuilds` rebuilds inside a sliding
window the pool is declared unsalvageable and the **circuit breaker**
trips: the worker processes are abandoned and every remaining and future
job runs inline in the daemon process -- the service-level analogue of
the degradation ladder's ``identity`` rung (slower, but it cannot lose
work to a worker it no longer has).  Every action is emitted as a typed
:class:`~repro.obs.events.SupervisorEvent` through the tracer and
counted in metrics, and the live scorecard shows the breaker state.

With ``jobs == 1`` the underlying pool is inline already, so supervision
is a pass-through -- the inert path the service bench gates below 2%.
"""

from __future__ import annotations

import queue
import time
from collections import deque
from dataclasses import dataclass

from ..obs.events import SupervisorEvent
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from .jobs import QUARANTINED, JobPool, JobResult, JobSpec


@dataclass
class SupervisorConfig:
    """Knobs of the pool supervisor (all inert until a fault happens)."""

    #: seconds between health checks while waiting on results
    poll_interval_s: float = 0.05
    #: a job in flight longer than this is declared hung and its pool
    #: rebuilt (None = rely on the in-worker watchdog alone)
    hang_timeout_s: float | None = None
    #: rebuilds inside :attr:`rebuild_window_s` before the breaker trips
    max_rebuilds: int = 3
    #: sliding window for the rebuild counter, seconds
    rebuild_window_s: float = 60.0


class SupervisedPool:
    """A :class:`JobPool` facade that survives its own workers.

    Exposes the submit/drain shape the daemon uses; ``jobs == 1`` (or a
    tripped breaker) degenerates to inline execution.  Not thread-safe:
    one serving thread submits and drains, like the pool it wraps.
    """

    def __init__(self, handler, *, jobs: int = 1, queue_size: int = 64,
                 timeout_s: float | None = None, typed_errors: tuple = (),
                 metrics=None, tracer=None,
                 supervisor: SupervisorConfig | None = None):
        self.jobs = jobs
        self.config = supervisor or SupervisorConfig()
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._pool_kwargs = dict(jobs=jobs, queue_size=queue_size,
                                 timeout_s=timeout_s,
                                 typed_errors=typed_errors, metrics=metrics)
        self._inner = JobPool(handler, **self._pool_kwargs)
        self._handler = handler
        #: job id -> (spec, dispatch time) for every job not yet settled
        self._inflight: dict = {}
        #: results harvested out-of-band (rebuilds, breaker, inline runs)
        self._ready: list[JobResult] = []
        self._known_pids = set(self._inner.worker_pids())
        self._rebuild_times: deque[float] = deque()
        self.rebuilds = 0
        self.workers_lost = 0
        self.hangs = 0
        self.breaker_open = False
        self._closed = False

    # -- the pool API --------------------------------------------------------

    @property
    def supervised(self) -> bool:
        """Supervision only has work to do on a live multi-process pool."""
        return self.jobs > 1 and not self.breaker_open

    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes (the chaos harness's
        target list; [] in inline/breaker mode)."""
        return self._inner.worker_pids()

    def submit(self, spec: JobSpec) -> None:
        """Accept one job (blocking at the queue bound, like the pool)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if self.breaker_open:
            # inline mode: run now, under the same watchdog/retry ladder
            self._ready.append(self._inner.run_inline(spec))
            return
        if self.jobs > 1:
            self._inflight[spec.id] = (spec, time.monotonic())
        self._inner.submit(spec)

    def drain(self) -> list[JobResult]:
        """Wait for every accepted job; results sorted by id.  Unlike the
        raw pool, this cannot wait forever: lost and hung workers are
        detected and healed along the way."""
        out = list(self._ready)
        self._ready.clear()
        if not self.supervised:
            out.extend(self._inner.drain())
        else:
            while self._inflight:
                if self._ready:
                    out.extend(self._ready)
                    self._ready.clear()
                    continue
                try:
                    result = self._inner.next_result(
                        timeout=self.config.poll_interval_s)
                except queue.Empty:
                    self._health_check()
                    continue
                self._inflight.pop(result.id, None)
                out.append(result)
            # infrastructure results synthesized with id None, plus any
            # late harvest from a rebuild that settled the last job
            out.extend(self._ready)
            self._ready.clear()
        out.sort(key=lambda r: (r.id is None, r.id))
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._inner.close()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- supervision ---------------------------------------------------------

    def stats(self) -> dict:
        return {"rebuilds": self.rebuilds,
                "workers_lost": self.workers_lost,
                "hangs": self.hangs,
                "breaker_open": self.breaker_open}

    def _emit(self, action: str, detail: str) -> None:
        self._metrics.inc(f"service.supervisor.{action.replace('-', '_')}")
        if self._tracer.enabled:
            self._tracer.emit(SupervisorEvent(
                action=action, rebuilds=self.rebuilds,
                inflight=len(self._inflight), detail=detail))

    def _health_check(self) -> None:
        """One supervision beat: compare worker PIDs against the last
        snapshot (multiprocessing silently replaces dead processes, so a
        *changed* set means a worker died since we last looked) and age
        every in-flight job against the hang deadline."""
        pids = set(self._inner.worker_pids())
        lost = len(self._known_pids - pids) + self._inner.dead_workers()
        hung = []
        if self.config.hang_timeout_s is not None:
            now = time.monotonic()
            hung = [job_id for job_id, (_spec, started)
                    in self._inflight.items()
                    if now - started > self.config.hang_timeout_s]
        if lost:
            self.workers_lost += lost
            self._emit("worker-lost",
                       f"{lost} worker process(es) died with "
                       f"{len(self._inflight)} job(s) in flight")
        for job_id in hung:
            self.hangs += 1
            self._emit("worker-hung",
                       f"job {job_id} exceeded the "
                       f"{self.config.hang_timeout_s:.1f}s hang deadline")
        if lost or hung:
            self._rebuild(hung)

    def _rebuild(self, hung_ids) -> None:
        """Replace the pool: harvest finished results, quarantine hung
        jobs, kill the old workers, resubmit the remainder -- or trip the
        breaker and finish inline."""
        self.rebuilds += 1
        now = time.monotonic()
        self._rebuild_times.append(now)
        window = self.config.rebuild_window_s
        while self._rebuild_times and self._rebuild_times[0] < now - window:
            self._rebuild_times.popleft()

        # results that made it back before the fault are kept as-is
        try:
            while True:
                result = self._inner.next_result(timeout=0)
                self._inflight.pop(result.id, None)
                self._ready.append(result)
        except (queue.Empty, RuntimeError):
            pass
        # a job past the hang deadline is parked, not retried: resending
        # a known-wedging payload would just wedge the next pool too
        for job_id in hung_ids:
            entry = self._inflight.pop(job_id, None)
            if entry is None:
                continue
            self._ready.append(JobResult(
                job_id, QUARANTINED, reason="hang",
                detail=f"supervisor: job {job_id} still running after "
                       f"{self.config.hang_timeout_s:.1f}s; worker killed",
                attempts=1))
        self._inner.close(kill=True)

        survivors = [spec for spec, _started in self._inflight.values()]
        if len(self._rebuild_times) >= self.config.max_rebuilds:
            self.breaker_open = True
            self._emit("breaker-tripped",
                       f"{len(self._rebuild_times)} rebuilds inside "
                       f"{window:.0f}s; finishing "
                       f"{len(survivors)} job(s) inline")
            self._inner = JobPool(self._handler,
                                  **{**self._pool_kwargs, "jobs": 1})
            self._known_pids = set()
            for spec in survivors:
                self._ready.append(self._inner.run_inline(spec))
            self._inflight.clear()
            return
        self._inner = JobPool(self._handler, **self._pool_kwargs)
        self._known_pids = set(self._inner.worker_pids())
        self._emit("pool-rebuilt",
                   f"fresh pool of {self.jobs}; "
                   f"{len(survivors)} job(s) resubmitted")
        now = time.monotonic()
        for spec in survivors:
            self._inflight[spec.id] = (spec, now)
            self._inner.submit(spec)
