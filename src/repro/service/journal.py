"""Write-ahead journal: the daemon's crash-recovery memory.

``repro serve --journal PATH`` records every accepted request *before*
it is served and every completion *after* its response has been written,
as one JSON object per line:

* ``{"j": "req",  "seq": N, "line": <raw request line>}``
* ``{"j": "done", "seq": N, "id": ..., "status": ...,
     "key": <cache key>|null, "artifact": {...}|null}``

The ``done`` record carries the full artifact for ``ok`` compiles, so a
replay can seed the content-addressed cache and serve the recorded
bytes instead of guessing.  On restart, ``--resume-journal`` loads the
journal, truncates a torn final line (the one record a ``kill -9``
mid-write can leave half-flushed), seeds the cache from the recorded
artifacts, and replays every request with no ``done`` record through
the normal batch path.  Because a compile is a pure function of its
payload and replayed requests ride the same cache-key dedupe, the
response set after crash + resume is byte-identical to an uninterrupted
run -- the property ``tests/service/test_journal.py`` checks for every
pool width.

Torn tails are tolerated by construction: the loader remembers the byte
offset of the last record that parsed cleanly and the daemon truncates
the file there before appending again, so a torn line can never
concatenate with a new record.  Corruption anywhere *before* the final
line is a different animal -- the journal is append-only, so a bad
middle means the file is not our journal -- and raises a typed
:class:`JournalError` instead of silently dropping work.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field


class JournalError(Exception):
    """The journal file is corrupt beyond a torn final line."""


#: top-level keys of each record kind, for structural validation
_REQ_KEYS = {"j", "seq", "line"}
_DONE_KEYS = {"j", "seq", "id", "status", "key", "artifact"}


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovers from a journal file."""

    #: seq -> raw request line, for every recorded request
    requests: dict[int, str] = field(default_factory=dict)
    #: seqs with a completion record
    done: set[int] = field(default_factory=set)
    #: (cache key, artifact doc) pairs recorded with ``ok`` completions,
    #: in journal order -- replays seed the cache from these
    artifacts: list[tuple[str, dict]] = field(default_factory=list)
    #: highest seq seen (the resumed daemon numbers onward from here)
    max_seq: int = -1
    #: byte offset just past the last cleanly-parsed record
    clean_bytes: int = 0
    #: True when a torn (truncated) final line was discarded
    torn_tail: bool = False

    def incomplete(self) -> list[tuple[int, str]]:
        """Requests accepted but never answered, in accept order."""
        return sorted((seq, line) for seq, line in self.requests.items()
                      if seq not in self.done)


def _parse_record(doc: dict, lineno: int) -> None:
    kind = doc.get("j")
    if kind == "req":
        missing = _REQ_KEYS - doc.keys()
    elif kind == "done":
        missing = _DONE_KEYS - doc.keys()
    else:
        raise JournalError(
            f"journal line {lineno}: unknown record kind {kind!r}")
    if missing:
        raise JournalError(
            f"journal line {lineno}: {kind!r} record is missing "
            f"{sorted(missing)}")
    if not isinstance(doc["seq"], int):
        raise JournalError(f"journal line {lineno}: 'seq' must be an int")


def load_journal(path: str) -> JournalState:
    """Read a journal back, tolerating exactly one torn final line.

    A record that fails to parse is fatal (:class:`JournalError`) unless
    it is the *last* line of the file, in which case it is the half
    flushed victim of the crash: it is discarded, ``torn_tail`` is set,
    and ``clean_bytes`` points at where appending may safely resume.
    """
    state = JournalState()
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    offset = 0
    lines = raw.split(b"\n")
    for lineno, blob in enumerate(lines, start=1):
        is_last = lineno == len(lines)
        if not blob.strip():
            if not is_last:
                offset += len(blob) + 1
            continue
        try:
            doc = json.loads(blob.decode("utf-8"))
            if not isinstance(doc, dict):
                raise JournalError(
                    f"journal line {lineno}: record must be a JSON object")
            _parse_record(doc, lineno)
        except (ValueError, UnicodeDecodeError) as exc:
            # the final line has no trailing newline iff it was torn
            # mid-write; anything earlier is real corruption
            if is_last:
                state.torn_tail = True
                break
            raise JournalError(
                f"journal line {lineno}: not a valid record: {exc}") from exc
        if doc["j"] == "req":
            state.requests[doc["seq"]] = doc["line"]
        else:
            state.done.add(doc["seq"])
            if doc["status"] == "ok" and doc["key"] and doc["artifact"]:
                state.artifacts.append((doc["key"], doc["artifact"]))
        state.max_seq = max(state.max_seq, doc["seq"])
        offset += len(blob) + (0 if is_last else 1)
    state.clean_bytes = offset
    return state


class Journal:
    """Append-only writer half of the WAL.

    Opened fresh (truncate) or resumed (truncate to ``clean_bytes`` of a
    loaded state, then append).  Every record is flushed to the OS
    before the call returns, so a ``kill -9`` can cost at most the one
    record being written -- the torn tail the loader forgives.
    """

    def __init__(self, path: str, *, resume_from: JournalState | None = None):
        self.path = path
        if resume_from is not None and os.path.exists(path):
            # chop the torn tail so new records never concatenate with it
            with open(path, "r+b") as fh:
                fh.truncate(resume_from.clean_bytes)
            self._fh = open(path, "a", encoding="utf-8")
        else:
            self._fh = open(path, "w", encoding="utf-8")
        self.records = 0

    def _write(self, doc: dict) -> None:
        self._fh.write(json.dumps(doc, separators=(",", ":")))
        self._fh.write("\n")
        self._fh.flush()
        self.records += 1

    def record_request(self, seq: int, line: str) -> None:
        self._write({"j": "req", "seq": seq, "line": line.rstrip("\n")})

    def record_done(self, seq: int, response_id, status: str,
                    key: str | None = None,
                    artifact: dict | None = None) -> None:
        self._write({"j": "done", "seq": seq, "id": response_id,
                     "status": status, "key": key, "artifact": artifact})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
