"""The compile handler :class:`~repro.service.jobs.JobPool` workers run.

One module-level function (:func:`compile_request`) so the pool can
pickle it by reference; it turns a validated request payload into an
:class:`~repro.service.cache.Artifact` dict.  Front-end errors
(:class:`~repro.lang.CParseError`, :class:`~repro.lang.LowerError`) are
the pool's *typed errors* -- reported once, never retried, never
quarantined -- while anything else (a genuine compiler bug, a hang) goes
through the retry-then-quarantine ladder.
"""

from __future__ import annotations

import dataclasses
import json
import time

from ..compiler import compile_c
from ..lang import CParseError, LowerError
from ..machine.configs import CONFIGS
from ..obs.metrics import MetricsCollector
from ..obs.tracer import CollectingTracer
from ..resilience.ladder import ResilienceConfig, start_rung, worst_rung
from ..sched.candidates import ScheduleLevel
from ..xform.pipeline import PipelineConfig

#: exception types the job layer treats as expected, typed errors
TYPED_ERRORS = (CParseError, LowerError)

#: trace-event fields carrying wall-clock time -- stripped so an
#: artifact (and therefore a cache hit) is byte-stable across recompiles
_TIMER_KEYS = ("elapsed_ms",)

_LEVELS = {level.value: level for level in ScheduleLevel}


def build_config(level_name: str, overrides: dict | None,
                 resilient: bool) -> PipelineConfig:
    """The PipelineConfig a request describes (overrides are scalar
    PipelineConfig fields, already validated by the daemon)."""
    config = PipelineConfig(level=_LEVELS[level_name])
    if overrides:
        config = dataclasses.replace(config, **overrides)
    if resilient:
        config = dataclasses.replace(config,
                                     resilience=ResilienceConfig())
    return config


def _trace_lines(events) -> list[str]:
    lines = []
    for event in events:
        doc = event.to_dict()
        for key in _TIMER_KEYS:
            doc.pop(key, None)
        lines.append(json.dumps(doc, separators=(",", ":")))
    return lines


def compile_request(payload: dict) -> dict:
    """Compile one request; returns an Artifact JSON doc.

    Deterministic in the payload: assembly, trace and counters carry no
    wall-clock state, so two compiles of one payload are byte-identical
    -- the invariant both the cache and the jobs-1-vs-N determinism
    guarantee rest on.
    """
    hang_s = payload.get("chaos_hang_s")
    if hang_s:
        # chaos hook (daemon --chaos only): model a wedged compile; the
        # job watchdog interrupts the sleep and quarantines the request
        time.sleep(hang_s)
    tracer = CollectingTracer()
    metrics = MetricsCollector()
    config = build_config(payload["level"], payload.get("config"),
                          payload.get("resilient", False))
    config = dataclasses.replace(config, trace=tracer, metrics=metrics)
    result = compile_c(payload["source"],
                       machine=CONFIGS[payload["machine"]](),
                       level=config.level, config=config)
    rungs = [getattr(unit.report, "final_rung", start_rung(config).value)
             for unit in result]
    return {
        "assembly": {unit.name: unit.assembly() for unit in result},
        "trace": _trace_lines(tracer.events),
        "counters": {name: count
                     for name, count in sorted(metrics.counters.items())},
        "rung": worst_rung(rungs),
    }
