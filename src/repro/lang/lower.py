"""Lowering mini-C to the RS/6K-flavoured IR.

Register discipline follows the paper: every scalar variable and every
temporary gets its own *symbolic* register from an unbounded pool; there is
no register allocation (Section 2).  Array parameters are base addresses in
registers; ``a[i]`` becomes shift/add/load exactly like the XL compiler's
Figure 2 code (constant indices fold into the load displacement, which is
what makes the loads of ``u`` and ``v`` disambiguate).

Loop shape matches Figure 2: a ``while`` is lowered with a guard test
before the loop and the real test at the *bottom* (``BT`` back to the
header), so the generated code for the paper's minmax program lines up
block for block with the paper's.

Function-exit liveness is precise: ``RET`` explicitly uses the returned
register, so nothing else is live at exit -- the scheduler gets maximum
speculative freedom, as the real compiler (which knows its ABI) would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.builder import Builder
from ..ir.function import Function
from ..ir.operand import CR_EQ, CR_GT, CR_LT, Reg
from ..ir.verify import verify_function
from ..xform.simplify import simplify_cfg
from . import cast as C
from .parser import parse_c


class LowerError(ValueError):
    pass


@dataclass
class CompiledFunction:
    """A lowered function plus its interface metadata."""

    name: str
    func: Function
    params: tuple[C.Param, ...]
    #: parameter name -> register holding its value / base address
    param_regs: dict[str, Reg]
    returns_value: bool
    #: registers observed by the caller after return (precise: empty --
    #: RET carries its value as an explicit use)
    live_at_exit: frozenset[Reg] = frozenset()


#: comparison -> (CR bit, bit value when the comparison is true)
_COMPARE_BITS = {
    "<": (CR_LT, True),
    ">": (CR_GT, True),
    "==": (CR_EQ, True),
    "!=": (CR_EQ, False),
    "<=": (CR_GT, False),
    ">=": (CR_LT, False),
}

_COMPARISONS = frozenset(_COMPARE_BITS)


def _expr_has_call(expr: C.Expr) -> bool:
    if isinstance(expr, C.Call):
        return True
    if isinstance(expr, C.Unary):
        return _expr_has_call(expr.operand)
    if isinstance(expr, (C.Binary, C.Logical)):
        return _expr_has_call(expr.left) or _expr_has_call(expr.right)
    if isinstance(expr, C.ArrayRef):
        return _expr_has_call(expr.index)
    return False


def _power_of_two(value: int) -> int | None:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


class _FunctionLowerer:
    def __init__(self, fdef: C.FuncDef):
        self.fdef = fdef
        self.func = Function(fdef.name)
        self.b = Builder(self.func)
        self.env: dict[str, Reg] = {}
        self.arrays: set[str] = set()
        #: (continue target, break target) stack
        self.loops: list[tuple[str, str]] = []
        #: has the current block been closed by a branch/return?
        self.closed = False

    # -- block plumbing ---------------------------------------------------

    def start(self, label: str) -> None:
        self.b.start_block(label)
        self.closed = False

    def goto(self, label: str) -> None:
        if not self.closed:
            self.b.b(label)
            self.closed = True

    def fresh(self, prefix: str = "L") -> str:
        return self.func.fresh_label(prefix)

    # -- top level -----------------------------------------------------------

    def lower(self) -> CompiledFunction:
        param_regs: dict[str, Reg] = {}
        for param in self.fdef.params:
            reg = self.func.new_gpr()
            param_regs[param.name] = reg
            self.env[param.name] = reg
            if param.is_array:
                self.arrays.add(param.name)
        self.start(self.fresh("entry"))
        self.lower_block(self.fdef.body)
        if not self.closed:
            self.b.ret()
            self.closed = True
        verify_function(self.func)
        # The XL BASE compiler runs "all the possible machine independent
        # and peephole optimizations"; normalise the structured-lowering
        # CFG (empty joins, jumps to jumps) so the minmax loop comes out
        # shaped like Figure 2.
        simplify_cfg(self.func)
        verify_function(self.func)
        return CompiledFunction(
            name=self.fdef.name,
            func=self.func,
            params=self.fdef.params,
            param_regs=param_regs,
            returns_value=self.fdef.returns_value,
        )

    # -- statements --------------------------------------------------------------

    def lower_block(self, block: C.Block) -> None:
        for stmt in block.statements:
            if self.closed:
                return  # unreachable code after return/break/continue
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: C.Stmt) -> None:
        if isinstance(stmt, C.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, C.Decl):
            if stmt.name in self.env:
                raise LowerError(f"redeclaration of {stmt.name!r}")
            reg = self.func.new_gpr()
            self.env[stmt.name] = reg
            if stmt.init is not None:
                self.eval_into(reg, stmt.init)
        elif isinstance(stmt, C.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, C.ExprStmt):
            if isinstance(stmt.expr, C.Call):
                args = tuple(self.eval(a) for a in stmt.expr.args)
                self.b.call(stmt.expr.callee, args, rets=())
            else:
                self.eval(stmt.expr)  # for side-effect-free exprs: dead code
        elif isinstance(stmt, C.If):
            self.lower_if(stmt)
        elif isinstance(stmt, C.While):
            self.lower_while(stmt)
        elif isinstance(stmt, C.For):
            self.lower_for(stmt)
        elif isinstance(stmt, C.Return):
            if stmt.value is not None:
                self.b.ret(self.eval(stmt.value))
            else:
                self.b.ret()
            self.closed = True
        elif isinstance(stmt, C.Break):
            if not self.loops:
                raise LowerError("break outside a loop")
            self.b.b(self.loops[-1][1])
            self.closed = True
        elif isinstance(stmt, C.Continue):
            if not self.loops:
                raise LowerError("continue outside a loop")
            self.b.b(self.loops[-1][0])
            self.closed = True
        else:  # pragma: no cover - closed AST
            raise LowerError(f"cannot lower {stmt!r}")

    def lower_assign(self, stmt: C.Assign) -> None:
        target = stmt.target
        if isinstance(target, C.Var):
            self.eval_into(self.var_reg(target.name), stmt.value)
        elif isinstance(target, C.ArrayRef):
            value = self.eval(stmt.value)
            base, disp = self.array_address(target)
            self.b.store(value, base, disp, symbol=target.array)
        else:  # pragma: no cover - parser enforces lvalues
            raise LowerError(f"bad assignment target {target!r}")

    def lower_if(self, stmt: C.If) -> None:
        then_label = self.fresh()
        join_label = self.fresh()
        else_label = self.fresh() if stmt.orelse is not None else join_label
        self.lower_cond(stmt.cond, then_label, else_label, next_label=then_label)
        self.start(then_label)
        self.lower_block(stmt.then)
        if stmt.orelse is not None:
            self.goto(join_label)
            self.start(else_label)
            self.lower_block(stmt.orelse)
        self.goto(join_label)
        self.start(join_label)

    def lower_while(self, stmt: C.While) -> None:
        if _expr_has_call(stmt.cond):
            # Calls may not be duplicated: use the top-test shape.
            head = self.fresh("LH")
            body = self.fresh("LB")
            exit_label = self.fresh("LX")
            self.goto(head)
            self.start(head)
            self.lower_cond(stmt.cond, body, exit_label, next_label=body)
            self.start(body)
            self.loops.append((head, exit_label))
            self.lower_block(stmt.body)
            self.loops.pop()
            self.goto(head)
            self.start(exit_label)
            return
        # Figure 2 shape: guard test before the loop, real test at the
        # bottom branching back to the header.
        header = self.fresh("LH")
        latch = self.fresh("LT")
        exit_label = self.fresh("LX")
        self.lower_cond(stmt.cond, header, exit_label, next_label=header)
        self.start(header)
        self.loops.append((latch, exit_label))
        self.lower_block(stmt.body)
        self.loops.pop()
        self.goto(latch)
        self.start(latch)
        self.lower_cond(stmt.cond, header, exit_label, next_label=exit_label)
        self.start(exit_label)

    def lower_for(self, stmt: C.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond = stmt.cond if stmt.cond is not None else C.Num(1)
        body_and_step = list(stmt.body.statements)
        # continue in a for loop must run the step: give the step its own
        # label inside the bottom-tested while shape
        header = self.fresh("LH")
        step_label = self.fresh("LS")
        exit_label = self.fresh("LX")
        if _expr_has_call(cond):
            head = self.fresh("LH")
            self.goto(head)
            self.start(head)
            self.lower_cond(cond, header, exit_label, next_label=header)
            self.start(header)
            self.loops.append((step_label, exit_label))
            self.lower_block(C.Block(tuple(body_and_step)))
            self.loops.pop()
            self.goto(step_label)
            self.start(step_label)
            if stmt.step is not None:
                self.lower_stmt(stmt.step)
            self.goto(head)
            self.start(exit_label)
            return
        self.lower_cond(cond, header, exit_label, next_label=header)
        self.start(header)
        self.loops.append((step_label, exit_label))
        self.lower_block(C.Block(tuple(body_and_step)))
        self.loops.pop()
        self.goto(step_label)
        self.start(step_label)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.lower_cond(cond, header, exit_label, next_label=exit_label)
        self.start(exit_label)

    # -- conditions --------------------------------------------------------------------

    def lower_cond(self, expr: C.Expr, true_label: str, false_label: str,
                   *, next_label: str) -> None:
        """Emit branching code for ``expr``; control reaches ``true_label``
        iff the condition holds.  ``next_label`` (one of the two) is the
        block the caller will start immediately after, reached by fall
        through."""
        if isinstance(expr, C.Unary) and expr.op == "!":
            self.lower_cond(expr.operand, false_label, true_label,
                            next_label=next_label)
            return
        if isinstance(expr, C.Logical):
            rhs_label = self.fresh()
            if expr.op == "&&":
                self.lower_cond(expr.left, rhs_label, false_label,
                                next_label=rhs_label)
            else:
                self.lower_cond(expr.left, true_label, rhs_label,
                                next_label=rhs_label)
            self.start(rhs_label)
            self.lower_cond(expr.right, true_label, false_label,
                            next_label=next_label)
            return
        if isinstance(expr, C.Binary) and expr.op in _COMPARISONS:
            crd = self.func.new_cr()
            left = self.eval(expr.left)
            if isinstance(expr.right, C.Num):
                self.b.cmpi(crd, left, expr.right.value)
            else:
                self.b.cmp(crd, left, self.eval(expr.right))
            bit, sense_true = _COMPARE_BITS[expr.op]
            self._emit_cond_branch(crd, bit, sense_true, true_label,
                                   false_label, next_label)
            return
        if isinstance(expr, C.Num):
            target = true_label if expr.value else false_label
            if target == next_label:
                self.closed = False  # plain fall-through
            else:
                self.b.b(target)
                self.closed = True
            return
        # generic truthiness: expr != 0
        reg = self.eval(expr)
        crd = self.func.new_cr()
        self.b.cmpi(crd, reg, 0)
        self._emit_cond_branch(crd, CR_EQ, False, true_label, false_label,
                               next_label)

    def _emit_cond_branch(self, crd: Reg, bit: int, sense_true: bool,
                          true_label: str, false_label: str,
                          next_label: str) -> None:
        """One BT/BF so that the *other* label is the fall-through."""
        if next_label == true_label:
            # branch away to false_label when the condition fails
            if sense_true:
                self.b.bf(false_label, crd, bit)
            else:
                self.b.bt(false_label, crd, bit)
        else:
            if sense_true:
                self.b.bt(true_label, crd, bit)
            else:
                self.b.bf(true_label, crd, bit)
        self.closed = True

    # -- expressions ----------------------------------------------------------------------

    def var_reg(self, name: str) -> Reg:
        reg = self.env.get(name)
        if reg is None:
            raise LowerError(f"use of undeclared variable {name!r}")
        if name in self.arrays:
            raise LowerError(f"array {name!r} used as a scalar")
        return reg

    def array_address(self, ref: C.ArrayRef) -> tuple[Reg, int]:
        """(base register, displacement) addressing ``ref``."""
        base = self.env.get(ref.array)
        if base is None:
            raise LowerError(f"use of undeclared array {ref.array!r}")
        if ref.array not in self.arrays:
            raise LowerError(f"scalar {ref.array!r} indexed as an array")
        if isinstance(ref.index, C.Num):
            return base, 4 * ref.index.value
        index = self.eval(ref.index)
        scaled = self.func.new_gpr()
        self.b.sl(scaled, index, 2)
        addr = self.func.new_gpr()
        self.b.add(addr, base, scaled)
        return addr, 0

    def eval(self, expr: C.Expr) -> Reg:
        """Evaluate ``expr`` into a register (fresh unless it is a Var)."""
        if isinstance(expr, C.Var):
            return self.var_reg(expr.name)
        dest = self.func.new_gpr()
        self.eval_into(dest, expr)
        return dest

    def eval_into(self, dest: Reg, expr: C.Expr) -> None:
        b = self.b
        if isinstance(expr, C.Num):
            b.li(dest, expr.value)
        elif isinstance(expr, C.Var):
            b.lr(dest, self.var_reg(expr.name))
        elif isinstance(expr, C.ArrayRef):
            base, disp = self.array_address(expr)
            b.load(dest, base, disp, symbol=expr.array)
        elif isinstance(expr, C.Unary):
            if expr.op == "-":
                b.neg(dest, self.eval(expr.operand))
            elif expr.op == "~":
                b.not_(dest, self.eval(expr.operand))
            elif expr.op == "!":
                self._materialize_bool(dest, expr)
            else:  # pragma: no cover - closed operator set
                raise LowerError(f"bad unary {expr.op!r}")
        elif isinstance(expr, C.Binary):
            if expr.op in _COMPARISONS:
                self._materialize_bool(dest, expr)
            else:
                self._eval_arith(dest, expr)
        elif isinstance(expr, C.Logical):
            self._materialize_bool(dest, expr)
        elif isinstance(expr, C.Call):
            args = tuple(self.eval(a) for a in expr.args)
            b.call(expr.callee, args, rets=(dest,))
        else:  # pragma: no cover - closed AST
            raise LowerError(f"cannot evaluate {expr!r}")

    _IMM_OPS = {"+", "-", "&", "|", "^", "<<", ">>"}

    def _eval_arith(self, dest: Reg, expr: C.Binary) -> None:
        b = self.b
        op, left, right = expr.op, expr.left, expr.right
        # fold literal operands into immediate forms
        if isinstance(left, C.Num) and op in ("+", "*", "&", "|", "^"):
            left, right = right, left  # commutative: literal on the right
        if isinstance(right, C.Num) and op in self._IMM_OPS:
            value = right.value
            lreg = self.eval(left)
            emit = {"+": b.ai, "-": b.si, "&": b.andi, "|": b.ori,
                    "^": b.xori, "<<": b.sl, ">>": b.sra}[op]
            emit(dest, lreg, value)
            return
        if isinstance(right, C.Num) and op == "*":
            shift = _power_of_two(right.value)
            if shift is not None:
                b.sl(dest, self.eval(left), shift)
                return
        lreg = self.eval(left)
        rreg = self.eval(right)
        emit = {"+": b.add, "-": b.sub, "*": b.mul, "/": b.div,
                "%": b.rem, "&": b.and_, "|": b.or_, "^": b.xor}.get(op)
        if emit is None:  # pragma: no cover - closed operator set
            raise LowerError(f"bad binary operator {op!r}")
        emit(dest, lreg, rreg)

    def _materialize_bool(self, dest: Reg, expr: C.Expr) -> None:
        """``dest = expr ? 1 : 0`` via a small diamond."""
        true_label = self.fresh("BT")
        join_label = self.fresh("BJ")
        self.b.li(dest, 0)
        self.lower_cond(expr, true_label, join_label, next_label=true_label)
        self.start(true_label)
        self.b.li(dest, 1)
        self.goto(join_label)
        self.start(join_label)


def lower_function(fdef: C.FuncDef) -> CompiledFunction:
    """Lower one parsed function definition to IR."""
    return _FunctionLowerer(fdef).lower()


def lower_program(program: C.Program) -> dict[str, CompiledFunction]:
    """Lower every function of a translation unit."""
    return {f.name: lower_function(f) for f in program.functions}


def compile_c_functions(source: str) -> dict[str, CompiledFunction]:
    """Parse + lower mini-C source (no scheduling)."""
    return lower_program(parse_c(source))