"""Abstract syntax of the mini-C subset (the "C AST", hence the name)."""

from __future__ import annotations

from dataclasses import dataclass


# -- expressions -----------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Num(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    array: str
    index: Expr


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-", "~", "!"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Arithmetic, bitwise, shift and comparison operators."""

    op: str  # + - * / % & | ^ << >> == != < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Logical(Expr):
    """Short-circuit && / ||."""

    op: str  # "&&" | "||"
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    callee: str
    args: tuple[Expr, ...]


# -- statements ----------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class Decl(Stmt):
    """``int x;`` or ``int x = e;`` (scalars only)."""

    name: str
    init: Expr | None


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value`` (target is a Var or ArrayRef); compound ops are
    desugared by the parser (``x += e`` becomes ``x = x + e``)."""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: "Block"
    orelse: "Block | None"


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: "Block"


@dataclass(frozen=True)
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: "Block"


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple[Stmt, ...]


# -- top level ------------------------------------------------------------------

@dataclass(frozen=True)
class Param:
    """``int x`` (scalar) or ``int x[]`` / ``int *x`` (array base)."""

    name: str
    is_array: bool


@dataclass(frozen=True)
class FuncDef:
    name: str
    params: tuple[Param, ...]
    body: Block
    returns_value: bool  # int f() vs void f()


@dataclass(frozen=True)
class Program:
    functions: tuple[FuncDef, ...]

    def function(self, name: str) -> FuncDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")
