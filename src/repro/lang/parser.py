"""Recursive-descent parser for the mini-C subset.

Grammar (C precedence, short-circuit logicals)::

    program   := funcdef*
    funcdef   := ("int" | "void") ident "(" params? ")" block
    params    := param ("," param)*
    param     := "int" ("*" ident | ident ("[" "]")?)
    block     := "{" stmt* "}"
    stmt      := decl | if | while | for | return | break | continue
               | block | exprstmt
    decl      := "int" ident ("=" expr)? ";"
    exprstmt  := assignment-or-call ";"

Compound assignments and ``++``/``--`` are desugared here, so the lowerer
sees only plain ``Assign``.
"""

from __future__ import annotations

from . import cast as C
from .lexer import Token, tokenize


class CParseError(ValueError):
    def __init__(self, token: Token, message: str):
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


_COMPOUND = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
             "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.cur
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text if text is not None else kind
            raise CParseError(self.cur, f"expected {want!r}")
        return tok

    # -- program / functions ---------------------------------------------------

    def parse_program(self) -> C.Program:
        functions = []
        while self.cur.kind != "eof":
            functions.append(self.parse_funcdef())
        return C.Program(tuple(functions))

    def parse_funcdef(self) -> C.FuncDef:
        if self.accept("kw", "void"):
            returns_value = False
        else:
            self.expect("kw", "int")
            returns_value = True
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[C.Param] = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.parse_param())
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self.parse_block()
        return C.FuncDef(name, tuple(params), body, returns_value)

    def parse_param(self) -> C.Param:
        self.expect("kw", "int")
        if self.accept("op", "*"):
            return C.Param(self.expect("ident").text, is_array=True)
        name = self.expect("ident").text
        if self.accept("op", "["):
            self.expect("op", "]")
            return C.Param(name, is_array=True)
        return C.Param(name, is_array=False)

    # -- statements -----------------------------------------------------------------

    def parse_block(self) -> C.Block:
        self.expect("op", "{")
        statements: list[C.Stmt] = []
        while not self.accept("op", "}"):
            statements.append(self.parse_stmt())
        return C.Block(tuple(statements))

    def parse_stmt(self) -> C.Stmt:
        tok = self.cur
        if tok.kind == "op" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "kw":
            if tok.text == "int":
                return self.parse_decl()
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                self.advance()
                self.expect("op", "(")
                cond = self.parse_expr()
                self.expect("op", ")")
                return C.While(cond, self._stmt_as_block())
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "return":
                self.advance()
                value = None
                if not (self.cur.kind == "op" and self.cur.text == ";"):
                    value = self.parse_expr()
                self.expect("op", ";")
                return C.Return(value)
            if tok.text == "break":
                self.advance()
                self.expect("op", ";")
                return C.Break()
            if tok.text == "continue":
                self.advance()
                self.expect("op", ";")
                return C.Continue()
        stmt = self.parse_simple_stmt()
        self.expect("op", ";")
        return stmt

    def _stmt_as_block(self) -> C.Block:
        stmt = self.parse_stmt()
        return stmt if isinstance(stmt, C.Block) else C.Block((stmt,))

    def parse_decl(self) -> C.Decl:
        self.expect("kw", "int")
        name = self.expect("ident").text
        init = self.parse_expr() if self.accept("op", "=") else None
        self.expect("op", ";")
        return C.Decl(name, init)

    def parse_if(self) -> C.If:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self._stmt_as_block()
        orelse = None
        if self.accept("kw", "else"):
            orelse = self._stmt_as_block()
        return C.If(cond, then, orelse)

    def parse_for(self) -> C.For:
        self.expect("kw", "for")
        self.expect("op", "(")
        init = None
        if not (self.cur.kind == "op" and self.cur.text == ";"):
            if self.cur.kind == "kw" and self.cur.text == "int":
                self.advance()
                name = self.expect("ident").text
                self.expect("op", "=")
                init = C.Decl(name, self.parse_expr())
            else:
                init = self.parse_simple_stmt()
        self.expect("op", ";")
        cond = None
        if not (self.cur.kind == "op" and self.cur.text == ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step = None
        if not (self.cur.kind == "op" and self.cur.text == ")"):
            step = self.parse_simple_stmt()
        self.expect("op", ")")
        return C.For(init, cond, step, self._stmt_as_block())

    def parse_simple_stmt(self) -> C.Stmt:
        """Assignment, ++/--, or expression statement (call)."""
        expr = self.parse_expr()
        tok = self.cur
        if tok.kind == "op" and tok.text == "=":
            self.advance()
            self._check_lvalue(expr, tok)
            return C.Assign(expr, self.parse_expr())
        if tok.kind == "op" and tok.text in _COMPOUND:
            self.advance()
            self._check_lvalue(expr, tok)
            return C.Assign(expr, C.Binary(_COMPOUND[tok.text], expr,
                                           self.parse_expr()))
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            self._check_lvalue(expr, tok)
            op = "+" if tok.text == "++" else "-"
            return C.Assign(expr, C.Binary(op, expr, C.Num(1)))
        return C.ExprStmt(expr)

    @staticmethod
    def _check_lvalue(expr: C.Expr, tok: Token) -> None:
        if not isinstance(expr, (C.Var, C.ArrayRef)):
            raise CParseError(tok, "assignment target must be a variable "
                                   "or array element")

    # -- expressions (precedence climbing) --------------------------------------------

    def parse_expr(self) -> C.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, min_prec: int) -> C.Expr:
        left = self.parse_unary()
        while True:
            tok = self.cur
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            if tok.text in ("&&", "||"):
                left = C.Logical(tok.text, left, right)
            else:
                left = C.Binary(tok.text, left, right)

    def parse_unary(self) -> C.Expr:
        tok = self.cur
        if tok.kind == "op" and tok.text in ("-", "~", "!"):
            self.advance()
            return C.Unary(tok.text, self.parse_unary())
        if tok.kind == "op" and tok.text == "+":
            self.advance()
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> C.Expr:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            return C.Num(int(tok.text, 0))
        if tok.kind == "str":
            # String literals only appear as printf-style call arguments;
            # they lower to the constant 0 (an opaque handle).
            self.advance()
            return C.Num(0)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if tok.kind == "ident":
            name = self.advance().text
            if self.accept("op", "("):
                args: list[C.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                return C.Call(name, tuple(args))
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                return C.ArrayRef(name, index)
            return C.Var(name)
        raise CParseError(tok, "expected an expression")


def parse_c(source: str) -> C.Program:
    """Parse a mini-C translation unit."""
    return Parser(tokenize(source)).parse_program()
