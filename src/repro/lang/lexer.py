"""Lexer for the mini-C input language.

The subset is what the paper's running example (Figure 1) and SPEC-style
integer kernels need: ``int`` scalars and array parameters, ``if``/
``else``/``while``/``for``, the usual integer operators with C precedence,
short-circuit ``&&``/``||``, calls, and ``//`` and ``/* */`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int", "void", "if", "else", "while", "for", "return",
    "break", "continue",
}

#: multi-character operators, longest first
_MULTI = [
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
]
_SINGLE = set("+-*/%&|^~!<>=(){}[];,")


class LexError(ValueError):
    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "num" | "kw" | "op" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind},{self.text!r}@{self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i, line = 0, 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(line, "unterminated /* comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            tokens.append(Token("kw" if text in KEYWORDS else "ident",
                                text, line))
            i = j
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                j += 2 if source[j] == "\\" else 1
            if j >= n:
                raise LexError(line, "unterminated string literal")
            tokens.append(Token("str", source[i + 1:j], line))
            i = j + 1
            continue
        matched = False
        for op in _MULTI:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE:
            tokens.append(Token("op", ch, line))
            i += 1
            continue
        raise LexError(line, f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
