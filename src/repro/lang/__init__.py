"""The mini-C front end: lexer, parser, AST, lowering to IR."""

from . import cast
from .lexer import LexError, Token, tokenize
from .lower import (
    CompiledFunction,
    LowerError,
    compile_c_functions,
    lower_function,
    lower_program,
)
from .parser import CParseError, parse_c

__all__ = [
    "CParseError",
    "CompiledFunction",
    "LexError",
    "LowerError",
    "Token",
    "cast",
    "compile_c_functions",
    "lower_function",
    "lower_program",
    "parse_c",
    "tokenize",
]
