"""The evaluation harness regenerating Figures 7 and 8.

* **Figure 8** (run-time improvement, RTI): each workload is compiled at
  the paper's three levels -- BASE (``ScheduleLevel.NONE``: basic-block
  scheduling only), USEFUL, and USEFUL+SPECULATIVE -- run on identical
  inputs through the cycle simulator, and reported as the percentage
  improvement in simulated cycles over BASE.  The harness also verifies
  all three levels against the workload's Python oracle.

* **Figure 7** (compile-time overhead, CTO): wall-clock compilation time
  with the global scheduling pipeline enabled, as a percentage increase
  over the BASE compiler, measured over repeated compilations.

Absolute numbers differ from the paper's (1990 hardware, real SPEC
sources); the *shape* -- which workload class benefits from which level --
is the reproduction target and is asserted by the integration tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..compiler import compile_c
from ..machine.model import MachineModel
from ..machine.rs6k import rs6k
from ..sched.candidates import ScheduleLevel
from .programs import WORKLOADS, Workload

_LEVELS = (ScheduleLevel.NONE, ScheduleLevel.USEFUL, ScheduleLevel.SPECULATIVE)


@dataclass
class RTIRow:
    """One row of the Figure 8 table."""

    workload: str
    paper_name: str
    base_cycles: int
    useful_cycles: int
    speculative_cycles: int

    @property
    def rti_useful(self) -> float:
        """% improvement of USEFUL over BASE (positive = faster)."""
        return 100.0 * (self.base_cycles - self.useful_cycles) / self.base_cycles

    @property
    def rti_speculative(self) -> float:
        return 100.0 * (self.base_cycles
                        - self.speculative_cycles) / self.base_cycles


@dataclass
class CTORow:
    """One row of the Figure 7 table."""

    workload: str
    paper_name: str
    base_seconds: float
    scheduled_seconds: float

    @property
    def cto(self) -> float:
        """% compile-time increase of the global-scheduling pipeline."""
        if self.base_seconds == 0:
            return 0.0
        return 100.0 * (self.scheduled_seconds
                        - self.base_seconds) / self.base_seconds


def _run_at_level(workload: Workload, level: ScheduleLevel,
                  machine: MachineModel, args: tuple):
    result = compile_c(workload.source, machine=machine, level=level)
    unit = result[workload.entry]
    # deep-copy list arguments: the program may mutate its arrays
    call_args = tuple(list(a) if isinstance(a, list) else a for a in args)
    return unit.run(*call_args, call_handlers=workload.call_handlers)


def measure_rti(workload: Workload, machine: MachineModel | None = None,
                *, seed: int = 1991, verify: bool = True) -> RTIRow:
    """Measure one workload's Figure 8 row."""
    machine = machine or rs6k()
    rng = random.Random(seed)
    args = workload.make_args(rng)
    cycles: dict[ScheduleLevel, int] = {}
    outputs = []
    for level in _LEVELS:
        run = _run_at_level(workload, level, machine, args)
        cycles[level] = run.cycles
        outputs.append((run.return_value, run.arrays))
    if verify:
        ref_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        expected = workload.reference(*ref_args)
        for level, (value, _arrays) in zip(_LEVELS, outputs):
            if value != expected:
                raise AssertionError(
                    f"{workload.name}@{level.value}: returned {value}, "
                    f"oracle says {expected}"
                )
        first = outputs[0]
        for level, out in zip(_LEVELS[1:], outputs[1:]):
            if out != first:
                raise AssertionError(
                    f"{workload.name}@{level.value}: output diverged from BASE"
                )
    return RTIRow(
        workload=workload.name,
        paper_name=workload.paper_name,
        base_cycles=cycles[ScheduleLevel.NONE],
        useful_cycles=cycles[ScheduleLevel.USEFUL],
        speculative_cycles=cycles[ScheduleLevel.SPECULATIVE],
    )


def measure_cto(workload: Workload, machine: MachineModel | None = None,
                *, repeats: int = 5) -> CTORow:
    """Measure one workload's Figure 7 row (median of ``repeats``)."""
    machine = machine or rs6k()

    def time_level(level: ScheduleLevel) -> float:
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            compile_c(workload.source, machine=machine, level=level)
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]

    return CTORow(
        workload=workload.name,
        paper_name=workload.paper_name,
        base_seconds=time_level(ScheduleLevel.NONE),
        scheduled_seconds=time_level(ScheduleLevel.SPECULATIVE),
    )


def figure8_table(machine: MachineModel | None = None,
                  *, seed: int = 1991) -> list[RTIRow]:
    """All Figure 8 rows (LI, EQNTOTT, ESPRESSO, GCC stand-ins)."""
    return [measure_rti(w, machine, seed=seed) for w in WORKLOADS]


def figure7_table(machine: MachineModel | None = None,
                  *, repeats: int = 5) -> list[CTORow]:
    """All Figure 7 rows."""
    return [measure_cto(w, machine, repeats=repeats) for w in WORKLOADS]


def format_figure8(rows: list[RTIRow]) -> str:
    """Render like the paper's Figure 8 (BASE in cycles, RTI in %)."""
    lines = [
        "Figure 8. Run-time improvements for the global scheduling",
        f"{'PROGRAM':<12} {'BASE(cyc)':>10} {'USEFUL':>8} {'SPECULATIVE':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.paper_name:<12} {row.base_cycles:>10} "
            f"{row.rti_useful:>7.1f}% {row.rti_speculative:>11.1f}%"
        )
    return "\n".join(lines)


def format_figure7(rows: list[CTORow]) -> str:
    """Render like the paper's Figure 7 (BASE in seconds, CTO in %)."""
    lines = [
        "Figure 7. Compile-time overheads for the global scheduling",
        f"{'PROGRAM':<12} {'BASE(s)':>10} {'CTO':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.paper_name:<12} {row.base_seconds:>10.4f} "
            f"{row.cto:>7.0f}%"
        )
    return "\n".join(lines)
