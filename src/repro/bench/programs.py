"""Benchmark programs: the paper's running example + SPEC-like kernels.

The paper evaluates on four SPEC'89 C programs (LI, EQNTOTT, ESPRESSO,
GCC).  Those sources are unavailable here, so each is replaced by a mini-C
kernel with the same *structural* character -- the property Figure 8's
results hinge on:

* ``li_like`` (for LI, the Lisp interpreter): a bytecode dispatch loop of
  many small basic blocks ending in unpredictable branches.  The dispatch
  compares sit in nested else-blocks, i.e. one branch apart in the CSPDG,
  so 1-branch *speculative* motion (hoisting the next dispatch compare
  into the 3-cycle compare->branch delay) is where the payoff lives --
  matching the paper's "for LI, the speculative scheduling is dominant".
* ``eqntott_like`` (for EQNTOTT): the ``cmppt`` bit-vector comparison
  loop.  A tight, mostly-straight loop whose win comes from moving the
  loop-control increment/compare into the load delay slots -- *useful*
  motion between equivalent blocks, matching "for EQNTOTT most of the
  improvement comes from the useful scheduling only".
* ``espresso_like`` (for ESPRESSO): a cube-operation loop that stores
  its result every iteration.  Stores never move speculatively and pin
  the memory order, so global scheduling finds little -- matching the
  ~0% result.
* ``gcc_like`` (for GCC): a branchy traversal that calls a helper on the
  hot path.  Calls never move beyond block boundaries and conflict with
  all memory traffic, blocking motion -- matching the ~0% result.

Every entry carries a pure-Python reference implementation so the harness
can verify that all three compiler levels compute identical results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

#: Figure 1 of the paper, adapted to mini-C (results via an out array).
MINMAX_C = """
/* find the largest and the smallest number in a given array */
int minmax(int a[], int n, int out[]) {
    int min = a[0];
    int max = min;
    int i = 1;
    while (i < n) {
        int u = a[i];
        int v = a[i + 1];
        if (u > v) {
            if (u > max) max = u;
            if (v < min) min = v;
        } else {
            if (v > max) max = v;
            if (u < min) min = u;
        }
        i = i + 2;
    }
    out[0] = min;
    out[1] = max;
    return 0;
}
"""

LI_LIKE_C = """
/* LI-like: bytecode interpreter dispatch -- many small blocks,
   unpredictable branches (the Unix-type code of the introduction). */
int li_like(int code[], int n, int stack[]) {
    int pc = 0;
    int sp = 0;
    int acc = 0;
    while (pc < n) {
        int op = code[pc];
        int arg = code[pc + 1];
        if (op == 0) {
            acc = acc + arg;
        } else { if (op == 1) {
            acc = acc - arg;
        } else { if (op == 2) {
            acc = acc ^ arg;
        } else { if (op == 3) {
            if (acc < arg) acc = arg;
        } else { if (op == 4) {
            stack[sp] = acc;
            sp = sp + 1;
        } else {
            sp = sp - 1;
            acc = acc + stack[sp];
        } } } } }
        pc = pc + 2;
    }
    return acc + sp;
}
"""

EQNTOTT_LIKE_C = """
/* EQNTOTT-like: the cmppt bit-vector comparison loop. */
int eqntott_like(int a[], int b[], int n) {
    int i = 0;
    int r = 0;
    while (i < n) {
        int x = a[i];
        int y = b[i];
        if (x != y) {
            if (x < y) {
                r = r - 1;
            } else {
                r = r + 1;
            }
        }
        i = i + 1;
    }
    return r;
}
"""

ESPRESSO_LIKE_C = """
/* ESPRESSO-like: cube intersection / sharp over bit-packed rows.  Basic
   blocks are large (bit-fiddling chains), so the BASE compiler's local
   scheduler already covers the compare->branch and load delays; stores in
   the arms pin memory order.  Five-block loop body: too many blocks for
   the unroll/rotate policy, chunky enough that global motion finds
   nothing -- the paper's "for scientific programs the problem is not so
   severe, since there, basic blocks tend to be larger". */
int espresso_like(int a[], int b[], int out[], int n) {
    int i = 0;
    int count = 0;
    int weight = 0;
    while (i < n) {
        int p = a[i];
        int q = b[i];
        int x = p & q;
        int u = p | q;
        int d = p ^ q;
        int lo = x & 21845;
        int hi = (x >> 1) & 21845;
        int w = lo + hi;
        int s1 = (u << 2) ^ (d << 1);
        int s2 = (w + u) & 16383;
        int s3 = (s1 | s2) - (d & 255);
        weight = weight + (s3 & 7);
        if (x != 0) {
            int masked = u & ~d;
            int folded = (masked >> 8) ^ (masked & 255);
            out[i] = folded;
            count = count + 1;
            weight = weight + w;
        } else {
            int spread = (u << 1) | (d >> 15);
            if (spread > 1024) {
                out[i] = spread & 65535;
                weight = weight - 1;
            } else {
                out[i] = spread | 3;
                weight = weight - 2;
            }
        }
        i = i + 1;
    }
    return count + weight;
}
"""

GCC_LIKE_C = """
/* GCC-like: a pass over an IR worklist that calls helpers on every
   path -- calls never move beyond basic-block boundaries and conflict
   with all memory traffic, so they fence off nearly all global motion
   (and the loop has too many blocks for the unroll/rotate policy). */
int gcc_like(int tree[], int marks[], int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
        int v = tree[i];
        int kind = v & 3;
        int h1 = (v << 5) - v;
        int h2 = (h1 >> 3) ^ (v << 1);
        int sig = (h1 + h2) & 4095;
        acc = acc + (sig & 15);
        if (kind == 0) {
            acc = acc + classify(v);
            marks[i] = acc;
        } else { if (kind == 1) {
            acc = acc ^ classify(v + i);
            marks[i] = acc & 255;
        } else {
            int folded = classify(v - acc);
            if (folded > 64) {
                acc = acc + 1;
            } else {
                acc = acc - folded;
            }
            marks[i] = folded;
        } }
        i = i + 1;
    }
    return acc;
}
"""


def _classify(args: list[int]) -> list[int]:
    """Deterministic stand-in for gcc_like's helper call."""
    return [(args[0] * -3) & 0xFF]


# -- reference implementations -------------------------------------------------

def _ref_minmax(a: list[int], n: int, out: list[int]) -> int:
    lo = hi = a[0]
    i = 1
    while i < n:
        u, v = a[i], a[i + 1]
        if u > v:
            hi = max(hi, u)
            lo = min(lo, v)
        else:
            hi = max(hi, v)
            lo = min(lo, u)
        i += 2
    out[0], out[1] = lo, hi
    return 0


def _ref_li(code: list[int], n: int, stack: list[int]) -> int:
    pc = sp = acc = 0
    while pc < n:
        op, arg = code[pc], code[pc + 1]
        if op == 0:
            acc += arg
        elif op == 1:
            acc -= arg
        elif op == 2:
            acc ^= arg
        elif op == 3:
            acc = max(acc, arg)
        elif op == 4:
            stack[sp] = acc
            sp += 1
        else:
            sp -= 1
            acc += stack[sp]
        pc += 2
    return acc + sp


def _ref_eqntott(a: list[int], b: list[int], n: int) -> int:
    r = 0
    for i in range(n):
        if a[i] != b[i]:
            r += -1 if a[i] < b[i] else 1
    return r


def _ref_espresso(a: list[int], b: list[int], out: list[int], n: int) -> int:
    count = weight = 0
    for i in range(n):
        p, q = a[i], b[i]
        x, u, d = p & q, p | q, p ^ q
        w = (x & 21845) + ((x >> 1) & 21845)
        s1 = (u << 2) ^ (d << 1)
        s2 = (w + u) & 16383
        s3 = (s1 | s2) - (d & 255)
        weight += s3 & 7
        if x != 0:
            masked = u & ~d
            out[i] = ((masked >> 8) ^ (masked & 255))
            count += 1
            weight += w
        else:
            spread = (u << 1) | (d >> 15)
            if spread > 1024:
                out[i] = spread & 65535
                weight -= 1
            else:
                out[i] = spread | 3
                weight -= 2
    return count + weight


def _ref_gcc(tree: list[int], marks: list[int], n: int) -> int:
    acc = 0
    for i in range(n):
        v = tree[i]
        kind = v & 3
        h1 = (v << 5) - v
        h2 = (h1 >> 3) ^ (v << 1)
        sig = (h1 + h2) & 4095
        acc += sig & 15
        if kind == 0:
            acc += _classify([v])[0]
            marks[i] = acc
        elif kind == 1:
            acc ^= _classify([v + i])[0]
            marks[i] = acc & 255
        else:
            folded = _classify([v - acc])[0]
            if folded > 64:
                acc += 1
            else:
                acc -= folded
            marks[i] = folded
    return acc


# -- workload table ---------------------------------------------------------------

@dataclass
class Workload:
    """One benchmark: source, entry point, inputs, and a Python oracle."""

    name: str
    #: the SPEC program it stands in for (Figures 7 and 8 row label)
    paper_name: str
    source: str
    entry: str
    #: build the positional argument tuple for :meth:`CompiledUnit.run`
    make_args: Callable[[random.Random], tuple]
    #: Python oracle receiving *copies* of the same arguments
    reference: Callable
    call_handlers: dict[str, Callable] = field(default_factory=dict)
    description: str = ""


def _minmax_args(rng: random.Random) -> tuple:
    n = 400
    return ([rng.randrange(-1000, 1000) for _ in range(n + 1)], n - 1, [0, 0])


def _li_args(rng: random.Random) -> tuple:
    n = 300
    code: list[int] = []
    depth = 0
    for _ in range(n):
        op = rng.randrange(6)
        if op == 4:
            depth += 1
        elif op == 5 and depth == 0:
            op = rng.randrange(4)  # avoid stack underflow
        elif op == 5:
            depth -= 1
        code.extend([op, rng.randrange(-50, 50)])
    return (code, len(code), [0] * (n + 2))


def _eqntott_args(rng: random.Random) -> tuple:
    n = 400
    a = [rng.randrange(0, 1 << 16) for _ in range(n)]
    # mostly-equal vectors: differences are rare, as when sorting nearly
    # identical product terms
    b = list(a)
    for _ in range(n // 20):
        b[rng.randrange(n)] ^= 1 << rng.randrange(16)
    return (a, b, n)


def _espresso_args(rng: random.Random) -> tuple:
    n = 400
    a = [rng.randrange(0, 1 << 16) for _ in range(n)]
    b = [rng.randrange(0, 1 << 16) for _ in range(n)]
    return (a, b, [0] * n, n)


def _gcc_args(rng: random.Random) -> tuple:
    n = 300
    # mostly the common kind-0 node (the call-and-store fast path), like a
    # compiler pass where one node kind dominates the worklist
    tree = []
    for _ in range(n):
        v = rng.randrange(0, 1 << 10)
        if rng.random() < 0.8:
            v &= ~3
        tree.append(v)
    return (tree, [0] * n, n)


WORKLOADS: list[Workload] = [
    Workload(
        name="li_like", paper_name="LI", source=LI_LIKE_C, entry="li_like",
        make_args=_li_args, reference=_ref_li,
        description="bytecode dispatch: small blocks, unpredictable branches",
    ),
    Workload(
        name="eqntott_like", paper_name="EQNTOTT", source=EQNTOTT_LIKE_C,
        entry="eqntott_like", make_args=_eqntott_args,
        reference=_ref_eqntott,
        description="bit-vector comparison loop (cmppt)",
    ),
    Workload(
        name="espresso_like", paper_name="ESPRESSO",
        source=ESPRESSO_LIKE_C, entry="espresso_like",
        make_args=_espresso_args, reference=_ref_espresso,
        description="cube intersection with per-iteration stores",
    ),
    Workload(
        name="gcc_like", paper_name="GCC", source=GCC_LIKE_C,
        entry="gcc_like", make_args=_gcc_args, reference=_ref_gcc,
        call_handlers={"classify": _classify},
        description="branchy walk with helper calls (motion barriers)",
    ),
]

MINMAX_WORKLOAD = Workload(
    name="minmax", paper_name="MINMAX (Fig. 1)", source=MINMAX_C,
    entry="minmax", make_args=_minmax_args, reference=_ref_minmax,
    description="the paper's running example",
)
