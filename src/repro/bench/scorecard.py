"""The cross-model scorecard: Figure 8 swept across the machine zoo.

The paper evaluates one machine (the RS/6000).  The scorecard regenerates
a Figure-8-style matrix over *every* machine in the zoo: for each
``program x machine x level`` cell it

* compiles with the pipeline's self-checking mode on, so the PR-1 static
  verifier has accepted every emitted schedule;
* runs on fixed per-program inputs (same seed across all machines and
  levels) and checks the return value against the workload's Python
  oracle;
* recompiles on the preserved scan-driven scheduler engine and diffs the
  emitted assembly byte-for-byte against the event-driven engine;
* cross-checks the simulated cycle count against the BSP DAG cost model
  (:mod:`repro.sim.bsp`): beating the lower bound or drifting beyond the
  documented tolerance fails the cell.

A cell that trips any of those checks carries its failure strings and the
whole scorecard reports ``ok = False`` (the CLI exits 1, CI goes red).

Everything recorded is deterministic -- instruction counts, simulated
cycles, BSP bounds -- never wall-clock time, so the JSON emitted by
:meth:`Scorecard.to_json` is byte-stable across runs and machines and can
be kept as a golden file (``tests/golden/scorecard_rs6k.json``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..compiler import compile_c
from ..machine.configs import CONFIGS, ZOO
from ..sched.candidates import ScheduleLevel
from ..sched.reference import scan_scheduler
from ..sim.bsp import check_bsp
from ..verify.verifier import ScheduleVerificationError
from ..xform.pipeline import PipelineConfig
from .programs import MINMAX_WORKLOAD, WORKLOADS, Workload

_LEVELS = (ScheduleLevel.NONE, ScheduleLevel.USEFUL, ScheduleLevel.SPECULATIVE)

#: the bench programs swept by default: the four Figure 8 stand-ins plus
#: the paper's Figure 1 min/max kernel
SCORECARD_WORKLOADS: tuple[Workload, ...] = tuple(WORKLOADS) + (
    MINMAX_WORKLOAD,)


@dataclass
class ScorecardCell:
    """One ``program x machine x level`` measurement."""

    program: str
    machine: str
    level: str
    cycles: int = 0
    instructions: int = 0
    buffer_drains: int = 0
    bsp_lower_bound: int = 0
    bsp_estimate: int = 0
    #: static verifier accepted every emitted schedule
    verified: bool = False
    #: event- and scan-engine assembly is byte-identical
    engines_agree: bool = False
    #: return value matches the workload's Python oracle
    oracle_ok: bool = False
    #: cycles within [BSP lower bound, documented drift tolerance]
    bsp_ok: bool = False
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "machine": self.machine,
            "level": self.level,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "buffer_drains": self.buffer_drains,
            "bsp_lower_bound": self.bsp_lower_bound,
            "bsp_estimate": self.bsp_estimate,
            "verified": self.verified,
            "engines_agree": self.engines_agree,
            "oracle_ok": self.oracle_ok,
            "bsp_ok": self.bsp_ok,
            "failures": list(self.failures),
        }


@dataclass
class Scorecard:
    """The full matrix plus the run parameters that pin it down."""

    seed: int
    machines: tuple[str, ...]
    programs: tuple[str, ...]
    levels: tuple[str, ...]
    cells: list[ScorecardCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> list[str]:
        out = []
        for cell in self.cells:
            tag = f"{cell.program}/{cell.machine}/{cell.level}"
            out.extend(f"[{tag}] {f}" for f in cell.failures)
        return out

    def cell(self, program: str, machine: str, level: str) -> ScorecardCell:
        for c in self.cells:
            if (c.program == program and c.machine == machine
                    and c.level == level):
                return c
        raise KeyError((program, machine, level))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "machines": list(self.machines),
            "programs": list(self.programs),
            "levels": list(self.levels),
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed indent, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _assembly_map(result) -> dict[str, str]:
    return {unit.name: unit.assembly() for unit in result}


def _measure_cell(workload: Workload, machine_name: str,
                  level: ScheduleLevel, args: tuple) -> ScorecardCell:
    cell = ScorecardCell(program=workload.name, machine=machine_name,
                         level=level.value)
    machine = CONFIGS[machine_name]()
    config = PipelineConfig(level=level, verify=True)
    try:
        unit = compile_c(workload.source, machine=machine, level=level,
                         config=config)
        cell.verified = True
    except ScheduleVerificationError as exc:
        cell.failures.append(f"schedule rejected by verifier: {exc}")
        return cell

    with scan_scheduler():
        scan_unit = compile_c(workload.source, machine=machine, level=level,
                              config=config)
    event_asm, scan_asm = _assembly_map(unit), _assembly_map(scan_unit)
    if event_asm == scan_asm:
        cell.engines_agree = True
    else:
        diverged = sorted(name for name in event_asm
                          if event_asm[name] != scan_asm.get(name))
        cell.failures.append(
            f"event and scan engines emitted different assembly for "
            f"{diverged}")

    call_args = tuple(list(a) if isinstance(a, list) else a for a in args)
    run = unit[workload.entry].run(*call_args,
                                   call_handlers=workload.call_handlers)
    cell.cycles = run.cycles
    cell.instructions = run.timing.instructions
    cell.buffer_drains = run.timing.buffer_drains

    ref_args = tuple(list(a) if isinstance(a, list) else a for a in args)
    expected = workload.reference(*ref_args)
    if run.return_value == expected:
        cell.oracle_ok = True
    else:
        cell.failures.append(
            f"returned {run.return_value}, oracle says {expected}")

    bsp = check_bsp(run.execution.instr_trace, machine, run.cycles)
    cell.bsp_lower_bound = bsp.bound.lower_bound
    cell.bsp_estimate = bsp.bound.estimate
    if bsp.ok:
        cell.bsp_ok = True
    else:
        cell.failures.extend(bsp.violations)
    return cell


def run_scorecard(machines: tuple[str, ...] = ZOO, *,
                  workloads: tuple[Workload, ...] = SCORECARD_WORKLOADS,
                  seed: int = 1991,
                  progress=None) -> Scorecard:
    """Regenerate the full matrix.

    Inputs are built once per program from ``seed`` and shared across all
    machines and levels, so cycle counts are comparable along both axes.
    ``progress`` (if given) is called with a one-line string per cell.
    """
    unknown = [m for m in machines if m not in CONFIGS]
    if unknown:
        raise KeyError(f"unknown machines {unknown}; "
                       f"available: {', '.join(sorted(CONFIGS))}")
    card = Scorecard(
        seed=seed,
        machines=tuple(machines),
        programs=tuple(w.name for w in workloads),
        levels=tuple(level.value for level in _LEVELS),
    )
    for workload in workloads:
        args = workload.make_args(random.Random(seed))
        for machine_name in machines:
            for level in _LEVELS:
                cell = _measure_cell(workload, machine_name, level, args)
                card.cells.append(cell)
                if progress is not None:
                    status = "ok" if cell.ok else "FAIL"
                    progress(f"  {cell.program}/{cell.machine}/"
                             f"{cell.level}: {cell.cycles} cycles [{status}]")
    return card


def format_scorecard(card: Scorecard) -> str:
    """Render the matrix as one Figure-8-style block per machine."""
    lines = [
        "Scorecard: simulated cycles per program x machine x level",
        f"(seed {card.seed}; RTI% = improvement over level none; "
        f"LB = BSP lower bound)",
    ]
    for machine_name in card.machines:
        checks = [c for c in card.cells if c.machine == machine_name]
        status = "ok" if all(c.ok for c in checks) else "FAIL"
        lines.append("")
        lines.append(f"machine {machine_name} [{status}]")
        labels = {"speculative": "SPEC"}
        heads = "".join(
            f" {labels.get(level, level.upper())[:8]:>8}"
            for level in card.levels)
        rtis = "".join(f" {'RTI-' + level.upper()[:1]:>7}"
                       for level in card.levels[1:])
        lines.append(f"  {'PROGRAM':<14}{heads}{rtis} {'LB':>7}")
        for program in card.programs:
            by_level = {c.level: c for c in checks if c.program == program}
            row = [by_level[level] for level in card.levels]
            base = row[0].cycles
            cols = "".join(f" {cell.cycles:>8}" for cell in row)
            cols += "".join(
                f" {100.0 * (base - cell.cycles) / base if base else 0.0:>6.1f}%"
                for cell in row[1:])
            lines.append(f"  {program:<14}{cols} "
                         f"{row[-1].bsp_lower_bound:>7}")
    if not card.ok:
        lines.append("")
        lines.append("failures:")
        lines.extend(f"  {f}" for f in card.failures)
    return "\n".join(lines)
