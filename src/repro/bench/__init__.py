"""Benchmark workloads and the Figures 7/8 evaluation harness."""

from .harness import (
    CTORow,
    RTIRow,
    figure7_table,
    figure8_table,
    format_figure7,
    format_figure8,
    measure_cto,
    measure_rti,
)
from .scorecard import (
    SCORECARD_WORKLOADS,
    Scorecard,
    ScorecardCell,
    format_scorecard,
    run_scorecard,
)
from .programs import (
    EQNTOTT_LIKE_C,
    ESPRESSO_LIKE_C,
    GCC_LIKE_C,
    LI_LIKE_C,
    MINMAX_C,
    MINMAX_WORKLOAD,
    WORKLOADS,
    Workload,
)

__all__ = [
    "CTORow",
    "EQNTOTT_LIKE_C",
    "ESPRESSO_LIKE_C",
    "GCC_LIKE_C",
    "LI_LIKE_C",
    "MINMAX_C",
    "MINMAX_WORKLOAD",
    "RTIRow",
    "SCORECARD_WORKLOADS",
    "Scorecard",
    "ScorecardCell",
    "WORKLOADS",
    "Workload",
    "format_scorecard",
    "run_scorecard",
    "figure7_table",
    "figure8_table",
    "format_figure7",
    "format_figure8",
    "measure_cto",
    "measure_rti",
]
