"""Execution substrate: functional interpreter + cycle-level simulator."""

from .bsp import (
    DEFAULT_HEADROOM,
    DEFAULT_SLACK,
    BSPBound,
    BSPCheck,
    bsp_bound,
    check_bsp,
)
from .executor import (
    ExecutionError,
    ExecutionResult,
    Executor,
    compare_bits,
    execute,
    wrap32,
)
from .machine_sim import (
    ICacheConfig,
    SimConfig,
    SimulationResult,
    TraceSimulator,
    layout_addresses,
    simulate_execution,
    simulate_path_iterations,
    simulate_trace,
)
from .timeline import format_timeline, issue_histogram, stall_cycles

__all__ = [
    "BSPBound",
    "BSPCheck",
    "DEFAULT_HEADROOM",
    "DEFAULT_SLACK",
    "bsp_bound",
    "check_bsp",
    "ExecutionError",
    "ExecutionResult",
    "Executor",
    "SimConfig",
    "SimulationResult",
    "TraceSimulator",
    "compare_bits",
    "execute",
    "ICacheConfig",
    "format_timeline",
    "issue_histogram",
    "layout_addresses",
    "simulate_execution",
    "simulate_path_iterations",
    "simulate_trace",
    "stall_cycles",
    "wrap32",
]
