"""A cycle-level timing simulator for the parametric machine (Section 2).

The model matches the one the paper reasons with when it estimates that
Figure 2 "executes in 20, 21 or 22 cycles" and that the scheduled versions
take 12-13 / 11-12:

* instructions issue strictly in program order along the executed trace
  (a stalled instruction blocks everything behind it);
* in one cycle, at most ``n_i`` instructions may issue on each unit type
  ``i`` (and at most ``issue_width`` overall, if the machine caps it) --
  on the RS/6K this yields the fixed point unit and branch unit "running
  in parallel";
* hardware interlocks enforce the per-edge delays: a consumer issues no
  earlier than ``issue(producer) + E(producer) + d``;
* control transfer itself is free (the branch unit resolves branches;
  taken and fall-through cost the same, per the paper's footnote 2), and
  unconditional branches are *folded* by the branch unit (they consume no
  issue slot) -- the RS/6000 branch processor really did this;
* units are fully pipelined (multi-cycle results, one issue per cycle).

Timing only: the simulator consumes a block trace recorded by the
functional executor (or built by hand), so values never need to be
recomputed here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode, UnitType
from ..ir.operand import Reg
from ..machine.model import MachineModel
from .executor import ExecutionResult, Executor


@dataclass
class ICacheConfig:
    """A direct-mapped instruction cache.

    The paper worries that scheduling with duplication "might increase the
    code size incurring additional costs in terms of instruction cache
    misses"; this optional model makes that cost measurable.  Instructions
    occupy 4 bytes at their static layout position; a fetch outside the
    currently-resident line of its set stalls the pipeline.
    """

    #: total size in bytes (RS/6000 model 530: 8 KB instruction cache)
    size: int = 8 * 1024
    line: int = 64
    miss_penalty: int = 8

    @property
    def lines(self) -> int:
        return max(1, self.size // self.line)


@dataclass
class SimConfig:
    """Simulator knobs (defaults reproduce the paper's counts)."""

    #: unconditional branches are folded by the branch unit (cost 0)
    branch_folding: bool = True
    #: optional instruction-cache model (None = perfect cache, the
    #: paper's implicit assumption for its cycle estimates)
    icache: ICacheConfig | None = None


def layout_addresses(func: Function) -> dict[int, int]:
    """Static byte address of every instruction (4 bytes each, layout
    order) -- the input the instruction-cache model needs."""
    addresses: dict[int, int] = {}
    offset = 0
    for block in func.blocks:
        for ins in block.instrs:
            addresses[id(ins)] = offset
            offset += 4
    return addresses


@dataclass
class SimulationResult:
    """Timing of one simulated trace."""

    cycles: int
    instructions: int
    #: issue cycle of every instruction of the trace, in order
    issue_cycles: list[int] = field(default_factory=list)
    #: issue cycle of the first instruction of each trace block
    block_starts: list[int] = field(default_factory=list)
    #: instruction-cache misses (0 with the default perfect cache)
    icache_misses: int = 0
    #: forced result-buffer drains (0 unless the machine is an
    #: exposed-datapath model with ``buffers``)
    buffer_drains: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class TraceSimulator:
    """Streaming in-order multi-issue simulator."""

    def __init__(self, machine: MachineModel, config: SimConfig | None = None,
                 *, addresses: dict[int, int] | None = None):
        self.machine = machine
        self.config = config or SimConfig()
        self._reg_ready: dict[Reg, int] = {}
        self._unit_used: dict[tuple[UnitType, int], int] = defaultdict(int)
        self._total_used: dict[int, int] = defaultdict(int)
        self._last_issue = 0
        self._issue_cycles: list[int] = []
        #: id(instruction) -> static byte address, for the icache model
        self._addresses = addresses or {}
        self._icache_tags: dict[int, int] = {}
        self.icache_misses = 0
        #: clustered machines: per-(cluster, cycle) and per-(cluster,
        #: unit, cycle) issue counts
        self._clusters = machine.clusters
        self._cluster_used: dict[tuple[int, int], int] = defaultdict(int)
        self._cluster_unit_used: dict[tuple[int, UnitType, int], int] = (
            defaultdict(int))
        #: exposed-datapath machines: which register currently occupies a
        #: result buffer, and each unit's resident (register, produced
        #: cycle) entries oldest-first
        self._buffers = machine.buffers
        self._buffered_reg: dict[Reg, UnitType] = {}
        self._buffer_fifo: dict[UnitType, list[tuple[Reg, int]]] = (
            defaultdict(list))
        self.buffer_drains = 0

    # -- core ------------------------------------------------------------

    def issue(self, ins: Instruction) -> int:
        """Issue one instruction; returns its issue cycle."""
        machine = self.machine
        earliest = self._last_issue
        for reg in ins.reg_uses():
            earliest = max(earliest, self._reg_ready.get(reg, 0))
        earliest += self._fetch_penalty(ins)

        if self.config.branch_folding and ins.opcode is Opcode.B:
            # Folded: occupies no slot, but later instructions still may
            # not issue before it (program order).
            self._last_issue = earliest
            self._issue_cycles.append(earliest)
            return earliest

        drains = self._buffer_overflow(ins, earliest)
        if drains:
            self.buffer_drains += drains
            earliest += drains * self._buffers.drain_penalty

        unit = ins.unit
        capacity = machine.unit_count(unit)
        if capacity <= 0:
            raise ValueError(
                f"machine {machine.name!r} has no {unit.name} unit for {ins!r}"
            )
        cycle, cluster = self._find_slot(unit, capacity, earliest)
        self._unit_used[(unit, cycle)] += 1
        self._total_used[cycle] += 1
        if cluster is not None:
            self._cluster_used[(cluster, cycle)] += 1
            self._cluster_unit_used[(cluster, unit, cycle)] += 1
        self._last_issue = cycle
        self._issue_cycles.append(cycle)
        if self._buffers is not None:
            self._buffer_update(ins, cycle)
        for reg in ins.reg_defs():
            self._reg_ready[reg] = cycle + machine.result_latency(ins, reg)
        return cycle

    def _find_slot(self, unit: UnitType, capacity: int,
                   earliest: int) -> tuple[int, int | None]:
        """First cycle >= ``earliest`` with a free slot (and, on clustered
        machines, the index of the cluster issuing it)."""
        width = self.machine.total_issue_width
        cycle = earliest
        while True:
            if (self._unit_used[(unit, cycle)] < capacity
                    and self._total_used[cycle] < width):
                if self._clusters is None:
                    return cycle, None
                cluster = self._pick_cluster(unit, cycle)
                if cluster is not None:
                    return cycle, cluster
            cycle += 1

    def _pick_cluster(self, unit: UnitType, cycle: int) -> int | None:
        """Lowest-index cluster with a free ``unit`` slot this cycle."""
        for index, cluster in enumerate(self._clusters):
            if (self._cluster_used[(index, cycle)] < cluster.issue_width
                    and self._cluster_unit_used[(index, unit, cycle)]
                    < cluster.unit_count(unit)):
                return index
        return None

    # -- exposed-datapath result buffers ----------------------------------

    def _buffer_overflow(self, ins: Instruction, now: int) -> int:
        """Forced drains of still-hot results issuing ``ins`` at ``now``
        would cause (0 = the results fit, or every eviction is of a stale
        result the writeback port already retired for free)."""
        buf = self._buffers
        if buf is None:
            return 0
        defs = ins.reg_defs()
        if not defs:
            return 0
        cap = buf.capacity(ins.unit)
        if cap is None:
            return 0
        freed = set(ins.reg_uses()) | set(defs)
        resident = [produced for reg, produced in self._buffer_fifo[ins.unit]
                    if reg not in freed]
        overflow = len(resident) + len(defs) - cap
        if overflow <= 0:
            return 0
        # evictions happen oldest-first; only still-hot victims cost
        return sum(1 for produced in resident[:overflow]
                   if now - produced < buf.free_after)

    def _buffer_update(self, ins: Instruction, cycle: int) -> None:
        """Account buffer traffic of issuing ``ins``: its reads free the
        producers' slots, its results claim slots (evicting oldest-first
        on overflow -- any hot-drain penalty was already charged)."""
        buf = self._buffers
        for reg in ins.reg_uses():
            self._release_buffer(reg)
        defs = ins.reg_defs()
        for reg in defs:
            # a redefinition invalidates any still-buffered old value,
            # whichever unit produced it
            self._release_buffer(reg)
        if not defs:
            return
        cap = buf.capacity(ins.unit)
        if cap is None:
            return
        fifo = self._buffer_fifo[ins.unit]
        while len(fifo) + len(defs) > cap:
            del self._buffered_reg[fifo.pop(0)[0]]
        for reg in defs:
            fifo.append((reg, cycle))
            self._buffered_reg[reg] = ins.unit

    def _release_buffer(self, reg: Reg) -> None:
        unit = self._buffered_reg.pop(reg, None)
        if unit is not None:
            fifo = self._buffer_fifo[unit]
            for i, (resident, _produced) in enumerate(fifo):
                if resident == reg:
                    del fifo[i]
                    break

    def run_blocks(self, blocks: list[BasicBlock]) -> SimulationResult:
        """Simulate the instruction stream of ``blocks`` in order."""
        block_starts: list[int] = []
        count = 0
        for block in blocks:
            block_starts.append(
                self._peek_next_cycle(block.instrs[0]) if block.instrs
                else self._last_issue
            )
            for ins in block.instrs:
                self.issue(ins)
                count += 1
        last = max(self._issue_cycles, default=-1)
        return SimulationResult(
            cycles=last + 1,
            instructions=count,
            issue_cycles=list(self._issue_cycles),
            block_starts=block_starts,
            icache_misses=self.icache_misses,
            buffer_drains=self.buffer_drains,
        )

    def _fetch_penalty(self, ins: Instruction) -> int:
        """Instruction-cache lookup: 0 on a hit or with no cache model."""
        cache = self.config.icache
        if cache is None:
            return 0
        addr = self._addresses.get(id(ins))
        if addr is None:
            return 0
        line_index = (addr // cache.line) % cache.lines
        tag = addr // (cache.line * cache.lines)
        if self._icache_tags.get(line_index) == tag:
            return 0
        self._icache_tags[line_index] = tag
        self.icache_misses += 1
        return cache.miss_penalty

    def _peek_next_cycle(self, ins: Instruction) -> int:
        """The cycle ``ins`` would issue at, without issuing it."""
        earliest = self._last_issue
        for reg in ins.reg_uses():
            earliest = max(earliest, self._reg_ready.get(reg, 0))
        if self.config.branch_folding and ins.opcode is Opcode.B:
            return earliest
        drains = self._buffer_overflow(ins, earliest)
        if drains:
            earliest += drains * self._buffers.drain_penalty
        unit = ins.unit
        capacity = max(self.machine.unit_count(unit), 1)
        cycle, _cluster = self._find_slot(unit, capacity, earliest)
        return cycle


def simulate_trace(
    blocks: list[BasicBlock],
    machine: MachineModel,
    config: SimConfig | None = None,
) -> SimulationResult:
    """Time the given block sequence from a cold pipeline."""
    return TraceSimulator(machine, config).run_blocks(blocks)


def simulate_path_iterations(
    func: Function,
    path_labels: list[str],
    machine: MachineModel,
    *,
    iterations: int = 4,
    config: SimConfig | None = None,
) -> int:
    """Steady-state cycles per iteration along one loop path.

    Simulates ``iterations`` repetitions of the path and returns the
    start-to-start distance of the last two -- this is how the paper's
    "cycles per iteration" figures for the minmax loop are measured.
    """
    if iterations < 2:
        raise ValueError("need at least 2 iterations for start-to-start")
    path = [func.block(label) for label in path_labels]
    sim = TraceSimulator(machine, config)
    starts: list[int] = []
    for _ in range(iterations):
        result_start = None
        for i, block in enumerate(path):
            for j, ins in enumerate(block.instrs):
                cycle = sim.issue(ins)
                if i == 0 and j == 0:
                    result_start = cycle
        starts.append(result_start if result_start is not None else 0)
    return starts[-1] - starts[-2]


def simulate_execution(
    func: Function,
    machine: MachineModel,
    *,
    regs: dict[Reg, int] | None = None,
    memory: dict[int, int] | None = None,
    call_handlers=None,
    max_steps: int = 1_000_000,
    config: SimConfig | None = None,
) -> tuple[ExecutionResult, SimulationResult]:
    """Run ``func`` functionally, then time the executed trace."""
    result = Executor(
        func, regs=regs, memory=memory, call_handlers=call_handlers,
        max_steps=max_steps,
    ).run()
    sim = TraceSimulator(machine, config, addresses=layout_addresses(func))
    issue_cycles = [sim.issue(ins) for ins in result.instr_trace]
    last = max(issue_cycles, default=-1)
    timing = SimulationResult(
        cycles=last + 1,
        instructions=len(result.instr_trace),
        issue_cycles=issue_cycles,
        icache_misses=sim.icache_misses,
        buffer_drains=sim.buffer_drains,
    )
    return result, timing
