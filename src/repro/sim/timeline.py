"""Textual issue timelines: see *where* the cycles go.

Renders a simulated trace as a textbook-style pipeline diagram -- one row
per instruction, one column per cycle, ``X`` at the issue cycle, ``=`` for
the remaining execution/delay cycles of the produced value.  This is how
the paper's 20-vs-12-cycle story becomes visible at a glance::

    I1  L     r12=a(r31,4)    X=
    I2  LU    r0,r31=a(r31,8)  X=
    I3  C     cr7=r12,r0         X===
    I4  BF    CL.4,cr7,0x2/gt        X
"""

from __future__ import annotations

from io import StringIO

from ..ir.instruction import Instruction
from ..machine.model import MachineModel
from .machine_sim import SimulationResult


def format_timeline(
    instrs: list[Instruction],
    result: SimulationResult,
    machine: MachineModel,
    *,
    max_cycles: int = 120,
    text_width: int = 30,
) -> str:
    """Render the issue diagram of a simulated instruction stream.

    ``instrs`` must be the same stream (same order/length) that produced
    ``result``.
    """
    if len(instrs) != len(result.issue_cycles):
        raise ValueError(
            f"{len(instrs)} instructions vs "
            f"{len(result.issue_cycles)} recorded issue cycles"
        )
    out = StringIO()
    span = min(result.cycles, max_cycles)
    header = " " * (6 + text_width) + "".join(
        str(c % 10) for c in range(span)
    )
    out.write(header + "\n")
    for ins, cycle in zip(instrs, result.issue_cycles):
        if cycle >= max_cycles:
            break
        latency = max(
            [machine.result_latency(ins, reg) for reg in ins.reg_defs()]
            or [machine.exec_time(ins)]
        )
        row = [" "] * span
        row[cycle] = "X"
        for extra in range(cycle + 1, min(cycle + latency, span)):
            row[extra] = "="
        text = f"{ins}"[:text_width]
        out.write(f"I{ins.uid:<4} {text:<{text_width}}{''.join(row)}\n")
    return out.getvalue()


def issue_histogram(result: SimulationResult) -> dict[int, int]:
    """How many instructions issued per cycle (0 entries omitted)."""
    hist: dict[int, int] = {}
    for cycle in result.issue_cycles:
        hist[cycle] = hist.get(cycle, 0) + 1
    return hist


def stall_cycles(result: SimulationResult) -> int:
    """Cycles in which nothing issued (pipeline bubbles)."""
    used = set(result.issue_cycles)
    return sum(1 for c in range(result.cycles) if c not in used)
