"""A functional (architectural) interpreter for the IR.

Two jobs:

* **Correctness oracle.**  Scheduling must preserve program semantics; the
  test suite runs the original and the scheduled function on the same
  inputs and compares final register/memory state and call side effects.
* **Trace generation.**  The cycle simulator needs to know which blocks
  execute in what order; the executor records the block trace.

Arithmetic wraps to signed 32-bit, matching the RS/6K's fixed point unit.
Memory is word-granular and byte-addressed (aligned accesses assumed);
unwritten locations read as zero.  Calls dispatch to registered Python
callables (the ``printf`` of Figure 1 can be a print capture in tests) and
otherwise behave as no-ops that clobber nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode
from ..ir.operand import CR_EQ, CR_GT, CR_LT, Reg

_WORD_MASK = 0xFFFFFFFF

#: A call handler: receives argument values, returns result values.
CallHandler = Callable[[list[int]], list[int]]


class ExecutionError(RuntimeError):
    """Raised for runaway executions or malformed programs."""


def wrap32(value: int) -> int:
    """Wrap to signed 32-bit two's complement."""
    value &= _WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def compare_bits(a: int, b: int) -> int:
    """The LT/GT/EQ condition-register mask for a signed compare."""
    if a < b:
        return CR_LT
    if a > b:
        return CR_GT
    return CR_EQ


@dataclass
class ExecutionResult:
    """Final architectural state plus the trace."""

    regs: dict[Reg, int]
    memory: dict[int, int]
    #: visited block labels, in execution order
    block_trace: list[str]
    #: executed instructions, in execution order
    instr_trace: list[Instruction]
    #: (callee, args) of every call, in order
    calls: list[tuple[str, tuple[int, ...]]]
    steps: int
    return_value: int | None = None

    def reg(self, reg: Reg) -> int:
        return self.regs.get(reg, 0)


class Executor:
    """Interprets one function from a given initial state."""

    def __init__(
        self,
        func: Function,
        *,
        regs: dict[Reg, int] | None = None,
        memory: dict[int, int] | None = None,
        call_handlers: dict[str, CallHandler] | None = None,
        max_steps: int = 1_000_000,
    ):
        self.func = func
        self.regs: dict[Reg, int] = dict(regs or {})
        self.memory: dict[int, int] = dict(memory or {})
        self.call_handlers = dict(call_handlers or {})
        self.max_steps = max_steps

    # -- small helpers ---------------------------------------------------

    def _get(self, reg: Reg) -> int:
        return self.regs.get(reg, 0)

    def _set(self, reg: Reg, value: int) -> None:
        self.regs[reg] = wrap32(value)

    def _addr(self, ins: Instruction) -> int:
        return wrap32(self._get(ins.mem.base) + ins.mem.disp)

    # -- the interpreter loop -----------------------------------------------

    def run(self) -> ExecutionResult:
        func = self.func
        # an empty function executes zero instructions and returns nothing
        block: BasicBlock | None = func.entry if func.blocks else None
        block_trace: list[str] = []
        instr_trace: list[Instruction] = []
        calls: list[tuple[str, tuple[int, ...]]] = []
        steps = 0
        return_value: int | None = None

        while block is not None:
            block_trace.append(block.label)
            next_block: BasicBlock | None = None
            fell_through = True
            for ins in block.instrs:
                steps += 1
                if steps > self.max_steps:
                    raise ExecutionError(
                        f"{func.name}: exceeded {self.max_steps} steps "
                        f"(infinite loop?)"
                    )
                instr_trace.append(ins)
                outcome = self._execute(ins, calls)
                if outcome == "ret":
                    return_value = self._get(ins.uses[0]) if ins.uses else None
                    fell_through = False
                    next_block = None
                    break
                if outcome == "taken":
                    next_block = func.block(ins.target)
                    fell_through = False
                    break
            if fell_through:
                next_block = func.fallthrough(block)
            block = next_block

        return ExecutionResult(
            regs=dict(self.regs),
            memory=dict(self.memory),
            block_trace=block_trace,
            instr_trace=instr_trace,
            calls=calls,
            steps=steps,
            return_value=return_value,
        )

    def _execute(self, ins: Instruction,
                 calls: list[tuple[str, tuple[int, ...]]]) -> str | None:
        """Execute one instruction; returns "taken" / "ret" / None."""
        op = ins.opcode
        get, put = self._get, self._set

        if op in (Opcode.L, Opcode.FL):
            put(ins.defs[0], self.memory.get(self._addr(ins), 0))
        elif op is Opcode.LU:
            # load from base+disp, then post-increment the base (Figure 2)
            addr = self._addr(ins)
            base = ins.mem.base
            new_base = wrap32(get(base) + ins.mem.disp)
            put(ins.defs[0], self.memory.get(addr, 0))
            put(ins.defs[1], new_base)
        elif op in (Opcode.ST, Opcode.FST):
            self.memory[self._addr(ins)] = get(ins.uses[0])
        elif op is Opcode.STU:
            self.memory[self._addr(ins)] = get(ins.uses[0])
            put(ins.defs[0], get(ins.mem.base) + ins.mem.disp)
        elif op is Opcode.LI:
            put(ins.defs[0], ins.imm)
        elif op in (Opcode.LR, Opcode.FMR, Opcode.MTCTR):
            put(ins.defs[0], get(ins.uses[0]))
        elif op is Opcode.A or op is Opcode.FA:
            put(ins.defs[0], get(ins.uses[0]) + get(ins.uses[1]))
        elif op is Opcode.AI:
            put(ins.defs[0], get(ins.uses[0]) + ins.imm)
        elif op is Opcode.S or op is Opcode.FS:
            put(ins.defs[0], get(ins.uses[0]) - get(ins.uses[1]))
        elif op is Opcode.SI:
            put(ins.defs[0], get(ins.uses[0]) - ins.imm)
        elif op is Opcode.MUL or op is Opcode.FM:
            put(ins.defs[0], get(ins.uses[0]) * get(ins.uses[1]))
        elif op is Opcode.DIV or op is Opcode.FD:
            divisor = get(ins.uses[1])
            if divisor == 0:
                raise ExecutionError(f"division by zero at {ins!r}")
            put(ins.defs[0], int(get(ins.uses[0]) / divisor))
        elif op is Opcode.REM:
            divisor = get(ins.uses[1])
            if divisor == 0:
                raise ExecutionError(f"remainder by zero at {ins!r}")
            quotient = int(get(ins.uses[0]) / divisor)
            put(ins.defs[0], get(ins.uses[0]) - quotient * divisor)
        elif op is Opcode.AND:
            put(ins.defs[0], get(ins.uses[0]) & get(ins.uses[1]))
        elif op is Opcode.ANDI:
            put(ins.defs[0], get(ins.uses[0]) & ins.imm)
        elif op is Opcode.OR:
            put(ins.defs[0], get(ins.uses[0]) | get(ins.uses[1]))
        elif op is Opcode.ORI:
            put(ins.defs[0], get(ins.uses[0]) | ins.imm)
        elif op is Opcode.XOR:
            put(ins.defs[0], get(ins.uses[0]) ^ get(ins.uses[1]))
        elif op is Opcode.XORI:
            put(ins.defs[0], get(ins.uses[0]) ^ ins.imm)
        elif op is Opcode.SL:
            put(ins.defs[0], get(ins.uses[0]) << (ins.imm & 31))
        elif op is Opcode.SR:
            put(ins.defs[0], (get(ins.uses[0]) & _WORD_MASK) >> (ins.imm & 31))
        elif op is Opcode.SRA:
            put(ins.defs[0], get(ins.uses[0]) >> (ins.imm & 31))
        elif op is Opcode.NEG:
            put(ins.defs[0], -get(ins.uses[0]))
        elif op is Opcode.NOT:
            put(ins.defs[0], ~get(ins.uses[0]))
        elif op in (Opcode.C, Opcode.FC):
            put(ins.defs[0], compare_bits(get(ins.uses[0]), get(ins.uses[1])))
        elif op is Opcode.CI:
            put(ins.defs[0], compare_bits(get(ins.uses[0]), ins.imm))
        elif op is Opcode.B:
            return "taken"
        elif op is Opcode.BT:
            if get(ins.uses[0]) & ins.mask:
                return "taken"
        elif op is Opcode.BF:
            if not (get(ins.uses[0]) & ins.mask):
                return "taken"
        elif op is Opcode.BDNZ:
            ctr = wrap32(get(ins.uses[0]) - 1)
            put(ins.defs[0], ctr)
            if ctr != 0:
                return "taken"
        elif op is Opcode.CALL:
            args = [get(r) for r in ins.uses]
            calls.append((ins.target, tuple(args)))
            handler = self.call_handlers.get(ins.target)
            results = handler(args) if handler is not None else []
            for reg, value in zip(ins.defs, results):
                put(reg, value)
        elif op is Opcode.RET:
            return "ret"
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - the opcode table is closed
            raise ExecutionError(f"no semantics for {ins!r}")
        return None


def execute(func: Function, **kwargs) -> ExecutionResult:
    """Convenience wrapper: run ``func`` from the given initial state."""
    return Executor(func, **kwargs).run()
