"""A BSP-style DAG cost model: a simulator-independent cycle cross-check.

Papp et al.'s BSP scheduling model (PAPERS.md, "DAG Scheduling in the BSP
Model") prices a DAG schedule as a sum of supersteps, each charging the
maximum per-processor work plus communication and a synchronisation
latency.  This module restates an executed instruction trace in those
terms and derives two numbers from first principles -- *without* running
the cycle simulator:

* :attr:`BSPBound.lower_bound` -- a **certified lower bound** on the
  cycles any in-order issue of the trace can take on the given machine.
  It is the max of three classic DAG bounds, each provable against the
  simulator's issue rules (see :func:`bsp_bound`):

  - *work*: each unit type ``u`` starts at most ``n_u`` instructions per
    cycle, so ``cycles >= ceil(count_u / n_u)``;
  - *width*: at most ``total_issue_width`` instructions start per cycle,
    so ``cycles >= ceil(slots / width)`` (folded branches excluded: they
    consume no slot);
  - *depth*: along any register-dependence chain a consumer starts no
    earlier than ``issue(producer) + E(producer) + delay``, so
    ``cycles >= longest chain + 1``.

  Cluster caps, result-buffer drains and the instruction cache only ever
  *delay* issues, so the bound holds for every machine in the zoo.

* :attr:`BSPBound.estimate` -- the BSP superstep-sum **estimate**: each
  executed basic block is one superstep (the branch ending it is the
  barrier), priced ``max(local work, local depth) + L`` with the sync
  latency ``L`` defaulting to 0 (the paper's machine synchronises through
  the branch unit for free).  An estimate, not a bound: within a block it
  assumes perfect packing, across blocks it forbids overlap.

The differential oracle (:func:`check_bsp`) asserts the invariant pair
used by the fuzzer and the scorecard: **simulated cycles must never beat
the lower bound**, and must not drift above ``slack * lower_bound +
headroom``.  The documented tolerance (slack 24.0, headroom 32 cycles) is
deliberately loose: unscheduled code on a wide in-order machine stalls
the whole pipeline at every hazard, and the worst amplification measured
across the machine zoo x the fuzz corpus is ~15x the bound (ss8, level
``none``), so 24x leaves ~50% margin.  The check exists to catch
catastrophic cross-model drift (a broken simulator, a degenerate
schedule, an under-charging cost model), not to grade schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode, UnitType
from ..ir.operand import Reg
from ..machine.model import MachineModel

#: documented drift tolerance: sim may cost at most
#: ``DEFAULT_SLACK * lower_bound + DEFAULT_HEADROOM`` cycles
DEFAULT_SLACK = 24.0
#: additive headroom so tiny traces (a handful of instructions) are not
#: judged by a multiplicative tolerance alone
DEFAULT_HEADROOM = 32


@dataclass(frozen=True)
class BSPBound:
    """BSP-style cost decomposition of one executed trace."""

    #: issue slots consumed (folded branches excluded)
    slots: int
    #: per-unit-type work bounds: ceil(count_u / n_u)
    work: tuple[tuple[str, int], ...]
    #: ceil(slots / total_issue_width)
    width: int
    #: longest register-dependence chain (cycles), + 1 for the last issue
    depth: int
    #: number of supersteps (executed basic blocks) in the BSP reading
    supersteps: int
    #: BSP superstep-sum estimate of the cycle count (not a bound)
    estimate: int

    @property
    def lower_bound(self) -> int:
        """Certified minimum cycles for any in-order issue of the trace."""
        work_max = max((bound for _unit, bound in self.work), default=0)
        return max(work_max, self.width, self.depth)


@dataclass
class BSPCheck:
    """Verdict of one simulator-vs-BSP cross-check."""

    bound: BSPBound
    simulated_cycles: int
    slack: float = DEFAULT_SLACK
    headroom: int = DEFAULT_HEADROOM
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def limit(self) -> int:
        return int(self.slack * self.bound.lower_bound) + self.headroom

    def format(self) -> str:
        status = "ok" if self.ok else "FAIL"
        head = (f"bsp cross-check: {status} -- simulated "
                f"{self.simulated_cycles} cycles, lower bound "
                f"{self.bound.lower_bound}, drift limit {self.limit}")
        return "\n".join([head] + [f"  {v}" for v in self.violations])


def _superstep_cost(machine: MachineModel, counts: dict[UnitType, int],
                    slots: int, local_depth: int) -> int:
    """BSP price of one superstep: max resource pressure vs local depth."""
    work = max((-(-count // machine.unit_count(unit))
                for unit, count in counts.items() if count), default=0)
    width = -(-slots // machine.total_issue_width)
    return max(work, width, local_depth)


def bsp_bound(trace: list[Instruction], machine: MachineModel, *,
              branch_folding: bool = True, sync_latency: int = 0) -> BSPBound:
    """Price an executed trace in the BSP model (see module docstring).

    ``branch_folding`` must match the simulator config the result is
    compared against (the default matches :class:`~repro.sim.SimConfig`):
    a folded unconditional branch consumes no issue slot, so it carries
    no work, but it still anchors superstep boundaries.
    """
    #: cycle level at which each register becomes consumable
    reg_ready: dict[Reg, int] = {}
    counts: dict[UnitType, int] = {}
    slots = 0
    depth = 0  # largest start level forced by register chains

    # per-superstep (executed basic block) accumulators for the estimate
    estimate = 0
    supersteps = 0
    step_counts: dict[UnitType, int] = {}
    step_slots = 0
    step_depth = 0
    step_base = 0  # chain level at superstep entry

    for ins in trace:
        start = 0
        for reg in ins.reg_uses():
            level = reg_ready.get(reg, 0)
            if level > start:
                start = level
        if start > depth:
            depth = start
        folded = branch_folding and ins.opcode is Opcode.B
        if not folded:
            slots += 1
            step_slots += 1
            unit = ins.unit
            counts[unit] = counts.get(unit, 0) + 1
            step_counts[unit] = step_counts.get(unit, 0) + 1
        local = start - step_base
        if local > step_depth:
            step_depth = local
        for reg in ins.reg_defs():
            reg_ready[reg] = start + machine.result_latency(ins, reg)
        if ins.opcode.is_branch:
            # the branch is the superstep barrier: close this block
            supersteps += 1
            estimate += (_superstep_cost(machine, step_counts, step_slots,
                                         step_depth) + sync_latency)
            step_counts = {}
            step_slots = 0
            step_depth = 0
            step_base = depth
    if step_slots or step_depth:
        supersteps += 1
        estimate += _superstep_cost(machine, step_counts, step_slots,
                                    step_depth)

    work = tuple(
        (unit.name, -(-count // machine.unit_count(unit)))
        for unit, count in sorted(counts.items(), key=lambda kv: kv[0].name)
    )
    width = -(-slots // machine.total_issue_width)
    return BSPBound(
        slots=slots,
        work=work,
        width=width,
        depth=depth + 1 if trace else 0,
        supersteps=supersteps,
        estimate=estimate,
    )


def check_bsp(trace: list[Instruction], machine: MachineModel,
              simulated_cycles: int, *, slack: float = DEFAULT_SLACK,
              headroom: int = DEFAULT_HEADROOM,
              branch_folding: bool = True) -> BSPCheck:
    """Cross-check a simulated cycle count against the BSP cost model."""
    bound = bsp_bound(trace, machine, branch_folding=branch_folding)
    check = BSPCheck(bound=bound, simulated_cycles=simulated_cycles,
                     slack=slack, headroom=headroom)
    if simulated_cycles < bound.lower_bound:
        check.violations.append(
            f"simulated {simulated_cycles} cycles beat the BSP lower bound "
            f"{bound.lower_bound} (work "
            f"{dict(bound.work)}, width {bound.width}, depth {bound.depth})"
            f" -- the simulator is under-charging")
    if simulated_cycles > check.limit:
        check.violations.append(
            f"simulated {simulated_cycles} cycles drift beyond the "
            f"documented tolerance {check.limit} "
            f"(= {slack} x lower bound {bound.lower_bound} + {headroom})")
    return check
