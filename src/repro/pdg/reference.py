"""Reference (pre-optimization) dependence-graph construction.

These are the original, straightforward implementations of the region DDG
builder and the delay-aware transitive reduction:

* :func:`build_region_ddg_reference` re-scans the earlier block of every
  reachable ``(A, B)`` pair to rebuild its def/use/memory summary -- an
  O(pairs x instructions) construction;
* :func:`transitive_reduce_reference` runs one heap-ordered longest-path
  sweep per multi-successor source.

The optimized versions in :mod:`repro.pdg.data_deps` must compute exactly
the same edge set (same endpoints, kinds and delays) and remove exactly the
same edges.  These copies exist so that equivalence stays *testable*
(``tests/pdg/test_reference_equivalence.py``) and the speedup stays
*measurable* (``benchmarks/perf/``); they are not used by the compiler
pipeline itself.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager

from ..ir.basic_block import BasicBlock
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from ..machine.model import MachineModel
from . import data_deps
from .data_deps import DataDependenceGraph, DepEdge, DepKind, _edge_weight
from .memory import AddressTracker, SymbolicAddress, may_conflict


class _CopyingDDG(DataDependenceGraph):
    """A DDG with the seed accessor behaviour: ``succs``/``preds`` return a
    fresh list on every call (the optimized graph hands out read-only views
    of its internal lists)."""

    def succs(self, ins: Instruction) -> list[DepEdge]:
        return list(self._succs.get(id(ins), ()))

    def preds(self, ins: Instruction) -> list[DepEdge]:
        return list(self._preds.get(id(ins), ()))


class _BlockScanStateReference:
    """The seed running last-def / uses-since-def / memory scan state."""

    def __init__(self) -> None:
        self.last_def: dict[Reg, Instruction] = {}
        self.uses_since_def: dict[Reg, list[Instruction]] = {}
        self.mem_ops: list[tuple[Instruction, SymbolicAddress | None]] = []
        self.tracker = AddressTracker()


def _scan_block_reference(ddg: DataDependenceGraph, block: BasicBlock,
                          machine: MachineModel) -> None:
    """The seed intra-block scan: repeated ``reg_uses()``/``reg_defs()``
    calls and attribute lookups inside the loop."""
    state = _BlockScanStateReference()
    for ins in block.instrs:
        ddg.add_instruction(ins)
        for reg in ins.reg_uses():
            producer = state.last_def.get(reg)
            if producer is not None:
                delay = machine.flow_delay(producer, ins, reg)
                ddg.add_edge(producer, ins, DepKind.FLOW, delay, reg)
        if ins.touches_memory:
            addr = (state.tracker.address_of(ins.mem)
                    if ins.mem is not None else None)
            for prev, prev_addr in state.mem_ops:
                if may_conflict(prev, prev_addr, ins, addr):
                    ddg.add_edge(prev, ins, DepKind.MEM, 0)
            state.mem_ops.append((ins, addr))
        for reg in ins.reg_defs():
            for user in state.uses_since_def.get(reg, ()):
                ddg.add_edge(user, ins, DepKind.ANTI, 0, reg)
            previous = state.last_def.get(reg)
            if previous is not None:
                ddg.add_edge(previous, ins, DepKind.OUTPUT, 0, reg)
        for reg in ins.reg_uses():
            state.uses_since_def.setdefault(reg, []).append(ins)
        for reg in ins.reg_defs():
            state.last_def[reg] = ins
            state.uses_since_def[reg] = []
        state.tracker.step(ins)


def topo_order_reference(ddg: DataDependenceGraph) -> list[Instruction]:
    """The seed topological sort: indegrees from a full ``edges()`` copy,
    successor lists copied per pop."""
    indeg = {id(ins): 0 for ins in ddg.instructions}
    for edge in ddg.edges():
        indeg[id(edge.dst)] += 1
    ready = [ins for ins in ddg.instructions if indeg[id(ins)] == 0]
    order: list[Instruction] = []
    while ready:
        ins = ready.pop()
        order.append(ins)
        for edge in ddg.succs(ins):
            indeg[id(edge.dst)] -= 1
            if indeg[id(edge.dst)] == 0:
                ready.append(edge.dst)
    if len(order) != len(ddg.instructions):
        raise ValueError("data dependence graph has a cycle")
    return order


def _interblock_edges_reference(ddg: DataDependenceGraph, earlier: BasicBlock,
                                later: BasicBlock,
                                machine: MachineModel) -> None:
    """The seed per-pair construction: summarise ``earlier`` from scratch
    for every pair, then scan ``later`` against it."""
    defs_of: dict[Reg, list[Instruction]] = {}
    uses_of: dict[Reg, list[Instruction]] = {}
    mem_ops: list[Instruction] = []
    for a in earlier.instrs:
        for reg in a.reg_defs():
            defs_of.setdefault(reg, []).append(a)
        for reg in a.reg_uses():
            uses_of.setdefault(reg, []).append(a)
        if a.touches_memory:
            mem_ops.append(a)

    for b in later.instrs:
        ddg.add_instruction(b)
        for reg in b.reg_uses():
            for a in defs_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.FLOW,
                             machine.flow_delay(a, b, reg), reg)
        for reg in b.reg_defs():
            for a in uses_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.ANTI, 0, reg)
            for a in defs_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.OUTPUT, 0, reg)
        if b.touches_memory:
            for a in mem_ops:
                if may_conflict(a, None, b, None):
                    ddg.add_edge(a, b, DepKind.MEM, 0)


def build_region_ddg_reference(
    blocks: list[BasicBlock],
    reachable_pairs: set[tuple[str, str]],
    machine: MachineModel,
    *, reduce: bool = True,
) -> DataDependenceGraph:
    """The seed region-DDG builder: O(B^2) pairwise interblock scans."""
    ddg = _CopyingDDG()
    for block in blocks:
        _scan_block_reference(ddg, block, machine)
    for i, earlier in enumerate(blocks):
        for later in blocks[i + 1:]:
            if (earlier.label, later.label) in reachable_pairs:
                _interblock_edges_reference(ddg, earlier, later, machine)
    if reduce:
        transitive_reduce_reference(ddg, machine)
    return ddg


def _longest_from_reference(ddg: DataDependenceGraph, src: Instruction,
                            machine: MachineModel,
                            position: dict[int, int]) -> dict[int, int]:
    """The seed longest-path sweep: a topo-position-keyed heap per source."""
    dist: dict[int, int] = {id(src): 0}
    heap = [(position[id(src)], id(src), src)]
    done: set[int] = set()
    while heap:
        _, _, ins = heapq.heappop(heap)
        if id(ins) in done:
            continue
        done.add(id(ins))
        for edge in ddg.succs(ins):
            cand = dist[id(ins)] + _edge_weight(machine, edge)
            if cand > dist.get(id(edge.dst), -1):
                dist[id(edge.dst)] = cand
            if id(edge.dst) not in done:
                heapq.heappush(
                    heap, (position[id(edge.dst)], id(edge.dst), edge.dst)
                )
    return dist


def transitive_reduce_reference(ddg: DataDependenceGraph,
                                machine: MachineModel) -> int:
    """The seed delay-aware reduction: one full heap sweep per source."""
    order = topo_order_reference(ddg)
    position = {id(ins): i for i, ins in enumerate(order)}
    removed = 0
    for a in order:
        out_edges = list(ddg.succs(a))
        if len(out_edges) < 2:
            continue
        dist = _longest_from_reference(ddg, a, machine, position)
        for edge in out_edges:
            w = _edge_weight(machine, edge)
            best_multi = max(
                (
                    dist[id(in_edge.src)] + _edge_weight(machine, in_edge)
                    for in_edge in list(ddg.preds(edge.dst))
                    if in_edge.src is not a and id(in_edge.src) in dist
                ),
                default=None,
            )
            if best_multi is not None and best_multi >= w:
                ddg.remove_edge(edge)
                removed += 1
    return removed


@contextmanager
def reference_pipeline():
    """Run the whole compiler with the reference DDG construction.

    Swaps :func:`repro.pdg.data_deps.build_region_ddg` and
    :func:`~repro.pdg.data_deps.transitive_reduce` for their reference
    twins for the duration of the ``with`` block.  The perf suite uses this
    to measure end-to-end (compile / fuzz) throughput against the seed
    behaviour without keeping two pipelines alive.
    """
    saved = (data_deps.build_region_ddg, data_deps.transitive_reduce)
    # pdg.pdg binds build_region_ddg at import time; patch it there too.
    from . import pdg as region_pdg_module

    saved_pdg = region_pdg_module.build_region_ddg
    data_deps.build_region_ddg = build_region_ddg_reference
    data_deps.transitive_reduce = transitive_reduce_reference
    region_pdg_module.build_region_ddg = build_region_ddg_reference
    try:
        yield
    finally:
        data_deps.build_region_ddg, data_deps.transitive_reduce = saved
        region_pdg_module.build_region_ddg = saved_pdg


class DependenceStateReference:
    """The seed :class:`repro.sched.ready.DependenceState`: readiness and
    earliest start re-derived from the predecessor edges on every query."""

    def __init__(self, ddg, machine):
        self.ddg = ddg
        self.machine = machine
        self._fulfilled: set[int] = set()
        self._local_start: dict[int, int] = {}
        self._carry_start: dict[int, int] = {}

    def edge_weight(self, edge) -> int:
        if edge.kind is DepKind.FLOW:
            return self.machine.exec_time(edge.src) + edge.delay
        return 0

    def begin_block(self, *, carry_cycles: int | None = None) -> None:
        if carry_cycles is None:
            self._carry_start = {}
        else:
            self._carry_start = {
                key: start - carry_cycles
                for key, start in self._local_start.items()
            }
        self._local_start.clear()

    def mark_prefulfilled(self, ins) -> None:
        self._fulfilled.add(id(ins))

    def mark_issued(self, ins, cycle: int) -> None:
        self._fulfilled.add(id(ins))
        self._local_start[id(ins)] = cycle

    def is_fulfilled(self, ins) -> bool:
        return id(ins) in self._fulfilled

    def deps_satisfied(self, ins) -> bool:
        return all(
            id(edge.src) in self._fulfilled for edge in self.ddg.preds(ins)
        )

    def earliest_start(self, ins) -> int:
        earliest = 0
        for edge in self.ddg.preds(ins):
            start = self._local_start.get(id(edge.src))
            if start is None:
                start = self._carry_start.get(id(edge.src))
            if start is not None:
                earliest = max(earliest, start + self.edge_weight(edge))
        return earliest

    def start_of(self, ins) -> int | None:
        return self._local_start.get(id(ins))


def verify_function_reference(func) -> None:
    """The seed IR verifier behaviour: every check formats its error
    message (including the instruction ``repr``) whether it fails or not."""
    from ..ir.opcodes import Opcode
    from ..ir.operand import CR_EQ, CR_GT, CR_LT, RegClass
    from ..ir.verify import VerificationError

    def _check(cond, message):
        if not cond:
            raise VerificationError(message)

    _check(bool(func.blocks), f"{func.name}: function has no blocks")
    seen_uids: set[int] = set()
    labels = {b.label for b in func.blocks}
    _check(len(labels) == len(func.blocks), f"{func.name}: duplicate labels")
    for block in func.blocks:
        where = f"{func.name}/{block.label}"
        for i, ins in enumerate(block.instrs):
            _check(ins.uid >= 0, f"{where}: {ins!r} has no uid")
            _check(ins.uid not in seen_uids,
                   f"{where}: duplicate uid I{ins.uid}")
            seen_uids.add(ins.uid)
            is_last = i == len(block.instrs) - 1
            _check(not ins.is_branch or is_last,
                   f"{where}: branch {ins!r} is not the block terminator")
            op = ins.opcode
            _check((ins.mem is not None) == (op.is_load or op.is_store),
                   f"{where}: {ins!r} memory operand mismatch")
            if op in (Opcode.BT, Opcode.BF):
                _check(ins.mask in (CR_LT, CR_GT, CR_EQ),
                       f"{where}: {ins!r} mask must be a single LT/GT/EQ bit")
                _check(len(ins.uses) == 1
                       and ins.uses[0].rclass is RegClass.CR,
                       f"{where}: {ins!r} must test a condition register")
                _check(ins.target is not None,
                       f"{where}: {ins!r} missing target")
            if op in (Opcode.B, Opcode.BDNZ):
                _check(ins.target is not None,
                       f"{where}: {ins!r} missing target")
            if op.is_compare:
                _check(len(ins.defs) == 1
                       and ins.defs[0].rclass is RegClass.CR,
                       f"{where}: {ins!r} must define a condition register")
            if op in (Opcode.L, Opcode.LU, Opcode.ST, Opcode.STU):
                for reg in ins.defs + ins.uses:
                    _check(reg.rclass is RegClass.GPR,
                           f"{where}: {ins!r} fixed-point memory op uses {reg}")
            if op is Opcode.LI:
                _check(ins.imm is not None,
                       f"{where}: {ins!r} missing immediate")
            if op in (Opcode.AI, Opcode.SI, Opcode.ANDI, Opcode.ORI,
                      Opcode.XORI, Opcode.SL, Opcode.SR, Opcode.SRA,
                      Opcode.CI):
                _check(ins.imm is not None,
                       f"{where}: {ins!r} missing immediate")
            if op.is_load:
                _check(len(ins.defs) >= 1,
                       f"{where}: {ins!r} load defines nothing")
            if op is Opcode.CALL:
                _check(ins.target, f"{where}: {ins!r} call needs a callee name")
            if ins.target is not None and not ins.is_call:
                _check(ins.target in labels,
                       f"{where}: branch target {ins.target!r} does not exist")


def _make_uncached_analyses():
    """An :class:`repro.dataflow.cache.AnalysisCache` stand-in that
    recomputes every analysis on every call (the seed pipeline rebuilt the
    CFG, dominators, loop nest and liveness at each use site)."""
    from ..dataflow.cache import AnalysisCache

    class UncachedAnalyses(AnalysisCache):
        def cfg(self):
            self._cfg = None
            return super().cfg()

        def dominators(self):
            self._cfg = None
            self._dom = None
            return super().dominators()

        def loop_nest(self):
            self._cfg = None
            self._dom = None
            self._nest = None
            return super().loop_nest()

        def liveness(self, live_at_exit):
            self._cfg = None
            self._liveness.clear()
            self._dense = None
            self._use_def = None
            return super().liveness(live_at_exit)

        def dense_cfg(self):
            self._cfg = None
            self._dense = None
            return super().dense_cfg()

        def block_use_def_masks(self):
            self._use_def = None
            return super().block_use_def_masks()

    return UncachedAnalyses


@contextmanager
def seed_pipeline():
    """Run the compiler with *every* reference (seed) hot path restored.

    On top of :func:`reference_pipeline` (per-pair interblock scans,
    heap-based reduction) this swaps in:

    * :class:`DependenceStateReference` -- per-query readiness rescans;
    * :func:`verify_function_reference` -- eager error-message formatting
      in the post-pass IR verifier (``xform.pipeline`` call sites);
    * an uncached analysis bundle -- CFG/dominators/loop-nest/liveness
      rebuilt at every use site;
    * the seed analysis implementations themselves
      (:func:`repro.dataflow.reference._analysis_reference_patches`):
      dict-based dominators/loops/reducibility, frozenset liveness,
      set-adjacency interference, and the dict-state rescan basic-block
      scheduler.

    This is the fuzz-throughput baseline of ``benchmarks/perf``.  The
    reference DDG builder itself also restores the seed's copy-returning
    ``succs()``/``preds()`` (:class:`_CopyingDDG`) and per-loop-iteration
    ``reg_uses()``/``reg_defs()`` scan.  A few seed costs are *not*
    restorable from here and stay optimized in both arms (so measured
    speedups understate the full gain): the cached ``Reg.__hash__`` and
    the flattened ``Opcode`` flag attributes.
    """
    from ..dataflow.reference import _analysis_reference_patches
    from ..ir import verify as ir_verify
    from ..lang import lower as lang_lower
    from ..sched import bb_sched, driver, global_sched
    from ..sched.reference import LiveOnExitTrackerReference
    from ..verify import verifier as sched_verifier
    from ..xform import pipeline as xform_pipeline

    uncached = _make_uncached_analyses()
    patches = [
        *_analysis_reference_patches(),
        (global_sched, "_ENGINE", "scan"),
        (global_sched, "DependenceState", DependenceStateReference),
        (bb_sched, "DependenceState", DependenceStateReference),
        (driver, "LiveOnExitTracker", LiveOnExitTrackerReference),
        (xform_pipeline, "verify_function", verify_function_reference),
        (ir_verify, "verify_function", verify_function_reference),
        (sched_verifier, "verify_function", verify_function_reference),
        (lang_lower, "verify_function", verify_function_reference),
        (xform_pipeline, "AnalysisCache", uncached),
        (driver, "AnalysisCache", uncached),
    ]
    saved = [(mod, name, getattr(mod, name)) for mod, name, _ in patches]
    with reference_pipeline():
        for mod, name, value in patches:
            setattr(mod, name, value)
        try:
            yield
        finally:
            for mod, name, value in saved:
                setattr(mod, name, value)
