"""The control subgraph of the PDG (CSPDG), Figure 4 of the paper.

Nodes are the basic blocks of a region; a solid edge ``A -> B`` (labelled
with a condition) means ``B`` executes iff the condition at the end of ``A``
takes the corresponding outcome.  Dashed edges connect *equivalent* nodes
(identically control dependent), directed by dominance.

The CSPDG answers the scheduler's three questions:

* ``EQUIV(A)`` -- which blocks are equivalent to ``A`` and dominated by it
  (sources of *useful* code motion, Definitions 3-4);
* the immediate CSPDG successors of ``A`` -- sources of *1-branch
  speculative* motion (Definition 7 with ``n = 1``);
* ``speculation_degree(A, B)`` -- how many branches a motion from ``B`` to
  ``A`` gambles on (the CSPDG path length, Definition 7).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable

from ..cfg.digraph import Digraph
from ..cfg.dominators import DominatorTree
from .control_deps import ControlDep, control_dependences

Node = Hashable

#: Optional pretty-printer for edge conditions (e.g. "T"/"F").
EdgeLabeller = Callable[[Node, Node], str]


class CSPDG:
    """Control subgraph of the PDG for one region."""

    def __init__(
        self,
        forward: Digraph,
        entry: Node,
        exit_node: Node,
        dom: DominatorTree,
        pdom: DominatorTree,
        *,
        blocks: list[Node] | None = None,
    ):
        """Build from an acyclic forward graph.

        ``dom``/``pdom`` are the (post)dominator trees of the same forward
        graph; ``blocks`` restricts the public node set (e.g. to exclude the
        virtual ENTRY/EXIT and abstract loop nodes).
        """
        self.entry = entry
        self.exit = exit_node
        self.dom = dom
        self.pdom = pdom
        self._cd = control_dependences(forward, entry, exit_node)
        self.blocks: list[Node] = list(
            blocks if blocks is not None
            else [n for n in forward.nodes if n not in (entry, exit_node)]
        )
        block_set = set(self.blocks)

        # Solid edges: branch -> dependent node.
        self._succs: dict[Node, list[tuple[Node, ControlDep]]] = {
            n: [] for n in self.blocks
        }
        for node in self.blocks:
            for dep in sorted(self._cd[node], key=repr):
                if dep.branch in block_set:
                    self._succs[dep.branch].append((node, dep))

        # Equivalence classes: identical control-dependence sets.
        by_cd: dict[frozenset[ControlDep], list[Node]] = {}
        for node in self.blocks:
            by_cd.setdefault(self._cd[node], []).append(node)
        self._classes = [
            sorted(members, key=self.dom.depth)
            for members in by_cd.values()
        ]
        self._class_of: dict[Node, list[Node]] = {}
        for cls in self._classes:
            for node in cls:
                self._class_of[node] = cls

    # -- queries -----------------------------------------------------------

    def control_deps(self, node: Node) -> frozenset[ControlDep]:
        """The conditions under which ``node`` executes."""
        return self._cd[node]

    def successors(self, node: Node) -> list[Node]:
        """Immediate CSPDG successors: blocks control dependent on ``node``."""
        seen: list[Node] = []
        for succ, _dep in self._succs[node]:
            if succ not in seen and succ != node:
                seen.append(succ)
        return seen

    def edges(self) -> list[tuple[Node, Node, ControlDep]]:
        """All solid edges as (branch, dependent, condition)."""
        return [
            (branch, node, dep)
            for branch, out in self._succs.items()
            for node, dep in out
        ]

    @property
    def equivalence_classes(self) -> list[list[Node]]:
        """Equivalent-node groups, each sorted by dominance (dominators
        first) -- the paper's dashed edges run along this order."""
        return [list(cls) for cls in self._classes]

    def equivalent_nodes(self, node: Node) -> list[Node]:
        """All nodes identically control dependent with ``node`` (incl. it)."""
        return list(self._class_of[node])

    def equiv_dominated(self, node: Node) -> list[Node]:
        """The paper's ``EQUIV(A)``: blocks equivalent to ``A`` *and*
        dominated by ``A`` (Section 5.1), in dominance order."""
        return [
            other
            for other in self._class_of[node]
            if other != node and self.dom.strictly_dominates(node, other)
        ]

    def are_equivalent(self, a: Node, b: Node) -> bool:
        """Definition 3 via identical control dependences."""
        return self._class_of.get(a) is self._class_of.get(b)

    def speculation_degree(self, src: Node, dst: Node) -> int | None:
        """Length of the shortest CSPDG path ``src -> dst`` (Definition 7).

        0 means equivalent placement is possible without gambling (src == dst
        or same class); ``None`` means no CSPDG path exists, i.e. moving
        from ``dst`` to ``src`` is not an upward motion along control
        dependences (it would require duplication instead).
        """
        if src == dst or self.are_equivalent(src, dst):
            return 0
        # BFS over solid edges; equivalence is a free (0-cost) move, so the
        # search expands whole equivalence classes at each step.
        start = set(self._class_of[src])
        dist: dict[Node, int] = {n: 0 for n in start}
        queue: deque[Node] = deque(start)
        while queue:
            node = queue.popleft()
            for succ in self.successors(node):
                for member in self._class_of[succ]:
                    if member not in dist:
                        dist[member] = dist[node] + 1
                        queue.append(member)
                if dst in dist:
                    return dist[dst]
        return dist.get(dst)

    # -- rendering ------------------------------------------------------------

    def format(self, labeller: EdgeLabeller | None = None) -> str:
        """A textual rendering of Figure 4: solid and dashed edges."""
        lines = ["CSPDG:"]
        for branch, out in self._succs.items():
            for node, dep in out:
                label = labeller(dep.branch, dep.succ) if labeller else str(dep.succ)
                lines.append(f"  {branch} --[{label}]--> {node}")
        for cls in self._classes:
            for a, b in zip(cls, cls[1:]):
                lines.append(f"  {a} ~~(equiv)~~> {b}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<CSPDG {len(self.blocks)} blocks, "
                f"{len(self.edges())} edges, "
                f"{len(self._classes)} equivalence classes>")
