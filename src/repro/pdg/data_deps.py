"""The data-dependence subgraph of the PDG (Section 4.2).

Edges are inserted between instructions ``a`` (earlier) and ``b`` (later)
when:

* a register defined in ``a`` is used in ``b`` (*flow*),
* a register used in ``a`` is defined in ``b`` (*anti*),
* a register defined in ``a`` is defined in ``b`` (*output*),
* both touch memory and are not proven independent (*memory*), where
  load/load pairs never conflict and the base+offset analysis of
  :mod:`repro.pdg.memory` proves the rest.

Only flow edges carry (potentially non-zero) machine delays; all other
kinds carry zero (Section 4.2).  Dependences are computed both within
blocks and between every ordered pair of blocks ``(A, B)`` with ``B``
reachable from ``A`` in the forward control flow graph.

The paper avoids materialising transitive edges; we build the natural edge
set and provide a delay-aware :func:`transitive_reduce` that removes any
edge implied by a longer-or-equal path, which the scheduler applies to keep
ready-list bookkeeping small.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..ir.basic_block import BasicBlock
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from ..machine.model import MachineModel
from .memory import AddressTracker, SymbolicAddress, may_conflict


class DepKind(Enum):
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    MEM = "mem"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DepKind.{self.name}"


@dataclass(frozen=True)
class DepEdge:
    """A dependence ``src -> dst``: dst must start >= start(src) + weight.

    ``weight = exec_time(src) + delay`` for flow edges; for anti/output/
    memory edges the paper's delays are zero, but ``dst`` must still start
    no earlier than ``src`` -- we encode that as weight 0 with *issue order*
    preserved by the scheduler (an instruction is only ready once all its
    predecessors have been issued).
    """

    src: Instruction
    dst: Instruction
    kind: DepKind
    delay: int
    reg: Reg | None = None

    def __repr__(self) -> str:
        tag = f" {self.reg}" if self.reg is not None else ""
        return (f"<{self.kind.value}{tag} I{self.src.uid}->I{self.dst.uid}"
                f" d={self.delay}>")


class DataDependenceGraph:
    """Dependence edges over a set of instructions, keyed by identity."""

    def __init__(self) -> None:
        self._succs: dict[int, list[DepEdge]] = {}
        self._preds: dict[int, list[DepEdge]] = {}
        self._by_pair: dict[tuple[int, int], DepEdge] = {}
        self.instructions: list[Instruction] = []
        self._known: set[int] = set()

    # -- construction --------------------------------------------------------

    def add_instruction(self, ins: Instruction) -> None:
        if id(ins) not in self._known:
            self._known.add(id(ins))
            self.instructions.append(ins)
            self._succs[id(ins)] = []
            self._preds[id(ins)] = []

    def add_edge(self, src: Instruction, dst: Instruction, kind: DepKind,
                 delay: int, reg: Reg | None = None) -> None:
        """Insert an edge; parallel edges keep only the strongest delay."""
        if src is dst:
            return
        self.add_instruction(src)
        self.add_instruction(dst)
        key = (id(src), id(dst))
        existing = self._by_pair.get(key)
        if existing is not None and existing.delay >= delay:
            return
        edge = DepEdge(src, dst, kind, delay, reg)
        if existing is not None:
            self._succs[id(src)].remove(existing)
            self._preds[id(dst)].remove(existing)
        self._by_pair[key] = edge
        self._succs[id(src)].append(edge)
        self._preds[id(dst)].append(edge)

    def remove_edge(self, edge: DepEdge) -> None:
        key = (id(edge.src), id(edge.dst))
        if self._by_pair.get(key) is edge:
            del self._by_pair[key]
            self._succs[id(edge.src)].remove(edge)
            self._preds[id(edge.dst)].remove(edge)

    # -- queries -----------------------------------------------------------------

    def succs(self, ins: Instruction) -> list[DepEdge]:
        return list(self._succs.get(id(ins), ()))

    def preds(self, ins: Instruction) -> list[DepEdge]:
        return list(self._preds.get(id(ins), ()))

    def edges(self) -> list[DepEdge]:
        return list(self._by_pair.values())

    def has_edge(self, src: Instruction, dst: Instruction) -> bool:
        return (id(src), id(dst)) in self._by_pair

    def edge(self, src: Instruction, dst: Instruction) -> DepEdge | None:
        return self._by_pair.get((id(src), id(dst)))

    def __repr__(self) -> str:
        return (f"<DataDependenceGraph {len(self.instructions)} instrs, "
                f"{len(self._by_pair)} edges>")


def _edge_weight(machine: MachineModel, edge: DepEdge) -> int:
    """Minimum start-to-start separation the edge imposes."""
    if edge.kind is DepKind.FLOW:
        return machine.exec_time(edge.src) + edge.delay
    return 0


class _BlockScanState:
    """Running last-def / uses-since-def / memory state for one block scan."""

    def __init__(self) -> None:
        self.last_def: dict[Reg, Instruction] = {}
        self.uses_since_def: dict[Reg, list[Instruction]] = {}
        self.mem_ops: list[tuple[Instruction, SymbolicAddress | None]] = []
        self.tracker = AddressTracker()


def _scan_block(ddg: DataDependenceGraph, block: BasicBlock,
                machine: MachineModel) -> None:
    """Intra-block dependences via a single forward scan.

    The scan inherently avoids most transitive edges: a flow edge is only
    drawn from the *last* definition, an output edge only from the previous
    definition, etc.
    """
    state = _BlockScanState()
    for ins in block.instrs:
        ddg.add_instruction(ins)
        # flow: last def of each used register
        for reg in ins.reg_uses():
            producer = state.last_def.get(reg)
            if producer is not None:
                delay = machine.flow_delay(producer, ins, reg)
                ddg.add_edge(producer, ins, DepKind.FLOW, delay, reg)
        # memory ordering
        if ins.touches_memory:
            addr = (state.tracker.address_of(ins.mem)
                    if ins.mem is not None else None)
            for prev, prev_addr in state.mem_ops:
                if may_conflict(prev, prev_addr, ins, addr):
                    ddg.add_edge(prev, ins, DepKind.MEM, 0)
            state.mem_ops.append((ins, addr))
        # anti and output
        for reg in ins.reg_defs():
            for user in state.uses_since_def.get(reg, ()):
                ddg.add_edge(user, ins, DepKind.ANTI, 0, reg)
            previous = state.last_def.get(reg)
            if previous is not None:
                ddg.add_edge(previous, ins, DepKind.OUTPUT, 0, reg)
        # update state
        for reg in ins.reg_uses():
            state.uses_since_def.setdefault(reg, []).append(ins)
        for reg in ins.reg_defs():
            state.last_def[reg] = ins
            state.uses_since_def[reg] = []
        state.tracker.step(ins)


def _interblock_edges(ddg: DataDependenceGraph, earlier: BasicBlock,
                      later: BasicBlock, machine: MachineModel) -> None:
    """Dependences from every instruction of ``earlier`` to ``later``.

    Conservative on memory: cross-block references are never disambiguated
    (the base registers' values at block entry depend on the path taken).
    """
    # Summarise the earlier block once.
    defs_of: dict[Reg, list[Instruction]] = {}
    uses_of: dict[Reg, list[Instruction]] = {}
    mem_ops: list[Instruction] = []
    for a in earlier.instrs:
        for reg in a.reg_defs():
            defs_of.setdefault(reg, []).append(a)
        for reg in a.reg_uses():
            uses_of.setdefault(reg, []).append(a)
        if a.touches_memory:
            mem_ops.append(a)

    for b in later.instrs:
        ddg.add_instruction(b)
        for reg in b.reg_uses():
            for a in defs_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.FLOW,
                             machine.flow_delay(a, b, reg), reg)
        for reg in b.reg_defs():
            for a in uses_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.ANTI, 0, reg)
            for a in defs_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.OUTPUT, 0, reg)
        if b.touches_memory:
            for a in mem_ops:
                if may_conflict(a, None, b, None):
                    ddg.add_edge(a, b, DepKind.MEM, 0)


def build_block_ddg(block: BasicBlock, machine: MachineModel,
                    *, reduce: bool = True) -> DataDependenceGraph:
    """Intra-block DDG (used by the basic-block scheduler)."""
    ddg = DataDependenceGraph()
    _scan_block(ddg, block, machine)
    if reduce:
        transitive_reduce(ddg, machine)
    return ddg


def build_region_ddg(
    blocks: list[BasicBlock],
    reachable_pairs: set[tuple[str, str]],
    machine: MachineModel,
    *, reduce: bool = True,
) -> DataDependenceGraph:
    """DDG over a region.

    ``blocks`` must be in topological order of the region's forward CFG;
    ``reachable_pairs`` contains every ordered pair of labels ``(A, B)``
    with ``B`` reachable from ``A`` along forward edges (Section 4.2:
    "for each pair A and B of basic blocks such that B is reachable from
    A ... the interblock data dependences are computed").
    """
    ddg = DataDependenceGraph()
    for block in blocks:
        _scan_block(ddg, block, machine)
    for i, earlier in enumerate(blocks):
        for later in blocks[i + 1:]:
            if (earlier.label, later.label) in reachable_pairs:
                _interblock_edges(ddg, earlier, later, machine)
    if reduce:
        transitive_reduce(ddg, machine)
    return ddg


def transitive_reduce(ddg: DataDependenceGraph,
                      machine: MachineModel) -> int:
    """Remove edges implied by stronger-or-equal multi-edge paths.

    An edge ``(a, b)`` with separation ``w`` is redundant iff some path
    ``a -> ... -> b`` of at least two edges already forces a separation
    ``>= w``.  Returns the number of edges removed.  This mirrors the
    paper's "there is no need to compute the edge from a to c" observation,
    generalised to be delay-aware: a transitive edge must be *kept* when it
    carries a longer delay than the path through the middle instruction.
    """
    order = topo_order(ddg)
    position = {id(ins): i for i, ins in enumerate(order)}
    removed = 0
    for a in order:
        out_edges = ddg.succs(a)
        if len(out_edges) < 2:
            continue
        dist = _longest_from(ddg, a, machine, position)
        for edge in out_edges:
            w = _edge_weight(machine, edge)
            # Longest a->b path whose final hop is (m, b) with m != a.
            best_multi = max(
                (
                    dist[id(in_edge.src)] + _edge_weight(machine, in_edge)
                    for in_edge in ddg.preds(edge.dst)
                    if in_edge.src is not a and id(in_edge.src) in dist
                ),
                default=None,
            )
            if best_multi is not None and best_multi >= w:
                ddg.remove_edge(edge)
                removed += 1
    return removed


def topo_order(ddg: DataDependenceGraph) -> list[Instruction]:
    """A topological order of the dependence DAG (raises on cycles)."""
    indeg = {id(ins): 0 for ins in ddg.instructions}
    for edge in ddg.edges():
        indeg[id(edge.dst)] += 1
    ready = [ins for ins in ddg.instructions if indeg[id(ins)] == 0]
    order: list[Instruction] = []
    while ready:
        ins = ready.pop()
        order.append(ins)
        for edge in ddg.succs(ins):
            indeg[id(edge.dst)] -= 1
            if indeg[id(edge.dst)] == 0:
                ready.append(edge.dst)
    if len(order) != len(ddg.instructions):
        raise ValueError("data dependence graph has a cycle")
    return order


def _longest_from(ddg: DataDependenceGraph, src: Instruction,
                  machine: MachineModel,
                  position: dict[int, int]) -> dict[int, int]:
    """Longest-path separations from ``src`` (DAG dynamic programming)."""
    import heapq

    dist: dict[int, int] = {id(src): 0}
    heap = [(position[id(src)], id(src), src)]
    done: set[int] = set()
    while heap:
        _, _, ins = heapq.heappop(heap)
        if id(ins) in done:
            continue
        done.add(id(ins))
        for edge in ddg.succs(ins):
            cand = dist[id(ins)] + _edge_weight(machine, edge)
            if cand > dist.get(id(edge.dst), -1):
                dist[id(edge.dst)] = cand
            if id(edge.dst) not in done:
                heapq.heappush(
                    heap, (position[id(edge.dst)], id(edge.dst), edge.dst)
                )
    return dist
