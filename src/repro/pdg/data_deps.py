"""The data-dependence subgraph of the PDG (Section 4.2).

Edges are inserted between instructions ``a`` (earlier) and ``b`` (later)
when:

* a register defined in ``a`` is used in ``b`` (*flow*),
* a register used in ``a`` is defined in ``b`` (*anti*),
* a register defined in ``a`` is defined in ``b`` (*output*),
* both touch memory and are not proven independent (*memory*), where
  load/load pairs never conflict and the base+offset analysis of
  :mod:`repro.pdg.memory` proves the rest.

Only flow edges carry (potentially non-zero) machine delays; all other
kinds carry zero (Section 4.2).  Dependences are computed both within
blocks and between every ordered pair of blocks ``(A, B)`` with ``B``
reachable from ``A`` in the forward control flow graph.

The interblock pass summarises each block's defs/uses/memory traffic
*once* and merges the summaries of a block's forward-reachable
predecessors along the region's topological order, so each block's
instructions are scanned O(1) times instead of once per reachable pair
(the paper reports negligible compile-time cost for this phase; the seed
implementation re-scanned the earlier block of every pair and is kept in
:mod:`repro.pdg.reference` for differential testing).

The paper avoids materialising transitive edges; we build the natural edge
set and provide a delay-aware :func:`transitive_reduce` that removes any
edge implied by a longer-or-equal path, which the scheduler applies to keep
ready-list bookkeeping small.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from ..ir.basic_block import BasicBlock
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from ..machine.model import MachineModel
from .memory import AddressTracker, SymbolicAddress, may_conflict


class DepKind(Enum):
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    MEM = "mem"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DepKind.{self.name}"


@dataclass(frozen=True, eq=False)
class DepEdge:
    """A dependence ``src -> dst``: dst must start >= start(src) + weight.

    Compares (and hashes) by identity: ``src``/``dst`` are
    identity-compared instructions and ``_by_pair`` keeps a single edge
    per pair, so value equality could only ever match the same object --
    while making every ``list.remove`` in the graph a field-by-field
    scan.

    ``weight = exec_time(src) + delay`` for flow edges; for anti/output/
    memory edges the paper's delays are zero, but ``dst`` must still start
    no earlier than ``src`` -- we encode that as weight 0 with *issue order*
    preserved by the scheduler (an instruction is only ready once all its
    predecessors have been issued).
    """

    src: Instruction
    dst: Instruction
    kind: DepKind
    delay: int
    reg: Reg | None = None

    def __repr__(self) -> str:
        tag = f" {self.reg}" if self.reg is not None else ""
        return (f"<{self.kind.value}{tag} I{self.src.uid}->I{self.dst.uid}"
                f" d={self.delay}>")


class DataDependenceGraph:
    """Dependence edges over a set of instructions, keyed by identity.

    ``succs``/``preds`` return **read-only views** of the internal adjacency
    lists (the scheduler queries them on its inner loop, so per-call copies
    were measurable); a caller that mutates the graph while iterating must
    snapshot first (``list(ddg.succs(ins))``).  Every mutation bumps
    :attr:`version`, which incremental consumers (the scheduler's
    :class:`~repro.sched.ready.DependenceState`) use to invalidate their
    derived state.
    """

    def __init__(self) -> None:
        self._succs: dict[int, list[DepEdge]] = {}
        self._preds: dict[int, list[DepEdge]] = {}
        self._by_pair: dict[tuple[int, int], DepEdge] = {}
        self.instructions: list[Instruction] = []
        self._known: set[int] = set()
        #: bumped on every edge insertion/removal (for cache invalidation)
        self.version = 0
        #: (version, machine, DenseDDG) cache for :meth:`to_dense`
        self._dense: tuple | None = None

    # -- construction --------------------------------------------------------

    def add_instruction(self, ins: Instruction) -> None:
        if id(ins) not in self._known:
            self._known.add(id(ins))
            self.instructions.append(ins)
            self._succs[id(ins)] = []
            self._preds[id(ins)] = []

    def add_edge(self, src: Instruction, dst: Instruction, kind: DepKind,
                 delay: int, reg: Reg | None = None) -> None:
        """Insert an edge; parallel edges keep only the strongest delay."""
        if src is dst:
            return
        src_id = id(src)
        dst_id = id(dst)
        # inline the known-instruction checks: edge insertion is the
        # single hottest call of region-DDG construction and endpoints
        # are almost always registered already
        if src_id not in self._known:
            self.add_instruction(src)
        if dst_id not in self._known:
            self.add_instruction(dst)
        key = (src_id, dst_id)
        existing = self._by_pair.get(key)
        if existing is not None and existing.delay >= delay:
            return
        edge = DepEdge(src, dst, kind, delay, reg)
        if existing is not None:
            self._succs[src_id].remove(existing)
            self._preds[dst_id].remove(existing)
        self._by_pair[key] = edge
        self._succs[src_id].append(edge)
        self._preds[dst_id].append(edge)
        self.version += 1

    def remove_edge(self, edge: DepEdge) -> None:
        key = (id(edge.src), id(edge.dst))
        if self._by_pair.get(key) is edge:
            del self._by_pair[key]
            self._succs[id(edge.src)].remove(edge)
            self._preds[id(edge.dst)].remove(edge)
            self.version += 1

    # -- queries -----------------------------------------------------------------

    _NO_EDGES: Sequence[DepEdge] = ()

    def succs(self, ins: Instruction) -> Sequence[DepEdge]:
        """Outgoing edges of ``ins`` -- a read-only view, do not mutate."""
        return self._succs.get(id(ins), self._NO_EDGES)

    def preds(self, ins: Instruction) -> Sequence[DepEdge]:
        """Incoming edges of ``ins`` -- a read-only view, do not mutate."""
        return self._preds.get(id(ins), self._NO_EDGES)

    def edges(self) -> list[DepEdge]:
        return list(self._by_pair.values())

    def iter_edges(self):
        """All edges without the :meth:`edges` list copy (read-only; do not
        mutate the graph while iterating)."""
        return self._by_pair.values()

    def edge_count(self) -> int:
        return len(self._by_pair)

    def has_edge(self, src: Instruction, dst: Instruction) -> bool:
        return (id(src), id(dst)) in self._by_pair

    def edge(self, src: Instruction, dst: Instruction) -> DepEdge | None:
        return self._by_pair.get((id(src), id(dst)))

    def to_dense(self, machine: MachineModel) -> "DenseDDG":
        """A struct-of-arrays snapshot of this graph (see :class:`DenseDDG`).

        Cached per ``(version, machine)``: mutation bumps :attr:`version`
        and the next call rebuilds.  Because :attr:`instructions` is
        append-only, an instruction's dense index is stable across
        rebuilds -- consumers may keep per-index facts (fulfilment flags,
        issue cycles) alive over graph mutations and only extend them.
        """
        cached = self._dense
        if (cached is not None and cached[0] == self.version
                and cached[1] is machine):
            return cached[2]
        dense = DenseDDG(self, machine)
        self._dense = (self.version, machine, dense)
        return dense

    def __repr__(self) -> str:
        return (f"<DataDependenceGraph {len(self.instructions)} instrs, "
                f"{len(self._by_pair)} edges>")


class DenseDDG:
    """Read-only struct-of-arrays view of one :class:`DataDependenceGraph`.

    Instructions are interned to dense indices (``index``: ``id(ins) ->
    position in the append-only instruction list``) and the adjacency is
    flattened to CSR posting lists: the successors of instruction ``i``
    are ``succ_idx[succ_off[i]:succ_off[i+1]]`` with the minimum
    start-to-start separations in the parallel ``succ_w`` slice
    (``exec_time(src) + delay`` for flow edges, 0 otherwise -- the weights
    are machine-dependent, which is why the snapshot is taken against a
    machine model).  ``pred_*`` is the transpose.  The scheduler's hot
    loop runs entirely on these int arrays; edge *kind*/*reg* metadata
    stays behind on the object graph, which remains the source of truth
    for mutation.
    """

    __slots__ = ("version", "n", "instrs", "index",
                 "succ_off", "succ_idx", "succ_w",
                 "pred_off", "_pi", "_pw")

    def __init__(self, ddg: DataDependenceGraph, machine: MachineModel):
        from array import array

        instrs = ddg.instructions
        n = len(instrs)
        index = {id(ins): i for i, ins in enumerate(instrs)}
        exec_time = machine.exec_time
        flow = DepKind.FLOW
        succ_off = [0] * (n + 1)
        si: list[int] = []
        sw: list[int] = []
        for i, ins in enumerate(instrs):
            exec_i = exec_time(ins)
            for edge in ddg._succs[id(ins)]:
                si.append(index[id(edge.dst)])
                sw.append(exec_i + edge.delay if edge.kind is flow else 0)
            succ_off[i + 1] = len(si)
        # predecessor *degrees* (pred_off) are cheap and always needed
        # (the fresh-state fast path reads only them); the transposed
        # posting lists are built lazily on first pred_idx/pred_w access
        # -- a block pass with no carried timing never pays for them
        pred_off = [0] * (n + 1)
        for j in si:
            pred_off[j + 1] += 1
        for j in range(n):
            pred_off[j + 1] += pred_off[j]
        self.version = ddg.version
        self.n = n
        self.instrs = list(instrs)
        self.index = index
        self.succ_off = array("i", succ_off)
        self.succ_idx = array("i", si)
        self.succ_w = array("i", sw)
        self.pred_off = array("i", pred_off)
        self._pi = None
        self._pw = None

    def _transpose(self):
        """Counting-sort transpose of the succ CSR -- pure int work, no
        second walk of the edge objects (within one node's pred list the
        order is by source index; no consumer is order-sensitive)."""
        from array import array

        succ_off = self.succ_off
        si = self.succ_idx
        sw = self.succ_w
        cursor = list(self.pred_off)
        m = len(si)
        pi = [0] * m
        pw = [0] * m
        for i in range(self.n):
            for k in range(succ_off[i], succ_off[i + 1]):
                j = si[k]
                p = cursor[j]
                pi[p] = i
                pw[p] = sw[k]
                cursor[j] = p + 1
        self._pi = array("i", pi)
        self._pw = array("i", pw)

    @property
    def pred_idx(self):
        if self._pi is None:
            self._transpose()
        return self._pi

    @property
    def pred_w(self):
        if self._pw is None:
            self._transpose()
        return self._pw

    def nbytes(self) -> int:
        """Approximate footprint of the *materialized* flat tables
        (observability; does not force the lazy transpose)."""
        total = 0
        for arr in (self.succ_off, self.succ_idx, self.succ_w,
                    self.pred_off, self._pi, self._pw):
            if arr is not None:
                total += arr.itemsize * len(arr)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DenseDDG {self.n} instrs, {len(self.succ_idx)} edges, "
                f"v{self.version}>")


def _edge_weight(machine: MachineModel, edge: DepEdge) -> int:
    """Minimum start-to-start separation the edge imposes."""
    if edge.kind is DepKind.FLOW:
        return machine.exec_time(edge.src) + edge.delay
    return 0


class _BlockScanState:
    """Running last-def / uses-since-def / memory state for one block scan."""

    def __init__(self) -> None:
        self.last_def: dict[Reg, Instruction] = {}
        self.uses_since_def: dict[Reg, list[Instruction]] = {}
        self.mem_ops: list[tuple[Instruction, SymbolicAddress | None]] = []
        self.tracker = AddressTracker()


def _scan_block(ddg: DataDependenceGraph, block: BasicBlock,
                machine: MachineModel) -> None:
    """Intra-block dependences via a single forward scan.

    The scan inherently avoids most transitive edges: a flow edge is only
    drawn from the *last* definition, an output edge only from the previous
    definition, etc.
    """
    state = _BlockScanState()
    last_def = state.last_def
    uses_since_def = state.uses_since_def
    add_edge = ddg.add_edge
    flow_delay = machine.flow_delay
    for ins in block.instrs:
        ddg.add_instruction(ins)
        uses = ins.reg_uses()
        defs = ins.reg_defs()
        # flow: last def of each used register
        for reg in uses:
            producer = last_def.get(reg)
            if producer is not None:
                delay = flow_delay(producer, ins, reg)
                add_edge(producer, ins, DepKind.FLOW, delay, reg)
        # memory ordering
        if ins.opcode.touches_memory:
            addr = (state.tracker.address_of(ins.mem)
                    if ins.mem is not None else None)
            for prev, prev_addr in state.mem_ops:
                if may_conflict(prev, prev_addr, ins, addr):
                    add_edge(prev, ins, DepKind.MEM, 0)
            state.mem_ops.append((ins, addr))
        # anti and output
        for reg in defs:
            for user in uses_since_def.get(reg, ()):
                add_edge(user, ins, DepKind.ANTI, 0, reg)
            previous = last_def.get(reg)
            if previous is not None:
                add_edge(previous, ins, DepKind.OUTPUT, 0, reg)
        # update state
        for reg in uses:
            uses_since_def.setdefault(reg, []).append(ins)
        for reg in defs:
            last_def[reg] = ins
            uses_since_def[reg] = []
        state.tracker.step(ins)


class _BlockSummary:
    """One block's def/use/memory footprint, computed in a single scan."""

    __slots__ = ("defs_of", "uses_of", "mem_ops")

    def __init__(self, block: BasicBlock) -> None:
        self.defs_of: dict[Reg, list[Instruction]] = {}
        self.uses_of: dict[Reg, list[Instruction]] = {}
        self.mem_ops: list[Instruction] = []
        for a in block.instrs:
            for reg in a.reg_defs():
                self.defs_of.setdefault(reg, []).append(a)
            for reg in a.reg_uses():
                self.uses_of.setdefault(reg, []).append(a)
            if a.opcode.touches_memory:
                self.mem_ops.append(a)


def _interblock_edges(
    ddg: DataDependenceGraph,
    blocks: list[BasicBlock],
    reachable_pairs: set[tuple[str, str]],
    machine: MachineModel,
) -> None:
    """Dependences into each block from every forward-reachable earlier
    block, matched through per-register posting lists.

    Each register maps to the (block index, instruction list) postings of
    the blocks that define or use it, so a later block only ever touches
    the registers its own instructions mention -- re-merging every source
    summary per later block visited every register of every earlier block
    instead.  Postings are in topological block order, which keeps the
    edge insertion sequence identical to a per-source merge.

    Conservative on memory: cross-block references are never disambiguated
    (the base registers' values at block entry depend on the path taken).
    """
    summaries = [_BlockSummary(block) for block in blocks]
    defs_at: dict[Reg, list[tuple[int, list[Instruction]]]] = {}
    uses_at: dict[Reg, list[tuple[int, list[Instruction]]]] = {}
    mem_at: list[tuple[int, list[Instruction]]] = []
    for i, summary in enumerate(summaries):
        for reg, instrs in summary.defs_of.items():
            defs_at.setdefault(reg, []).append((i, instrs))
        for reg, instrs in summary.uses_of.items():
            uses_at.setdefault(reg, []).append((i, instrs))
        if summary.mem_ops:
            mem_at.append((i, summary.mem_ops))

    labels = [block.label for block in blocks]
    flow_delay = machine.flow_delay
    add_edge = ddg.add_edge
    no_postings: list[tuple[int, list[Instruction]]] = []
    for j, later in enumerate(blocks):
        later_label = later.label
        srcs = {i for i in range(j)
                if (labels[i], later_label) in reachable_pairs}
        if not srcs:
            continue
        for b in later.instrs:
            for reg in b.reg_uses():
                for i, instrs in defs_at.get(reg, no_postings):
                    if i in srcs:
                        for a in instrs:
                            add_edge(a, b, DepKind.FLOW,
                                     flow_delay(a, b, reg), reg)
            for reg in b.reg_defs():
                for i, instrs in uses_at.get(reg, no_postings):
                    if i in srcs:
                        for a in instrs:
                            add_edge(a, b, DepKind.ANTI, 0, reg)
                for i, instrs in defs_at.get(reg, no_postings):
                    if i in srcs:
                        for a in instrs:
                            add_edge(a, b, DepKind.OUTPUT, 0, reg)
            if b.opcode.touches_memory:
                for i, instrs in mem_at:
                    if i in srcs:
                        for a in instrs:
                            if may_conflict(a, None, b, None):
                                add_edge(a, b, DepKind.MEM, 0)


def build_block_ddg(block: BasicBlock, machine: MachineModel,
                    *, reduce: bool = True) -> DataDependenceGraph:
    """Intra-block DDG (used by the basic-block scheduler)."""
    ddg = DataDependenceGraph()
    _scan_block(ddg, block, machine)
    if reduce:
        transitive_reduce(ddg, machine)
    return ddg


def build_region_ddg(
    blocks: list[BasicBlock],
    reachable_pairs: set[tuple[str, str]],
    machine: MachineModel,
    *, reduce: bool = True,
) -> DataDependenceGraph:
    """DDG over a region.

    ``blocks`` must be in topological order of the region's forward CFG;
    ``reachable_pairs`` contains every ordered pair of labels ``(A, B)``
    with ``B`` reachable from ``A`` along forward edges (Section 4.2:
    "for each pair A and B of basic blocks such that B is reachable from
    A ... the interblock data dependences are computed").

    Each block is scanned exactly once (intra-block edges + its summary);
    cross-block dependences are then matched through per-register posting
    lists (:func:`_interblock_edges`), instead of re-scanning every
    ``(earlier, later)`` pair.
    """
    ddg = DataDependenceGraph()
    for block in blocks:
        _scan_block(ddg, block, machine)
    if len(blocks) > 1:
        _interblock_edges(ddg, blocks, reachable_pairs, machine)
    if reduce:
        transitive_reduce(ddg, machine)
    return ddg


def transitive_reduce(ddg: DataDependenceGraph,
                      machine: MachineModel) -> int:
    """Remove edges implied by stronger-or-equal multi-edge paths.

    An edge ``(a, b)`` with separation ``w`` is redundant iff some path
    ``a -> ... -> b`` of at least two edges already forces a separation
    ``>= w``.  Returns the number of edges removed.  This mirrors the
    paper's "there is no need to compute the edge from a to c" observation,
    generalised to be delay-aware: a transitive edge must be *kept* when it
    carries a longer delay than the path through the middle instruction.

    Topological order, positions and per-edge weights are computed once
    and shared by every source; each source's longest-path sweep is a
    linear scan over the topological slice up to its furthest direct
    successor (no priority queue, no work past the last edge it can
    possibly remove).  The whole pass runs on a dense position-indexed
    snapshot of the adjacency taken before any removal: a removed edge is
    by construction dominated by its (remaining) implying path, so every
    longest-path value and every "best multi-hop path" maximum computed
    from the snapshot equals the one computed from the live graph, and
    the removal set is identical -- while the inner loops touch plain
    list-of-int-tuples instead of edge objects and id() dictionaries.
    Single-successor sources are skipped outright: a parallel multi-edge
    path would need a second out-edge to start from.
    """
    order = topo_order(ddg)
    count = len(order)
    position = {id(ins): i for i, ins in enumerate(order)}
    exec_time = machine.exec_time
    flow = DepKind.FLOW
    #: per-position adjacency snapshots; weights inlined
    out_at: list[list] = [[] for _ in range(count)]   # (dst_pos, w, edge)
    in_at: list[list] = [[] for _ in range(count)]    # (src_pos, w)
    for edge in ddg.iter_edges():
        w = (exec_time(edge.src) + edge.delay
             if edge.kind is flow else 0)
        src_pos = position[id(edge.src)]
        dst_pos = position[id(edge.dst)]
        out_at[src_pos].append((dst_pos, w, edge))
        in_at[dst_pos].append((src_pos, w))
    removed = 0
    dist = [-1] * count  # reused per source; -1 = unreached
    for a_pos in range(count):
        outs = out_at[a_pos]
        if len(outs) < 2:
            continue
        # An edge (a, b) is only removable when some *other* edge enters
        # b: restrict the check set (and the DP horizon) to successors
        # with a second in-edge in the snapshot.  Sources whose
        # successors are all single-predecessor skip the DP outright.
        check = None
        limit = a_pos
        for item in outs:
            dst_pos = item[0]
            if len(in_at[dst_pos]) >= 2:
                if check is None:
                    check = [item]
                else:
                    check.append(item)
                if dst_pos > limit:
                    limit = dst_pos
        if check is None:
            continue
        outs = check
        # Longest-path DP from ``a`` over the topo slice that can matter:
        # every removable edge ends at a checked successor, and every
        # implying path stays strictly within the slice before it.
        dist[a_pos] = 0
        touched = [a_pos]
        for here in range(a_pos, limit):
            d = dist[here]
            if d < 0:
                continue
            for dst_pos, w, _ in out_at[here]:
                if dst_pos > limit:
                    continue
                cand = d + w
                if cand > dist[dst_pos]:
                    if dist[dst_pos] < 0:
                        touched.append(dst_pos)
                    dist[dst_pos] = cand
        for dst_pos, w, edge in outs:
            # Longest a->b path whose final hop is (m, b) with m != a;
            # -1 stands for "no such path" (all real weights are >= 0).
            best_multi = -1
            for src_pos, in_w in in_at[dst_pos]:
                if src_pos == a_pos:
                    continue
                d = dist[src_pos]
                if d >= 0:
                    cand = d + in_w
                    if cand > best_multi:
                        best_multi = cand
            if best_multi >= w:
                ddg.remove_edge(edge)
                removed += 1
        for here in touched:
            dist[here] = -1
    return removed


def topo_order(ddg: DataDependenceGraph) -> list[Instruction]:
    """A topological order of the dependence DAG (raises on cycles)."""
    indeg: dict[int, int] = {}
    ready: list[Instruction] = []
    for ins in ddg.instructions:
        n = len(ddg.preds(ins))
        indeg[id(ins)] = n
        if n == 0:
            ready.append(ins)
    order: list[Instruction] = []
    while ready:
        ins = ready.pop()
        order.append(ins)
        for edge in ddg.succs(ins):
            key = id(edge.dst)
            indeg[key] -= 1
            if indeg[key] == 0:
                ready.append(edge.dst)
    if len(order) != len(ddg.instructions):
        raise ValueError("data dependence graph has a cycle")
    return order
