"""The data-dependence subgraph of the PDG (Section 4.2).

Edges are inserted between instructions ``a`` (earlier) and ``b`` (later)
when:

* a register defined in ``a`` is used in ``b`` (*flow*),
* a register used in ``a`` is defined in ``b`` (*anti*),
* a register defined in ``a`` is defined in ``b`` (*output*),
* both touch memory and are not proven independent (*memory*), where
  load/load pairs never conflict and the base+offset analysis of
  :mod:`repro.pdg.memory` proves the rest.

Only flow edges carry (potentially non-zero) machine delays; all other
kinds carry zero (Section 4.2).  Dependences are computed both within
blocks and between every ordered pair of blocks ``(A, B)`` with ``B``
reachable from ``A`` in the forward control flow graph.

The interblock pass summarises each block's defs/uses/memory traffic
*once* and merges the summaries of a block's forward-reachable
predecessors along the region's topological order, so each block's
instructions are scanned O(1) times instead of once per reachable pair
(the paper reports negligible compile-time cost for this phase; the seed
implementation re-scanned the earlier block of every pair and is kept in
:mod:`repro.pdg.reference` for differential testing).

The paper avoids materialising transitive edges; we build the natural edge
set and provide a delay-aware :func:`transitive_reduce` that removes any
edge implied by a longer-or-equal path, which the scheduler applies to keep
ready-list bookkeeping small.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from ..ir.basic_block import BasicBlock
from ..ir.instruction import Instruction
from ..ir.operand import Reg
from ..machine.model import MachineModel
from .memory import AddressTracker, SymbolicAddress, may_conflict


class DepKind(Enum):
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    MEM = "mem"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DepKind.{self.name}"


@dataclass(frozen=True)
class DepEdge:
    """A dependence ``src -> dst``: dst must start >= start(src) + weight.

    ``weight = exec_time(src) + delay`` for flow edges; for anti/output/
    memory edges the paper's delays are zero, but ``dst`` must still start
    no earlier than ``src`` -- we encode that as weight 0 with *issue order*
    preserved by the scheduler (an instruction is only ready once all its
    predecessors have been issued).
    """

    src: Instruction
    dst: Instruction
    kind: DepKind
    delay: int
    reg: Reg | None = None

    def __repr__(self) -> str:
        tag = f" {self.reg}" if self.reg is not None else ""
        return (f"<{self.kind.value}{tag} I{self.src.uid}->I{self.dst.uid}"
                f" d={self.delay}>")


class DataDependenceGraph:
    """Dependence edges over a set of instructions, keyed by identity.

    ``succs``/``preds`` return **read-only views** of the internal adjacency
    lists (the scheduler queries them on its inner loop, so per-call copies
    were measurable); a caller that mutates the graph while iterating must
    snapshot first (``list(ddg.succs(ins))``).  Every mutation bumps
    :attr:`version`, which incremental consumers (the scheduler's
    :class:`~repro.sched.ready.DependenceState`) use to invalidate their
    derived state.
    """

    def __init__(self) -> None:
        self._succs: dict[int, list[DepEdge]] = {}
        self._preds: dict[int, list[DepEdge]] = {}
        self._by_pair: dict[tuple[int, int], DepEdge] = {}
        self.instructions: list[Instruction] = []
        self._known: set[int] = set()
        #: bumped on every edge insertion/removal (for cache invalidation)
        self.version = 0

    # -- construction --------------------------------------------------------

    def add_instruction(self, ins: Instruction) -> None:
        if id(ins) not in self._known:
            self._known.add(id(ins))
            self.instructions.append(ins)
            self._succs[id(ins)] = []
            self._preds[id(ins)] = []

    def add_edge(self, src: Instruction, dst: Instruction, kind: DepKind,
                 delay: int, reg: Reg | None = None) -> None:
        """Insert an edge; parallel edges keep only the strongest delay."""
        if src is dst:
            return
        self.add_instruction(src)
        self.add_instruction(dst)
        key = (id(src), id(dst))
        existing = self._by_pair.get(key)
        if existing is not None and existing.delay >= delay:
            return
        edge = DepEdge(src, dst, kind, delay, reg)
        if existing is not None:
            self._succs[id(src)].remove(existing)
            self._preds[id(dst)].remove(existing)
        self._by_pair[key] = edge
        self._succs[id(src)].append(edge)
        self._preds[id(dst)].append(edge)
        self.version += 1

    def remove_edge(self, edge: DepEdge) -> None:
        key = (id(edge.src), id(edge.dst))
        if self._by_pair.get(key) is edge:
            del self._by_pair[key]
            self._succs[id(edge.src)].remove(edge)
            self._preds[id(edge.dst)].remove(edge)
            self.version += 1

    # -- queries -----------------------------------------------------------------

    _NO_EDGES: Sequence[DepEdge] = ()

    def succs(self, ins: Instruction) -> Sequence[DepEdge]:
        """Outgoing edges of ``ins`` -- a read-only view, do not mutate."""
        return self._succs.get(id(ins), self._NO_EDGES)

    def preds(self, ins: Instruction) -> Sequence[DepEdge]:
        """Incoming edges of ``ins`` -- a read-only view, do not mutate."""
        return self._preds.get(id(ins), self._NO_EDGES)

    def edges(self) -> list[DepEdge]:
        return list(self._by_pair.values())

    def iter_edges(self):
        """All edges without the :meth:`edges` list copy (read-only; do not
        mutate the graph while iterating)."""
        return self._by_pair.values()

    def edge_count(self) -> int:
        return len(self._by_pair)

    def has_edge(self, src: Instruction, dst: Instruction) -> bool:
        return (id(src), id(dst)) in self._by_pair

    def edge(self, src: Instruction, dst: Instruction) -> DepEdge | None:
        return self._by_pair.get((id(src), id(dst)))

    def __repr__(self) -> str:
        return (f"<DataDependenceGraph {len(self.instructions)} instrs, "
                f"{len(self._by_pair)} edges>")


def _edge_weight(machine: MachineModel, edge: DepEdge) -> int:
    """Minimum start-to-start separation the edge imposes."""
    if edge.kind is DepKind.FLOW:
        return machine.exec_time(edge.src) + edge.delay
    return 0


class _BlockScanState:
    """Running last-def / uses-since-def / memory state for one block scan."""

    def __init__(self) -> None:
        self.last_def: dict[Reg, Instruction] = {}
        self.uses_since_def: dict[Reg, list[Instruction]] = {}
        self.mem_ops: list[tuple[Instruction, SymbolicAddress | None]] = []
        self.tracker = AddressTracker()


def _scan_block(ddg: DataDependenceGraph, block: BasicBlock,
                machine: MachineModel) -> None:
    """Intra-block dependences via a single forward scan.

    The scan inherently avoids most transitive edges: a flow edge is only
    drawn from the *last* definition, an output edge only from the previous
    definition, etc.
    """
    state = _BlockScanState()
    last_def = state.last_def
    uses_since_def = state.uses_since_def
    for ins in block.instrs:
        ddg.add_instruction(ins)
        uses = ins.reg_uses()
        defs = ins.reg_defs()
        # flow: last def of each used register
        for reg in uses:
            producer = last_def.get(reg)
            if producer is not None:
                delay = machine.flow_delay(producer, ins, reg)
                ddg.add_edge(producer, ins, DepKind.FLOW, delay, reg)
        # memory ordering
        if ins.opcode.touches_memory:
            addr = (state.tracker.address_of(ins.mem)
                    if ins.mem is not None else None)
            for prev, prev_addr in state.mem_ops:
                if may_conflict(prev, prev_addr, ins, addr):
                    ddg.add_edge(prev, ins, DepKind.MEM, 0)
            state.mem_ops.append((ins, addr))
        # anti and output
        for reg in defs:
            for user in uses_since_def.get(reg, ()):
                ddg.add_edge(user, ins, DepKind.ANTI, 0, reg)
            previous = last_def.get(reg)
            if previous is not None:
                ddg.add_edge(previous, ins, DepKind.OUTPUT, 0, reg)
        # update state
        for reg in uses:
            uses_since_def.setdefault(reg, []).append(ins)
        for reg in defs:
            last_def[reg] = ins
            uses_since_def[reg] = []
        state.tracker.step(ins)


class _BlockSummary:
    """One block's def/use/memory footprint, computed in a single scan."""

    __slots__ = ("defs_of", "uses_of", "mem_ops")

    def __init__(self, block: BasicBlock) -> None:
        self.defs_of: dict[Reg, list[Instruction]] = {}
        self.uses_of: dict[Reg, list[Instruction]] = {}
        self.mem_ops: list[Instruction] = []
        for a in block.instrs:
            for reg in a.reg_defs():
                self.defs_of.setdefault(reg, []).append(a)
            for reg in a.reg_uses():
                self.uses_of.setdefault(reg, []).append(a)
            if a.opcode.touches_memory:
                self.mem_ops.append(a)


def _merge_reg_maps(
    maps: list[dict[Reg, list[Instruction]]],
) -> dict[Reg, list[Instruction]]:
    """Union of per-block register maps, earlier blocks first.

    Single-owner entries alias the summary's own list (never mutated);
    contested entries get a fresh concatenation.
    """
    merged: dict[Reg, list[Instruction]] = {}
    owned: set[Reg] = set()
    for one in maps:
        for reg, instrs in one.items():
            current = merged.get(reg)
            if current is None:
                merged[reg] = instrs
            elif reg in owned:
                current.extend(instrs)
            else:
                merged[reg] = current + instrs
                owned.add(reg)
    return merged


def _interblock_edges(
    ddg: DataDependenceGraph,
    sources: list[_BlockSummary],
    later: BasicBlock,
    machine: MachineModel,
) -> None:
    """Dependences into ``later`` from the merged summaries of every
    forward-reachable earlier block.

    Conservative on memory: cross-block references are never disambiguated
    (the base registers' values at block entry depend on the path taken).
    """
    if len(sources) == 1:
        only = sources[0]
        defs_of, uses_of, mem_ops = only.defs_of, only.uses_of, only.mem_ops
    else:
        defs_of = _merge_reg_maps([s.defs_of for s in sources])
        uses_of = _merge_reg_maps([s.uses_of for s in sources])
        mem_ops = [a for s in sources for a in s.mem_ops]

    for b in later.instrs:
        ddg.add_instruction(b)
        for reg in b.reg_uses():
            for a in defs_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.FLOW,
                             machine.flow_delay(a, b, reg), reg)
        for reg in b.reg_defs():
            for a in uses_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.ANTI, 0, reg)
            for a in defs_of.get(reg, ()):
                ddg.add_edge(a, b, DepKind.OUTPUT, 0, reg)
        if b.opcode.touches_memory:
            for a in mem_ops:
                if may_conflict(a, None, b, None):
                    ddg.add_edge(a, b, DepKind.MEM, 0)


def build_block_ddg(block: BasicBlock, machine: MachineModel,
                    *, reduce: bool = True) -> DataDependenceGraph:
    """Intra-block DDG (used by the basic-block scheduler)."""
    ddg = DataDependenceGraph()
    _scan_block(ddg, block, machine)
    if reduce:
        transitive_reduce(ddg, machine)
    return ddg


def build_region_ddg(
    blocks: list[BasicBlock],
    reachable_pairs: set[tuple[str, str]],
    machine: MachineModel,
    *, reduce: bool = True,
) -> DataDependenceGraph:
    """DDG over a region.

    ``blocks`` must be in topological order of the region's forward CFG;
    ``reachable_pairs`` contains every ordered pair of labels ``(A, B)``
    with ``B`` reachable from ``A`` along forward edges (Section 4.2:
    "for each pair A and B of basic blocks such that B is reachable from
    A ... the interblock data dependences are computed").

    Each block is scanned exactly once (intra-block edges + its summary);
    the summaries of a block's reachable predecessors are then merged and
    matched against the block in one pass, instead of re-scanning every
    ``(earlier, later)`` pair.
    """
    ddg = DataDependenceGraph()
    for block in blocks:
        _scan_block(ddg, block, machine)
    summaries = [_BlockSummary(block) for block in blocks]
    for j, later in enumerate(blocks):
        sources = [
            summaries[i] for i in range(j)
            if (blocks[i].label, later.label) in reachable_pairs
        ]
        if sources:
            _interblock_edges(ddg, sources, later, machine)
    if reduce:
        transitive_reduce(ddg, machine)
    return ddg


def transitive_reduce(ddg: DataDependenceGraph,
                      machine: MachineModel) -> int:
    """Remove edges implied by stronger-or-equal multi-edge paths.

    An edge ``(a, b)`` with separation ``w`` is redundant iff some path
    ``a -> ... -> b`` of at least two edges already forces a separation
    ``>= w``.  Returns the number of edges removed.  This mirrors the
    paper's "there is no need to compute the edge from a to c" observation,
    generalised to be delay-aware: a transitive edge must be *kept* when it
    carries a longer delay than the path through the middle instruction.

    Topological order, positions and per-edge weights are computed once
    and shared by every source; each source's longest-path sweep is a
    linear scan over the topological slice up to its furthest direct
    successor (no priority queue, no work past the last edge it can
    possibly remove).  Removing a redundant edge never shortens a longest
    path -- the implying path stays -- so sharing these tables across
    sources is sound.  Single-successor sources are skipped outright: a
    parallel multi-edge path would need a second out-edge to start from.
    """
    order = topo_order(ddg)
    position = {id(ins): i for i, ins in enumerate(order)}
    exec_time = machine.exec_time
    flow = DepKind.FLOW
    weight_of: dict[int, int] = {
        id(edge): (exec_time(edge.src) + edge.delay
                   if edge.kind is flow else 0)
        for edge in ddg.iter_edges()
    }
    removed = 0
    for a in order:
        out_view = ddg.succs(a)
        if len(out_view) < 2:
            continue
        # Longest-path DP from ``a`` over the topo slice that can matter:
        # every removable edge ends at a direct successor, and every
        # implying path stays strictly within the slice before it.
        limit = max(position[id(edge.dst)] for edge in out_view)
        dist: dict[int, int] = {id(a): 0}
        for ins in order[position[id(a)]:limit]:
            d = dist.get(id(ins))
            if d is None:
                continue
            for edge in ddg.succs(ins):
                key = id(edge.dst)
                if position[key] > limit:
                    continue
                cand = d + weight_of[id(edge)]
                if cand > dist.get(key, -1):
                    dist[key] = cand
        for edge in list(out_view):  # snapshot: removals mutate the view
            w = weight_of[id(edge)]
            # Longest a->b path whose final hop is (m, b) with m != a.
            best_multi = max(
                (
                    dist[id(in_edge.src)] + weight_of[id(in_edge)]
                    for in_edge in ddg.preds(edge.dst)
                    if in_edge.src is not a and id(in_edge.src) in dist
                ),
                default=None,
            )
            if best_multi is not None and best_multi >= w:
                ddg.remove_edge(edge)
                removed += 1
    return removed


def topo_order(ddg: DataDependenceGraph) -> list[Instruction]:
    """A topological order of the dependence DAG (raises on cycles)."""
    indeg: dict[int, int] = {}
    ready: list[Instruction] = []
    for ins in ddg.instructions:
        n = len(ddg.preds(ins))
        indeg[id(ins)] = n
        if n == 0:
            ready.append(ins)
    order: list[Instruction] = []
    while ready:
        ins = ready.pop()
        order.append(ins)
        for edge in ddg.succs(ins):
            key = id(edge.dst)
            indeg[key] -= 1
            if indeg[key] == 0:
                ready.append(edge.dst)
    if len(order) != len(ddg.instructions):
        raise ValueError("data dependence graph has a cycle")
    return order
