"""Light-weight memory disambiguation (Section 4.2, fourth bullet).

Two memory instructions need a dependence edge unless "it is proven that
they address different locations".  The prover here is a symbolic
base+offset analysis scoped to one basic block: every GPR's value is
tracked as ``origin + delta`` where *origin* is an opaque token (a fresh one
whenever the register is defined unpredictably) and *delta* a known
constant.  ``AI``/``SI`` adjust the delta, ``LR`` copies the state, ``LI``
yields a constant origin, and the update forms ``LU``/``STU`` add their
displacement -- so the common array-walking idiom of Figure 2 (loads off
``r31`` with post-increment) disambiguates exactly.

Two references conflict unless they share an origin and their
``[delta+disp, delta+disp+width)`` byte ranges are disjoint.  References
with different origins conservatively conflict (two unknown pointers may
alias).  Constant-origin references compare by absolute address.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode
from ..ir.operand import MemRef, Reg

#: Shared origin for absolute (LI-derived) addresses.
_CONST_ORIGIN = "<const>"


@dataclass(frozen=True)
class SymbolicAddress:
    """``origin + offset`` with an access width, or unknown."""

    origin: object
    offset: int
    width: int

    def conflicts_with(self, other: "SymbolicAddress | None") -> bool:
        if other is None:
            return True
        if self.origin != other.origin:
            return True
        lo1, hi1 = self.offset, self.offset + self.width
        lo2, hi2 = other.offset, other.offset + other.width
        return lo1 < hi2 and lo2 < hi1


class AddressTracker:
    """Tracks GPR values as origin+delta through one basic block."""

    def __init__(self) -> None:
        self._state: dict[Reg, tuple[object, int]] = {}
        self._fresh = itertools.count()

    def _get(self, reg: Reg) -> tuple[object, int]:
        if reg not in self._state:
            # Unknown initial value: its own stable origin.
            self._state[reg] = (("init", reg), 0)
        return self._state[reg]

    def address_of(self, mem: MemRef) -> SymbolicAddress:
        """The symbolic address of ``mem`` in the *current* state (i.e. as
        seen by the instruction about to execute, before its own updates)."""
        origin, delta = self._get(mem.base)
        return SymbolicAddress(origin, delta + mem.disp, mem.width)

    def step(self, ins: Instruction) -> None:
        """Advance the state past ``ins``'s register definitions."""
        op = ins.opcode
        if op in (Opcode.AI, Opcode.SI) and ins.defs:
            rd, (ra,) = ins.defs[0], ins.uses
            origin, delta = self._get(ra)
            sign = 1 if op is Opcode.AI else -1
            self._state[rd] = (origin, delta + sign * (ins.imm or 0))
            return
        if op is Opcode.LR:
            self._state[ins.defs[0]] = self._get(ins.uses[0])
            return
        if op is Opcode.LI:
            self._state[ins.defs[0]] = (_CONST_ORIGIN, ins.imm or 0)
            return
        if op in (Opcode.LU, Opcode.STU):
            # The base register is post-incremented by the displacement;
            # a loaded destination register becomes unknown.
            base_update = ins.defs[-1] if op is Opcode.LU else ins.defs[0]
            loaded = ins.defs[0] if op is Opcode.LU else None
            origin, delta = self._get(ins.mem.base)
            self._state[base_update] = (origin, delta + ins.mem.disp)
            if loaded is not None:
                # The loaded register becomes unknown (and, in the
                # degenerate ``LU r,r=...`` case, the load result wins).
                self._state[loaded] = (("def", next(self._fresh)), 0)
            return
        for reg in ins.reg_defs():
            self._state[reg] = (("def", next(self._fresh)), 0)


def may_conflict(a: Instruction, addr_a: SymbolicAddress | None,
                 b: Instruction, addr_b: SymbolicAddress | None) -> bool:
    """Do memory instructions ``a`` and ``b`` need an ordering edge?

    Load-load pairs never do.  Calls conflict with everything that touches
    memory (their footprint is unknown).  Otherwise the symbolic addresses
    decide.
    """
    if not (a.touches_memory and b.touches_memory):
        return False
    if not (a.writes_memory or b.writes_memory):
        return False  # two loads commute
    if a.is_call or b.is_call:
        return True
    if addr_a is None or addr_b is None:
        return True
    return addr_a.conflicts_with(addr_b)
