"""Forward control dependences (Section 4.1, after [FOW87] and [CHH89]).

A node ``B`` is *control dependent* on the CFG edge ``A -> C`` iff ``B``
postdominates ``C`` but does not postdominate ``A``.  Intuitively: the
condition at the end of ``A`` decides whether ``B`` executes.

Following [CHH89] (and Section 4.1), only the *forward* control dependence
graph is built: back edges are removed before the computation, so the result
is acyclic and describes a single iteration of the enclosing loop.

The computation: for every branch edge ``A -> C``, walk the postdominator
tree from ``C`` up to (but excluding) ``ipdom(A)``; every node on that walk
is control dependent on ``(A, C)``.  This is the classic linear-time FOW
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..cfg.digraph import Digraph
from ..cfg.dominators import DominatorTree, postdominator_tree

Node = Hashable


@dataclass(frozen=True)
class ControlDep:
    """One control-dependence condition: the CFG edge ``branch -> succ``.

    Two blocks are *identically control dependent* (hence equivalent, in the
    forward graph) iff they carry the same set of ``ControlDep`` conditions.
    """

    branch: Node
    succ: Node

    def __repr__(self) -> str:
        return f"CDep({self.branch!r}->{self.succ!r})"


def forward_graph(graph: Digraph, dom: DominatorTree) -> Digraph:
    """A copy of ``graph`` with all back edges removed.

    A back edge is one whose target dominates its source.  On a reducible
    graph this removes exactly the loop-closing edges, leaving the acyclic
    forward CFG the paper computes control dependences on.
    """
    forward = Digraph()
    for node in graph.nodes:
        forward.add_node(node)
    for src, dst in graph.edges():
        if not dom.dominates(dst, src):
            forward.add_edge(src, dst)
    return forward


def control_dependences(
    forward: Digraph, entry: Node, exit_node: Node
) -> dict[Node, frozenset[ControlDep]]:
    """Control-dependence sets of every node of the acyclic ``forward`` graph.

    Nodes with no successors are implicitly connected to ``exit_node`` for
    the postdominator computation (every forward path must reach EXIT).
    Returns a map ``node -> set of ControlDep``; nodes that always execute
    (e.g. the region header) map to the empty set.
    """
    # Ensure every node reaches EXIT so postdominators are well defined.
    closed = Digraph()
    for node in forward.nodes:
        closed.add_node(node)
    for edge in forward.edges():
        closed.add_edge(*edge)
    for node in forward.nodes:
        if node != exit_node and not closed.succs(node):
            closed.add_edge(node, exit_node)

    pdom = postdominator_tree(closed, exit_node)
    deps: dict[Node, set[ControlDep]] = {n: set() for n in closed.nodes}

    for branch in closed.nodes:
        succs = closed.succs(branch)
        if len(succs) < 2:
            continue
        branch_parent = pdom.idom(branch)
        for succ in succs:
            # Walk the postdominator tree from succ towards the root,
            # stopping at ipdom(branch): every node strictly below it on
            # this path is controlled by the (branch -> succ) edge.
            runner = succ
            while runner != branch_parent and runner is not None:
                deps[runner].add(ControlDep(branch, succ))
                if runner == branch:
                    # Self-loop edge (branch postdominates itself); in a
                    # forward (acyclic) graph this cannot recurse further.
                    break
                runner = pdom.idom(runner)

    return {node: frozenset(s) for node, s in deps.items()}
