"""The Program Dependence Graph of one *region* (Sections 4 and 5.1).

A region is either a loop body or a subroutine body without its enclosed
loops.  Its PDG bundles:

* the acyclic *forward* control flow graph of the region (back edges to the
  region header removed, nested inner loops collapsed to opaque *abstract
  nodes*, plus a virtual EXIT),
* dominator / postdominator trees of that forward graph,
* the CSPDG (control dependences, equivalence classes, speculation degrees),
* the instruction-level data dependence graph with machine delays, covering
  every ordered pair of reachable blocks.

Nested inner loops appear as single abstract nodes carrying a *barrier*
pseudo-instruction that defines/uses everything the loop touches; this
enforces "instructions are never moved out of or into a region" purely
through ordinary dependence edges, with no special cases in the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.digraph import Digraph
from ..cfg.dominators import DominatorTree, dominator_tree, postdominator_tree
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction, defs_and_uses
from ..ir.opcodes import Opcode
from ..machine.model import MachineModel
from .cspdg import CSPDG
from .data_deps import DataDependenceGraph, build_region_ddg

#: Virtual exit node of a region's forward graph.
REGION_EXIT = "<region-exit>"


def abstract_label(header_label: str) -> str:
    """The node name a collapsed inner loop gets in the outer region."""
    return f"<loop {header_label}>"


@dataclass
class SubloopSummary:
    """What an outer region knows about one collapsed inner loop."""

    header: str
    #: labels of every block inside the loop (including nested ones)
    members: frozenset[str]
    #: the pseudo-instruction summarising the loop's effects
    barrier: Instruction
    #: pseudo-block holding the barrier, named with the abstract label
    pseudo_block: BasicBlock


def make_barrier(func: Function, header: str,
                 instrs: list[Instruction]) -> Instruction:
    """A pseudo-CALL that defines/uses everything ``instrs`` touch.

    As a call it conservatively conflicts with all memory traffic and is
    never a motion candidate, so dependence edges through it pin code on
    either side of the inner loop in place.
    """
    defs, uses = defs_and_uses(instrs)
    barrier = Instruction(
        Opcode.CALL,
        defs=tuple(sorted(defs, key=lambda r: (r.rclass.value, r.index))),
        uses=tuple(sorted(uses, key=lambda r: (r.rclass.value, r.index))),
        target=abstract_label(header),
        comment=f"opaque inner loop at {header}",
    )
    return func.assign_uid(barrier)


class RegionPDG:
    """PDG of one region, ready for the global scheduler."""

    def __init__(
        self,
        func: Function,
        machine: MachineModel,
        member_blocks: list[BasicBlock],
        header_label: str,
        subloops: list[SubloopSummary] = (),
        *,
        reduce_ddg: bool = True,
        ddg_builder=None,
    ):
        self.func = func
        self.machine = machine
        self.header = header_label
        self.blocks = list(member_blocks)
        self.subloops = list(subloops)
        self._member_labels = {b.label for b in self.blocks}
        self._abstract_of: dict[str, str] = {}
        for sub in self.subloops:
            for label in sub.members:
                self._abstract_of[label] = abstract_label(sub.header)
        self._pseudo_blocks = {
            abstract_label(s.header): s.pseudo_block for s in self.subloops
        }

        self.forward = self._build_forward_graph()
        self.dom: DominatorTree = dominator_tree(self.forward, header_label)
        self.pdom: DominatorTree = postdominator_tree(self.forward, REGION_EXIT)
        region_nodes = [
            n for n in self.forward.nodes if n != REGION_EXIT
        ]
        self.cspdg = CSPDG(
            self.forward, header_label, REGION_EXIT, self.dom, self.pdom,
            blocks=region_nodes,
        )
        self.topo_labels = [
            n for n in self.forward.topological_order(header_label)
            if n != REGION_EXIT
        ]
        self.reachable_pairs = self._reachable_pairs()
        # module-global lookup by default so reference/chaos tooling can
        # swap the builder; callers that must not see such patches (the
        # schedule verifier) inject their own ``ddg_builder``
        builder = ddg_builder if ddg_builder is not None else build_region_ddg
        self.ddg: DataDependenceGraph = builder(
            self._ddg_blocks(), self.reachable_pairs, machine,
            reduce=reduce_ddg,
        )

    # -- construction helpers ------------------------------------------------

    def _node_of(self, label: str) -> str | None:
        """Region-graph node for a CFG block label (None = outside region)."""
        if label in self._member_labels:
            return label
        return self._abstract_of.get(label)

    def _build_forward_graph(self) -> Digraph:
        graph = Digraph()
        graph.add_node(self.header)
        for block in self.blocks:
            graph.add_node(block.label)
        for pseudo in self._pseudo_blocks:
            graph.add_node(pseudo)
        graph.add_node(REGION_EXIT)

        region_cfg_labels = set(self._member_labels) | set(self._abstract_of)
        for label in region_cfg_labels:
            src_node = self._node_of(label)
            block = self.func.block(label)
            leaves_region = self.func.falls_off_end(block) or (
                block.terminator is not None
                and block.terminator.opcode is Opcode.RET
            )
            for succ in self.func.successors(block):
                dst_node = self._node_of(succ.label)
                if dst_node is None:
                    leaves_region = True
                    continue
                if dst_node == self.header:
                    continue  # back edge: dropped in the forward graph
                if src_node != dst_node:
                    graph.add_edge(src_node, dst_node)
            if leaves_region:
                graph.add_edge(src_node, REGION_EXIT)
        # Latches whose only successor was the header end up sink-less;
        # give every sink an EXIT edge so postdominators are well defined.
        for node in graph.nodes:
            if node != REGION_EXIT and not graph.succs(node):
                graph.add_edge(node, REGION_EXIT)
        return graph

    def _reachable_pairs(self) -> set[tuple[str, str]]:
        pairs: set[tuple[str, str]] = set()
        for node in self.topo_labels:
            reached = self.forward.reachable_from(node)
            reached.discard(node)
            reached.discard(REGION_EXIT)
            for dst in reached:
                pairs.add((node, dst))
        return pairs

    def _ddg_blocks(self) -> list[BasicBlock]:
        """Region blocks (real + pseudo) in forward topological order."""
        out: list[BasicBlock] = []
        for label in self.topo_labels:
            if label in self._member_labels:
                out.append(self.func.block(label))
            else:
                out.append(self._pseudo_blocks[label])
        return out

    # -- queries ---------------------------------------------------------------

    @property
    def member_labels(self) -> set[str]:
        return set(self._member_labels)

    def is_abstract(self, node: str) -> bool:
        return node in self._pseudo_blocks

    def schedulable_labels(self) -> list[str]:
        """Real member blocks, in the order the scheduler visits them
        (topological order of the forward graph, Section 5.1)."""
        return [n for n in self.topo_labels if n in self._member_labels]

    def block(self, label: str) -> BasicBlock:
        if label in self._pseudo_blocks:
            return self._pseudo_blocks[label]
        return self.func.block(label)

    def __repr__(self) -> str:
        return (f"<RegionPDG header={self.header!r} "
                f"{len(self.blocks)} blocks, {len(self.subloops)} subloops>")
