"""Program Dependence Graph: control + data dependences (Section 4)."""

from .control_deps import ControlDep, control_dependences, forward_graph
from .cspdg import CSPDG
from .data_deps import (
    DataDependenceGraph,
    DepEdge,
    DepKind,
    build_block_ddg,
    build_region_ddg,
    topo_order,
    transitive_reduce,
)
from .memory import AddressTracker, SymbolicAddress, may_conflict
from .pdg import (
    REGION_EXIT,
    RegionPDG,
    SubloopSummary,
    abstract_label,
    make_barrier,
)

__all__ = [
    "AddressTracker",
    "CSPDG",
    "ControlDep",
    "DataDependenceGraph",
    "DepEdge",
    "DepKind",
    "REGION_EXIT",
    "RegionPDG",
    "SubloopSummary",
    "SymbolicAddress",
    "abstract_label",
    "build_block_ddg",
    "build_region_ddg",
    "control_dependences",
    "forward_graph",
    "make_barrier",
    "may_conflict",
    "topo_order",
    "transitive_reduce",
]
