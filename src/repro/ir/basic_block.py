"""Basic blocks.

A basic block is a labelled, ordered list of instructions with at most one
branch, which -- if present -- must be the last instruction (the block's
*terminator*).  The paper's global scheduler never moves branches and never
creates new blocks (Section 5.1), so blocks are structurally stable during
scheduling: only the non-branch instructions inside them are reordered,
removed (moved upward to another block) or inserted.
"""

from __future__ import annotations

from typing import Iterator

from .instruction import Instruction


class BasicBlock:
    """A labelled straight-line sequence of instructions."""

    __slots__ = ("label", "instrs")

    def __init__(self, label: str, instrs: list[Instruction] | None = None):
        self.label = label
        self.instrs: list[Instruction] = list(instrs or [])

    # -- structure -------------------------------------------------------

    @property
    def terminator(self) -> Instruction | None:
        """The trailing branch, or ``None`` for a fall-through block."""
        if self.instrs and self.instrs[-1].is_branch:
            return self.instrs[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator (schedulable material)."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    # -- mutation --------------------------------------------------------

    def append(self, ins: Instruction) -> None:
        self.instrs.append(ins)

    def remove(self, ins: Instruction) -> None:
        """Remove ``ins`` (by identity)."""
        for i, existing in enumerate(self.instrs):
            if existing is ins:
                del self.instrs[i]
                return
        raise ValueError(f"{ins!r} is not in block {self.label}")

    def insert_before_terminator(self, ins: Instruction) -> None:
        """Insert ``ins`` at the end of the body, before any branch."""
        if self.terminator is not None:
            self.instrs.insert(len(self.instrs) - 1, ins)
        else:
            self.instrs.append(ins)

    def set_body(self, body: list[Instruction]) -> None:
        """Replace the body, keeping the terminator in place."""
        term = self.terminator
        self.instrs = list(body) + ([term] if term is not None else [])

    def index_of(self, ins: Instruction) -> int:
        for i, existing in enumerate(self.instrs):
            if existing is ins:
                return i
        raise ValueError(f"{ins!r} is not in block {self.label}")

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instrs)} instrs)>"
