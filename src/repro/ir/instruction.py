"""IR instructions.

An :class:`Instruction` is a mutable object identified by identity (so it can
sit in dependence-graph dictionaries while the scheduler moves it between
blocks) plus a stable ``uid`` recording *original program order* -- the
paper's final tie-breaking heuristic ("pick an instruction that occurred in
the code first", Section 5.2) and the printer's ``(I<n>)`` annotation both
use it.

Operand conventions by opcode family (checked by :mod:`repro.ir.verify`):

=========  =======================  =========================================
opcode     operands                 meaning
=========  =======================  =========================================
L          defs=(rd,) mem           ``rd = load mem``
LU         defs=(rd, rb) mem        ``rd = load mem; rb += disp`` (update)
ST         uses=(rs, rb) mem        ``store rs -> mem``
STU        defs=(rb,) uses=(rs,rb)  ``store rs -> mem; rb += disp``
LI         defs=(rd,) imm           ``rd = imm``
LR         defs=(rd,) uses=(rs,)    ``rd = rs``
A,S,...    defs=(rd,) uses=(ra,rb)  three-address register arithmetic
AI,SI,...  defs=(rd,) uses=(ra,) imm  register-immediate arithmetic
NEG,NOT    defs=(rd,) uses=(ra,)    unary
C          defs=(crd,) uses=(ra,rb) compare, sets LT/GT/EQ bits of ``crd``
CI         defs=(crd,) uses=(ra,) imm  compare against immediate
B          target                   unconditional branch
BT/BF      uses=(cr,) target mask   branch if CR bit (mask) true/false
CALL       defs=(rets...) uses=(args...) target=name  opaque call
RET        uses=() or (rv,)         return
MTCTR      defs=(ctr,) uses=(rs,)   move to counter register
BDNZ       defs=uses=(ctr,) target  decrement CTR, branch if non-zero
NOP        --                       no operation
=========  =======================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from .opcodes import Opcode, UnitType
from .operand import CR_BIT_NAMES, MemRef, Reg


@dataclass(eq=False, slots=True)
class Instruction:
    """One IR instruction.  Compares by identity; ``uid`` is program order."""

    opcode: Opcode
    defs: tuple[Reg, ...] = ()
    uses: tuple[Reg, ...] = ()
    imm: int | None = None
    mem: MemRef | None = None
    target: str | None = None
    mask: int | None = None
    comment: str = ""
    #: original program order; assigned when added to a Function.
    uid: int = -1

    # -- queries ---------------------------------------------------------

    @property
    def unit(self) -> UnitType:
        return self.opcode.unit

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode.is_conditional

    @property
    def is_call(self) -> bool:
        return self.opcode.is_call

    @property
    def is_load(self) -> bool:
        return self.opcode.is_load

    @property
    def is_store(self) -> bool:
        return self.opcode.is_store

    @property
    def is_compare(self) -> bool:
        return self.opcode.is_compare

    @property
    def touches_memory(self) -> bool:
        return self.opcode.touches_memory

    @property
    def writes_memory(self) -> bool:
        """Stores and calls may modify memory."""
        return self.opcode.is_store or self.opcode.is_call

    @property
    def is_terminator(self) -> bool:
        return self.opcode.is_terminator

    def reg_defs(self) -> tuple[Reg, ...]:
        return self.defs

    def reg_uses(self) -> tuple[Reg, ...]:
        """All registers read, including the memory base register."""
        return self.uses

    # -- rewriting -------------------------------------------------------

    def clone(self) -> "Instruction":
        """A fresh copy (identity-distinct, uid unassigned)."""
        return Instruction(
            opcode=self.opcode,
            defs=self.defs,
            uses=self.uses,
            imm=self.imm,
            mem=self.mem,
            target=self.target,
            mask=self.mask,
            comment=self.comment,
            uid=-1,
        )

    def rename_registers(self, mapping: Mapping[Reg, Reg]) -> None:
        """Substitute registers in place according to ``mapping``.

        Registers not present in the mapping are left alone.  The memory
        base register is rewritten consistently with ``uses``.
        """
        self.defs = tuple(mapping.get(r, r) for r in self.defs)
        self.uses = tuple(mapping.get(r, r) for r in self.uses)
        if self.mem is not None and self.mem.base in mapping:
            self.mem = replace(self.mem, base=mapping[self.mem.base])

    def rename_uses_of(self, old: Reg, new: Reg) -> None:
        """Substitute ``old`` by ``new`` in the use positions only (the
        definition positions are left alone).  The memory base register is
        a use and is rewritten consistently."""
        self.uses = tuple(new if r == old else r for r in self.uses)
        if self.mem is not None and self.mem.base == old:
            self.mem = replace(self.mem, base=new)

    def retarget(self, old_label: str, new_label: str) -> None:
        """Rewrite a branch target (used by unrolling and rotation)."""
        if self.target == old_label:
            self.target = new_label

    # -- rendering -------------------------------------------------------

    def operand_text(self) -> str:
        """The operand part of the assembly line, Figure-2 style."""
        op = self.opcode
        if op in (Opcode.L, Opcode.FL):
            return f"{self.defs[0]}={self.mem}"
        if op is Opcode.LU:
            return f"{self.defs[0]},{self.defs[1]}={self.mem}"
        if op in (Opcode.ST, Opcode.FST):
            return f"{self.uses[0]}=>{self.mem}"
        if op is Opcode.STU:
            return f"{self.uses[0]},{self.defs[0]}=>{self.mem}"
        if op is Opcode.LI:
            return f"{self.defs[0]}={self.imm}"
        if op in (Opcode.LR, Opcode.FMR, Opcode.NEG, Opcode.NOT, Opcode.MTCTR):
            return f"{self.defs[0]}={self.uses[0]}"
        if op in (Opcode.C, Opcode.FC):
            return f"{self.defs[0]}={self.uses[0]},{self.uses[1]}"
        if op is Opcode.CI:
            return f"{self.defs[0]}={self.uses[0]},{self.imm}"
        if op is Opcode.B:
            return f"{self.target}"
        if op in (Opcode.BT, Opcode.BF):
            bit = CR_BIT_NAMES.get(self.mask or 0, hex(self.mask or 0))
            return f"{self.target},{self.uses[0]},{self.mask:#x}/{bit}"
        if op is Opcode.BDNZ:
            return f"{self.target}"
        if op is Opcode.CALL:
            args = ",".join(str(r) for r in self.uses)
            rets = ",".join(str(r) for r in self.defs)
            head = f"{rets}=" if rets else ""
            return f"{head}{self.target}({args})"
        if op is Opcode.RET:
            return f"{self.uses[0]}" if self.uses else ""
        if op is Opcode.NOP:
            return ""
        # generic three-address / register-immediate forms
        if self.imm is not None:
            return f"{self.defs[0]}={self.uses[0]},{self.imm}"
        srcs = ",".join(str(r) for r in self.uses)
        return f"{self.defs[0]}={srcs}"

    def __str__(self) -> str:
        text = f"{self.opcode.mnemonic:<6}{self.operand_text()}"
        return text.rstrip()

    def __repr__(self) -> str:
        tag = f"I{self.uid}" if self.uid >= 0 else "I?"
        return f"<{tag} {self}>"


def make_nop() -> Instruction:
    """A fresh NOP (handy for tests)."""
    return Instruction(Opcode.NOP)


def defs_and_uses(instrs: Iterable[Instruction]) -> tuple[set[Reg], set[Reg]]:
    """Union of registers defined and used by ``instrs``.

    Used to summarise nested regions (inner loops) as opaque nodes when
    scheduling an outer region.
    """
    all_defs: set[Reg] = set()
    all_uses: set[Reg] = set()
    for ins in instrs:
        all_defs.update(ins.reg_defs())
        all_uses.update(ins.reg_uses())
    return all_defs, all_uses
