"""The RS/6K-flavoured intermediate representation.

Public surface::

    from repro.ir import (
        Function, BasicBlock, Instruction, Builder,
        Opcode, UnitType, Reg, RegClass, MemRef,
        gpr, fpr, cr, CTR, CR_LT, CR_GT, CR_EQ,
        parse_function, format_function, verify_function,
    )
"""

from .basic_block import BasicBlock
from .builder import Builder
from .function import Function
from .instruction import Instruction, defs_and_uses, make_nop
from .opcodes import MNEMONIC_TO_OPCODE, Opcode, OpcodeInfo, UnitType
from .operand import (
    CR_BIT_NAMES,
    CR_EQ,
    CR_GT,
    CR_LT,
    CTR,
    MemRef,
    Reg,
    RegClass,
    cr,
    fpr,
    gpr,
    parse_reg,
)
from .parser import ParseError, parse_function
from .printer import format_block, format_function, format_instruction, print_function
from .verify import VerificationError, verify_function, verify_reachable

__all__ = [
    "BasicBlock",
    "Builder",
    "CR_BIT_NAMES",
    "CR_EQ",
    "CR_GT",
    "CR_LT",
    "CTR",
    "Function",
    "Instruction",
    "MNEMONIC_TO_OPCODE",
    "MemRef",
    "Opcode",
    "OpcodeInfo",
    "ParseError",
    "Reg",
    "RegClass",
    "UnitType",
    "VerificationError",
    "cr",
    "defs_and_uses",
    "format_block",
    "format_function",
    "format_instruction",
    "fpr",
    "gpr",
    "make_nop",
    "parse_function",
    "parse_reg",
    "print_function",
    "verify_function",
    "verify_reachable",
]
