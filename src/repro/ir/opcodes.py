"""The opcode table of the RS/6K-flavoured IR.

Every opcode carries the static properties the scheduler and the machine
model need:

* ``unit`` -- which functional-unit *type* executes it (Section 2 models a
  superscalar machine as ``m`` unit types with ``n_i`` units each),
* ``cycles`` -- default execution time in cycles (the machine model may
  override per-opcode times, e.g. for multi-cycle multiply/divide),
* behavioural flags used by the global scheduler's legality rules
  (Section 5.1): calls are never moved beyond basic-block boundaries,
  stores are never scheduled speculatively, branches are never reordered.

The mnemonics mirror the paper's Figure 2 pseudo-code (``L``, ``LU``, ``C``,
``BF``, ``AI``, ``LR``, ...) extended with enough arithmetic, logical and
floating point operations to compile realistic kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class UnitType(Enum):
    """Functional-unit types of the parametric machine model."""

    FXU = "fixed"  # fixed point unit
    FPU = "float"  # floating point unit
    BRU = "branch"  # branch unit

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnitType.{self.name}"


@dataclass(frozen=True, slots=True)
class OpcodeInfo:
    """Static description of one opcode."""

    mnemonic: str
    unit: UnitType
    cycles: int = 1
    #: reads memory
    is_load: bool = False
    #: writes memory
    is_store: bool = False
    #: any branch (conditional, unconditional, call, return)
    is_branch: bool = False
    #: conditional branch (tests a CR bit)
    is_conditional: bool = False
    #: subroutine call -- barrier for global motion, clobbers memory
    is_call: bool = False
    #: compare instructions get the compare->branch delay treatment
    is_compare: bool = False
    #: may the instruction be moved beyond basic-block boundaries at all?
    can_move_globally: bool = True
    #: may the instruction be executed speculatively (moved above a branch
    #: it was control dependent on)?
    can_speculate: bool = True


class Opcode(Enum):
    """All opcodes, with their :class:`OpcodeInfo` as value."""

    # ------------------------------------------------------------------ #
    # Fixed point loads / stores.                                        #
    # ------------------------------------------------------------------ #
    #: load word: ``L rd=sym(rb,d)``
    L = OpcodeInfo("L", UnitType.FXU, is_load=True, can_speculate=True)
    #: load with update (post-increment base): ``LU rd,rb=sym(rb,d)``
    LU = OpcodeInfo("LU", UnitType.FXU, is_load=True, can_speculate=True)
    #: store word: ``ST rs=>sym(rb,d)`` -- never speculated (Section 5.1)
    ST = OpcodeInfo(
        "ST", UnitType.FXU, is_store=True, can_speculate=False
    )
    #: store with update: ``STU rs,rb=>sym(rb,d)``
    STU = OpcodeInfo(
        "STU", UnitType.FXU, is_store=True, can_speculate=False
    )

    # ------------------------------------------------------------------ #
    # Fixed point computation.                                           #
    # ------------------------------------------------------------------ #
    LI = OpcodeInfo("LI", UnitType.FXU)  # load immediate: LI rd=imm
    LR = OpcodeInfo("LR", UnitType.FXU)  # register move:  LR rd=rs
    A = OpcodeInfo("A", UnitType.FXU)  # add:            A rd=ra,rb
    AI = OpcodeInfo("AI", UnitType.FXU)  # add immediate:  AI rd=ra,imm
    S = OpcodeInfo("S", UnitType.FXU)  # subtract:       S rd=ra,rb
    SI = OpcodeInfo("SI", UnitType.FXU)  # subtract imm:   SI rd=ra,imm
    MUL = OpcodeInfo("MUL", UnitType.FXU, cycles=5)  # multiply
    DIV = OpcodeInfo("DIV", UnitType.FXU, cycles=19)  # divide
    REM = OpcodeInfo("REM", UnitType.FXU, cycles=19)  # remainder
    AND = OpcodeInfo("AND", UnitType.FXU)
    ANDI = OpcodeInfo("ANDI", UnitType.FXU)
    OR = OpcodeInfo("OR", UnitType.FXU)
    ORI = OpcodeInfo("ORI", UnitType.FXU)
    XOR = OpcodeInfo("XOR", UnitType.FXU)
    XORI = OpcodeInfo("XORI", UnitType.FXU)
    SL = OpcodeInfo("SL", UnitType.FXU)  # shift left logical (by imm)
    SR = OpcodeInfo("SR", UnitType.FXU)  # shift right logical (by imm)
    SRA = OpcodeInfo("SRA", UnitType.FXU)  # shift right arithmetic (by imm)
    NEG = OpcodeInfo("NEG", UnitType.FXU)
    NOT = OpcodeInfo("NOT", UnitType.FXU)
    #: fixed point compare: ``C crd=ra,rb`` (3-cycle delay to its branch)
    C = OpcodeInfo("C", UnitType.FXU, is_compare=True)
    #: fixed point compare immediate: ``CI crd=ra,imm``
    CI = OpcodeInfo("CI", UnitType.FXU, is_compare=True)

    # ------------------------------------------------------------------ #
    # Floating point.                                                    #
    # ------------------------------------------------------------------ #
    FL = OpcodeInfo("FL", UnitType.FPU, is_load=True)
    FST = OpcodeInfo("FST", UnitType.FPU, is_store=True, can_speculate=False)
    FMR = OpcodeInfo("FMR", UnitType.FPU)
    FA = OpcodeInfo("FA", UnitType.FPU)
    FS = OpcodeInfo("FS", UnitType.FPU)
    FM = OpcodeInfo("FM", UnitType.FPU)
    FD = OpcodeInfo("FD", UnitType.FPU, cycles=17)
    #: floating point compare (5-cycle delay to its branch)
    FC = OpcodeInfo("FC", UnitType.FPU, is_compare=True)

    # ------------------------------------------------------------------ #
    # Counter register support (footnote 3).                             #
    # ------------------------------------------------------------------ #
    MTCTR = OpcodeInfo("MTCTR", UnitType.FXU)  # move GPR to CTR
    #: decrement CTR, branch if CTR != 0 -- the "single instruction" loop
    #: close of footnote 3; disabled for the paper's running example.
    BDNZ = OpcodeInfo(
        "BDNZ",
        UnitType.BRU,
        is_branch=True,
        is_conditional=True,
        can_move_globally=False,
        can_speculate=False,
    )

    # ------------------------------------------------------------------ #
    # Branches.  Branches are never moved: the global scheduler preserves #
    # the original order of branches (Section 5.1).                       #
    # ------------------------------------------------------------------ #
    B = OpcodeInfo(
        "B", UnitType.BRU, is_branch=True,
        can_move_globally=False, can_speculate=False,
    )
    BT = OpcodeInfo(
        "BT", UnitType.BRU, is_branch=True, is_conditional=True,
        can_move_globally=False, can_speculate=False,
    )
    BF = OpcodeInfo(
        "BF", UnitType.BRU, is_branch=True, is_conditional=True,
        can_move_globally=False, can_speculate=False,
    )
    #: call: barrier -- "there are instructions that are never moved beyond
    #: basic block boundaries, like calls to subroutines" (Section 5.1).
    CALL = OpcodeInfo(
        "CALL", UnitType.BRU, is_branch=False, is_call=True,
        can_move_globally=False, can_speculate=False,
    )
    RET = OpcodeInfo(
        "RET", UnitType.BRU, is_branch=True,
        can_move_globally=False, can_speculate=False,
    )
    NOP = OpcodeInfo("NOP", UnitType.FXU)

    # Convenience accessors are plain per-member attributes, filled in
    # right after the class body (below).  They used to be @property
    # wrappers over ``self.value``, but every access then paid two
    # descriptor calls, and flags like ``is_branch``/``touches_memory``
    # are read millions of times per compile -- the properties were one
    # of the hottest rows in pipeline profiles.  The attributes are
    # declared here so type checkers and readers see the surface:
    info: OpcodeInfo
    mnemonic: str
    unit: UnitType
    is_load: bool
    is_store: bool
    is_branch: bool
    is_conditional: bool
    is_call: bool
    is_compare: bool
    #: loads, stores and calls participate in memory disambiguation
    touches_memory: bool
    can_move_globally: bool
    can_speculate: bool
    #: must the instruction end its basic block?
    is_terminator: bool


for _op in Opcode:
    _info = _op.value
    _op.info = _info
    _op.mnemonic = _info.mnemonic
    _op.unit = _info.unit
    _op.is_load = _info.is_load
    _op.is_store = _info.is_store
    _op.is_branch = _info.is_branch
    _op.is_conditional = _info.is_conditional
    _op.is_call = _info.is_call
    _op.is_compare = _info.is_compare
    _op.touches_memory = _info.is_load or _info.is_store or _info.is_call
    _op.can_move_globally = _info.can_move_globally
    _op.can_speculate = _info.can_speculate
    _op.is_terminator = _info.is_branch
del _op, _info


#: mnemonic -> Opcode lookup used by the assembly parser.
MNEMONIC_TO_OPCODE: dict[str, Opcode] = {op.mnemonic: op for op in Opcode}
