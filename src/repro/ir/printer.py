"""Textual rendering of IR functions, in the style of the paper's Figure 2.

The format is round-trippable through :mod:`repro.ir.parser`::

    function minmax
    CL.0:
        (I1)    L     r12=a(r31,4)          ; load u
        (I2)    LU    r0,r31=a(r31,8)       ; load v and increment index
        (I3)    C     cr7=r12,r0            ; u > v
        (I4)    BF    CL.4,cr7,0x2/gt

Instruction numbers ``(I<n>)`` are the stable uids (original program order),
so a schedule that moved I18 into BL1 prints exactly like the paper's
Figure 5 -- the number travels with the instruction.
"""

from __future__ import annotations

from io import StringIO

from .basic_block import BasicBlock
from .function import Function


def format_instruction(ins, *, number: bool = True, width: int = 40) -> str:
    """One assembly line: ``(I3)    C     cr7=r12,r0   ; u > v``."""
    tag = f"(I{ins.uid})" if number and ins.uid >= 0 else ""
    line = f"    {tag:<8}{ins.opcode.mnemonic:<6}{ins.operand_text()}"
    if ins.comment:
        line = f"{line:<{width + 12}} ; {ins.comment}"
    return line.rstrip()


def format_block(block: BasicBlock, *, number: bool = True) -> str:
    out = StringIO()
    out.write(f"{block.label}:\n")
    for ins in block.instrs:
        out.write(format_instruction(ins, number=number) + "\n")
    return out.getvalue()


def format_function(func: Function, *, number: bool = True) -> str:
    out = StringIO()
    out.write(f"function {func.name}\n")
    for block in func.blocks:
        out.write(format_block(block, number=number))
    return out.getvalue()


def print_function(func: Function) -> None:  # pragma: no cover - convenience
    print(format_function(func), end="")
