"""Structural verification of IR functions.

The verifier enforces the invariants the rest of the system relies on; it is
run by the compiler pipeline after every transformation (front end, renaming,
unrolling, rotation, global scheduling, basic-block scheduling), so a bug in
any pass surfaces immediately rather than as a wrong schedule.

Error messages embed the offending instruction's ``repr``, but only *build*
it on failure: the verifier runs over every instruction after every pass, and
eagerly formatting messages for checks that pass dominated its cost (nearly a
quarter of a fuzz campaign's profile before the split into
:func:`_check` / :func:`_check_ins`).
"""

from __future__ import annotations

from .function import Function
from .opcodes import Opcode
from .operand import CR_EQ, CR_GT, CR_LT, RegClass


class VerificationError(ValueError):
    """The function violates an IR structural invariant."""


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise VerificationError(message)


def _check_ins(cond: bool, where: str, ins, problem: str) -> None:
    """Like :func:`_check`, but defers the ``{ins!r}`` formatting to the
    failure path."""
    if not cond:
        raise VerificationError(f"{where}: {ins!r} {problem}")


# per-opcode requirement bits, derived once from the opcode table -- the
# verifier runs over every instruction after every pass, and re-testing
# six tuple memberships per instruction dominated its cost
_MEM_OP = 1        # loads/stores carry a memory operand, nothing else does
_TEST_CR = 2       # BT/BF: single LT/GT/EQ mask bit, one CR use
_NEED_TARGET = 4   # BT/BF/B/BDNZ: branch target present
_DEF_CR = 8        # compares define exactly one CR
_FIXED_MEM = 16    # L/LU/ST/STU: every register operand is a GPR
_NEED_IMM = 32     # immediate-form ops carry their immediate
_LOAD_DEFS = 64    # loads define at least one register
_CALL_NAME = 128   # CALL names its callee

_RULES: dict[Opcode, int] = {}
for _op in Opcode:
    _f = 0
    if _op.is_load or _op.is_store:
        _f |= _MEM_OP
    if _op in (Opcode.BT, Opcode.BF):
        _f |= _TEST_CR | _NEED_TARGET
    if _op in (Opcode.B, Opcode.BDNZ):
        _f |= _NEED_TARGET
    if _op.is_compare:
        _f |= _DEF_CR
    if _op in (Opcode.L, Opcode.LU, Opcode.ST, Opcode.STU):
        _f |= _FIXED_MEM
    if _op in (Opcode.LI, Opcode.AI, Opcode.SI, Opcode.ANDI, Opcode.ORI,
               Opcode.XORI, Opcode.SL, Opcode.SR, Opcode.SRA, Opcode.CI):
        _f |= _NEED_IMM
    if _op.is_load:
        _f |= _LOAD_DEFS
    if _op is Opcode.CALL:
        _f |= _CALL_NAME
    _RULES[_op] = _f
del _op, _f


def _verify_instruction(ins, where: str) -> None:
    flags = _RULES[ins.opcode]
    if not flags:
        # plain computation op: only the no-memory-operand rule applies
        if ins.mem is not None:
            raise VerificationError(
                f"{where}: {ins!r} memory operand mismatch")
        return
    _check_ins((ins.mem is not None) == bool(flags & _MEM_OP),
               where, ins, "memory operand mismatch")
    if flags & _TEST_CR:
        _check_ins(ins.mask in (CR_LT, CR_GT, CR_EQ),
                   where, ins, "mask must be a single LT/GT/EQ bit")
        _check_ins(len(ins.uses) == 1 and ins.uses[0].rclass is RegClass.CR,
                   where, ins, "must test a condition register")
    if flags & _NEED_TARGET:
        _check_ins(ins.target is not None, where, ins, "missing target")
    if flags & _DEF_CR:
        _check_ins(len(ins.defs) == 1 and ins.defs[0].rclass is RegClass.CR,
                   where, ins, "must define a condition register")
    if flags & _FIXED_MEM:
        for reg in ins.defs + ins.uses:
            if reg.rclass is not RegClass.GPR:
                raise VerificationError(
                    f"{where}: {ins!r} fixed-point memory op uses {reg}")
    if flags & _NEED_IMM:
        _check_ins(ins.imm is not None, where, ins, "missing immediate")
    if flags & _LOAD_DEFS:
        _check_ins(len(ins.defs) >= 1, where, ins, "load defines nothing")
    if flags & _CALL_NAME:
        _check_ins(bool(ins.target), where, ins, "call needs a callee name")


def verify_function(func: Function) -> None:
    """Raise :class:`VerificationError` on any broken invariant."""
    _check(bool(func.blocks), f"{func.name}: function has no blocks")

    seen_uids: set[int] = set()
    labels = {b.label for b in func.blocks}
    _check(len(labels) == len(func.blocks), f"{func.name}: duplicate labels")

    for block in func.blocks:
        where = f"{func.name}/{block.label}"
        last = len(block.instrs) - 1
        for i, ins in enumerate(block.instrs):
            uid = ins.uid
            if uid < 0:
                raise VerificationError(f"{where}: {ins!r} has no uid")
            if uid in seen_uids:
                raise VerificationError(
                    f"{where}: duplicate uid I{uid}")
            seen_uids.add(uid)
            if ins.is_branch and i != last:
                raise VerificationError(
                    f"{where}: {ins!r} branch is not the block terminator")
            _verify_instruction(ins, where)
            if ins.target is not None and not ins.is_call:
                _check(ins.target in labels,
                       f"{where}: branch target {ins.target!r} does not exist")
        # A conditional branch in the last block is legal: its fall-through
        # leaves the function (the paper's "... more instructions here ...").


def verify_reachable(func: Function) -> None:
    """Additionally check that every block is reachable from the entry."""
    verify_function(func)
    reached: set[str] = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block.label in reached:
            continue
        reached.add(block.label)
        stack.extend(func.successors(block))
    unreachable = [b.label for b in func.blocks if b.label not in reached]
    _check(not unreachable,
           f"{func.name}: unreachable blocks: {', '.join(unreachable)}")
