"""Structural verification of IR functions.

The verifier enforces the invariants the rest of the system relies on; it is
run by the compiler pipeline after every transformation (front end, renaming,
unrolling, rotation, global scheduling, basic-block scheduling), so a bug in
any pass surfaces immediately rather than as a wrong schedule.

Error messages embed the offending instruction's ``repr``, but only *build*
it on failure: the verifier runs over every instruction after every pass, and
eagerly formatting messages for checks that pass dominated its cost (nearly a
quarter of a fuzz campaign's profile before the split into
:func:`_check` / :func:`_check_ins`).
"""

from __future__ import annotations

from .function import Function
from .opcodes import Opcode
from .operand import CR_EQ, CR_GT, CR_LT, RegClass


class VerificationError(ValueError):
    """The function violates an IR structural invariant."""


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise VerificationError(message)


def _check_ins(cond: bool, where: str, ins, problem: str) -> None:
    """Like :func:`_check`, but defers the ``{ins!r}`` formatting to the
    failure path."""
    if not cond:
        raise VerificationError(f"{where}: {ins!r} {problem}")


def _verify_instruction(ins, where: str) -> None:
    op = ins.opcode
    _check_ins((ins.mem is not None) == (op.is_load or op.is_store),
               where, ins, "memory operand mismatch")
    if op in (Opcode.BT, Opcode.BF):
        _check_ins(ins.mask in (CR_LT, CR_GT, CR_EQ),
                   where, ins, "mask must be a single LT/GT/EQ bit")
        _check_ins(len(ins.uses) == 1 and ins.uses[0].rclass is RegClass.CR,
                   where, ins, "must test a condition register")
        _check_ins(ins.target is not None, where, ins, "missing target")
    if op in (Opcode.B, Opcode.BDNZ):
        _check_ins(ins.target is not None, where, ins, "missing target")
    if op.is_compare:
        _check_ins(len(ins.defs) == 1 and ins.defs[0].rclass is RegClass.CR,
                   where, ins, "must define a condition register")
    if op in (Opcode.L, Opcode.LU, Opcode.ST, Opcode.STU):
        for reg in ins.defs + ins.uses:
            if reg.rclass is not RegClass.GPR:
                raise VerificationError(
                    f"{where}: {ins!r} fixed-point memory op uses {reg}")
    if op is Opcode.LI:
        _check_ins(ins.imm is not None, where, ins, "missing immediate")
    if op in (Opcode.AI, Opcode.SI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
              Opcode.SL, Opcode.SR, Opcode.SRA, Opcode.CI):
        _check_ins(ins.imm is not None, where, ins, "missing immediate")
    if op.is_load:
        _check_ins(len(ins.defs) >= 1, where, ins, "load defines nothing")
    if op is Opcode.CALL:
        _check_ins(bool(ins.target), where, ins, "call needs a callee name")


def verify_function(func: Function) -> None:
    """Raise :class:`VerificationError` on any broken invariant."""
    _check(bool(func.blocks), f"{func.name}: function has no blocks")

    seen_uids: set[int] = set()
    labels = {b.label for b in func.blocks}
    _check(len(labels) == len(func.blocks), f"{func.name}: duplicate labels")

    for block in func.blocks:
        where = f"{func.name}/{block.label}"
        last = len(block.instrs) - 1
        for i, ins in enumerate(block.instrs):
            _check_ins(ins.uid >= 0, where, ins, "has no uid")
            if ins.uid in seen_uids:
                raise VerificationError(
                    f"{where}: duplicate uid I{ins.uid}")
            seen_uids.add(ins.uid)
            _check_ins(not ins.is_branch or i == last,
                       where, ins, "branch is not the block terminator")
            _verify_instruction(ins, where)
            if ins.target is not None and not ins.is_call:
                _check(ins.target in labels,
                       f"{where}: branch target {ins.target!r} does not exist")
        # A conditional branch in the last block is legal: its fall-through
        # leaves the function (the paper's "... more instructions here ...").


def verify_reachable(func: Function) -> None:
    """Additionally check that every block is reachable from the entry."""
    verify_function(func)
    reached: set[str] = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block.label in reached:
            continue
        reached.add(block.label)
        stack.extend(func.successors(block))
    unreachable = [b.label for b in func.blocks if b.label not in reached]
    _check(not unreachable,
           f"{func.name}: unreachable blocks: {', '.join(unreachable)}")
