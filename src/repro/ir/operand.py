"""Operands of the RS/6K-flavoured intermediate representation.

The paper (Section 2) assumes a RISC machine whose only memory-referencing
instructions are loads and stores, with all computation done in registers,
and an *unbounded* supply of symbolic registers (register allocation happens
after scheduling and is out of scope).  We therefore model registers as
immutable (class, index) pairs drawn from an unbounded index space.

Register classes follow the RS/6000:

* ``GPR`` -- fixed-point general purpose registers (``r0``, ``r1``, ...),
* ``FPR`` -- floating point registers (``f0``, ...),
* ``CR``  -- condition registers (``cr0``...); compares define them and
  conditional branches test one of their bits,
* ``CTR`` -- the special counter register of footnote 3 of the paper.

Condition-register values are bit masks.  The paper's branch syntax
``BF CL.4,cr7,0x2/gt`` tests bit ``0x2`` (the *greater-than* bit) of ``cr7``;
we use the same encoding (``LT = 0x1``, ``GT = 0x2``, ``EQ = 0x4``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class RegClass(Enum):
    """Architectural register classes."""

    GPR = "r"
    FPR = "f"
    CR = "cr"
    CTR = "ctr"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegClass.{self.name}"


#: Condition-register bit masks, matching the paper's ``0x1/lt`` notation.
CR_LT = 0x1
CR_GT = 0x2
CR_EQ = 0x4

#: Human-readable names for condition bits, used by the printer/parser.
CR_BIT_NAMES = {CR_LT: "lt", CR_GT: "gt", CR_EQ: "eq"}
CR_NAME_BITS = {name: bit for bit, name in CR_BIT_NAMES.items()}


@dataclass(frozen=True, slots=True)
class Reg:
    """An immutable register operand.

    Registers compare and hash by (class, index), so they can be used freely
    as dictionary keys in dependence and liveness sets.  Indices are
    unbounded: the front end hands out *symbolic* registers from a counter,
    and nothing in the scheduler distinguishes them from "real" ones.
    """

    rclass: RegClass
    index: int
    #: cached ``hash((rclass, index))`` -- registers are the dominant dict
    #: key of the dependence and liveness layers, and hashing the enum
    #: member on every lookup showed up at the top of pipeline profiles
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be >= 0, got {self.index}")
        object.__setattr__(self, "_hash", hash((self.rclass, self.index)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def name(self) -> str:
        """Assembly name, e.g. ``r31``, ``f2``, ``cr7``, ``ctr``."""
        if self.rclass is RegClass.CTR:
            return "ctr"
        return f"{self.rclass.value}{self.index}"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Reg({self.name})"


def gpr(index: int) -> Reg:
    """Shorthand for a general-purpose (fixed point) register."""
    return Reg(RegClass.GPR, index)


def fpr(index: int) -> Reg:
    """Shorthand for a floating point register."""
    return Reg(RegClass.FPR, index)


def cr(index: int) -> Reg:
    """Shorthand for a condition register."""
    return Reg(RegClass.CR, index)


#: The (single) counter register.
CTR = Reg(RegClass.CTR, 0)


@dataclass(frozen=True, slots=True)
class MemRef:
    """A base+displacement memory reference, ``sym(base,disp)`` in Figure 2.

    ``width`` is the access width in bytes; it participates in memory
    disambiguation (two references with the same symbolic base value whose
    ``[disp, disp+width)`` byte ranges do not overlap are independent).
    ``symbol`` is a purely cosmetic annotation (the array name in Figure 2).
    """

    base: Reg
    disp: int
    width: int = 4
    symbol: str = ""

    def __post_init__(self) -> None:
        if self.base.rclass is not RegClass.GPR:
            raise ValueError(f"memory base must be a GPR, got {self.base}")
        if self.width <= 0:
            raise ValueError(f"access width must be positive, got {self.width}")

    def byte_range(self) -> tuple[int, int]:
        """Half-open byte interval touched relative to the base register."""
        return (self.disp, self.disp + self.width)

    def __str__(self) -> str:
        sym = self.symbol or ""
        return f"{sym}({self.base},{self.disp})"


def parse_reg(text: str) -> Reg:
    """Parse a register name such as ``r31``, ``f0``, ``cr7`` or ``ctr``.

    Raises ``ValueError`` for anything else.
    """
    text = text.strip()
    if text == "ctr":
        return CTR
    for rclass in (RegClass.CR, RegClass.FPR, RegClass.GPR):
        prefix = rclass.value
        if text.startswith(prefix) and text[len(prefix) :].isdigit():
            return Reg(rclass, int(text[len(prefix) :]))
    raise ValueError(f"not a register name: {text!r}")
