"""Functions: ordered block lists with layout-derived control flow.

Control-flow edges are *derived* from terminators plus block layout order
(fall-through), exactly like assembly: an unterminated block falls through
to the next block in layout; a conditional branch has the branch target as
its *taken* successor and the next block as its *fall-through* successor.
Deriving edges on demand keeps them automatically consistent through the
unroll/rotate transformations.

The function also owns the two counters the paper's framework relies on:

* the instruction ``uid`` counter (original program order, the final
  scheduling tie breaker), and
* the symbolic register counter (Section 2 assumes an unbounded number of
  symbolic registers; renaming and the front end draw fresh ones here).
"""

from __future__ import annotations

from typing import Iterator

from .basic_block import BasicBlock
from .instruction import Instruction
from .opcodes import Opcode
from .operand import Reg, RegClass


class Function:
    """A compilation unit: named, ordered list of basic blocks."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: list[BasicBlock] = []
        self._labels: dict[str, BasicBlock] = {}
        self._next_uid = 1
        self._next_reg = {rc: 0 for rc in RegClass}
        self._next_label = 0

    # -- block management --------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, label: str | None = None,
                  after: BasicBlock | None = None) -> BasicBlock:
        """Create and insert a new block (at the end, or after ``after``)."""
        if label is None:
            label = self.fresh_label()
        if label in self._labels:
            raise ValueError(f"duplicate label {label!r} in {self.name}")
        block = BasicBlock(label)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.layout_index(after) + 1, block)
        self._labels[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self._labels[label]
        except KeyError:
            raise KeyError(f"no block labelled {label!r} in {self.name}") from None

    def has_block(self, label: str) -> bool:
        return label in self._labels

    def layout_index(self, block: BasicBlock) -> int:
        for i, b in enumerate(self.blocks):
            if b is block:
                return i
        raise ValueError(f"block {block.label} is not in {self.name}")

    def remove_block(self, block: BasicBlock) -> None:
        """Remove ``block`` from the function (caller guarantees nothing
        branches to it or falls into it)."""
        self.blocks.remove(block)
        del self._labels[block.label]

    def fresh_label(self, prefix: str = "CL") -> str:
        """A label not yet used in this function."""
        while True:
            label = f"{prefix}.{self._next_label}"
            self._next_label += 1
            if label not in self._labels:
                return label

    # -- instruction management ---------------------------------------------

    def assign_uid(self, ins: Instruction) -> Instruction:
        """Give ``ins`` the next original-program-order number."""
        ins.uid = self._next_uid
        self._next_uid += 1
        return ins

    def emit(self, block: BasicBlock, ins: Instruction) -> Instruction:
        """Append ``ins`` to ``block``, assigning its uid and tracking its
        registers so fresh symbolic registers never collide."""
        self.assign_uid(ins)
        self.note_registers(ins)
        block.append(ins)
        return ins

    def note_registers(self, ins: Instruction) -> None:
        """Advance the symbolic-register counters past ``ins``'s operands."""
        for reg in (*ins.defs, *ins.uses):
            nxt = self._next_reg[reg.rclass]
            if reg.index >= nxt:
                self._next_reg[reg.rclass] = reg.index + 1

    def new_reg(self, rclass: RegClass) -> Reg:
        """A fresh symbolic register of class ``rclass``."""
        reg = Reg(rclass, self._next_reg[rclass])
        self._next_reg[rclass] += 1
        return reg

    def new_gpr(self) -> Reg:
        return self.new_reg(RegClass.GPR)

    def new_cr(self) -> Reg:
        return self.new_reg(RegClass.CR)

    def new_fpr(self) -> Reg:
        return self.new_reg(RegClass.FPR)

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in layout order."""
        for block in self.blocks:
            yield from block.instrs

    def block_of_map(self) -> dict[int, BasicBlock]:
        """Map ``id(instruction) -> owning block`` (rebuild after moves)."""
        return {id(ins): b for b in self.blocks for ins in b.instrs}

    # -- control flow --------------------------------------------------------

    def fallthrough(self, block: BasicBlock) -> BasicBlock | None:
        """The next block in layout order, or ``None`` for the last block."""
        idx = self.layout_index(block)
        if idx + 1 < len(self.blocks):
            return self.blocks[idx + 1]
        return None

    def successors(self, block: BasicBlock) -> list[BasicBlock]:
        """Control-flow successors; taken target first for conditionals."""
        term = block.terminator
        if term is None:
            nxt = self.fallthrough(block)
            return [nxt] if nxt is not None else []
        op = term.opcode
        if op is Opcode.RET:
            return []
        if op is Opcode.B:
            return [self.block(term.target)]
        # conditional branch: taken target, then fall-through
        succs = [self.block(term.target)]
        nxt = self.fallthrough(block)
        if nxt is not None and nxt is not succs[0]:
            succs.append(nxt)
        return succs

    def predecessors_map(self) -> dict[str, list[BasicBlock]]:
        """Map block label -> predecessor blocks."""
        preds: dict[str, list[BasicBlock]] = {b.label: [] for b in self.blocks}
        for block in self.blocks:
            for succ in self.successors(block):
                preds[succ.label].append(block)
        return preds

    def falls_off_end(self, block: BasicBlock) -> bool:
        """Does control leave the function via ``block``'s fall-through?

        True for the last block when it has no terminator, or when its
        terminator is a conditional branch (the not-taken path exits).
        """
        if self.fallthrough(block) is not None:
            return False
        term = block.terminator
        return term is None or term.opcode.is_conditional

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks from which control can leave the function."""
        exits = []
        for block in self.blocks:
            term = block.terminator
            if term is not None and term.opcode is Opcode.RET:
                exits.append(block)
            elif self.falls_off_end(block):
                exits.append(block)
        return exits

    def clone(self) -> "Function":
        """A deep copy with the same labels, layout, uids and counters.

        Unlike :meth:`Instruction.clone` (which resets uids so the copy can
        be re-emitted), this preserves every uid: the copy is a *snapshot*
        of the function, suitable as the "before" side of the schedule
        verifier, which matches instructions across the two functions by
        uid.
        """
        out = Function(self.name)
        out._next_uid = self._next_uid
        out._next_reg = dict(self._next_reg)
        out._next_label = self._next_label
        for block in self.blocks:
            copy = out.add_block(block.label)
            for ins in block.instrs:
                dup = ins.clone()
                dup.uid = ins.uid
                copy.append(dup)
        return out

    def restore_from(self, snapshot: "Function") -> None:
        """Reset this function, in place, to a prior :meth:`clone`.

        The resilience layer's pass isolation uses this to roll back a
        failed transform: the ``Function`` object identity (held by
        callers and reports) survives, while its blocks, labels and
        counters revert to the snapshot's.  The snapshot is re-cloned so
        it stays pristine for further restores.
        """
        fresh = snapshot.clone()
        self.blocks = fresh.blocks
        self._labels = fresh._labels
        self._next_uid = fresh._next_uid
        self._next_reg = fresh._next_reg
        self._next_label = fresh._next_label

    # -- misc ------------------------------------------------------------------

    def size(self) -> int:
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:
        return (f"<Function {self.name}: {len(self.blocks)} blocks, "
                f"{self.size()} instructions>")
