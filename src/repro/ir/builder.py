"""A convenience builder for constructing IR functions.

The builder tracks a *current block* and provides one well-typed method per
opcode family, assigning instruction uids in emission order (which therefore
becomes the "original program order" the scheduler's final tie-breaker
refers to).

Example -- the paper's BL10::

    fb = Builder(Function("minmax"))
    bl10 = fb.set_block(fb.new_block("CL.9"))
    fb.ai(r29, r29, 2, comment="i = i+2")
    fb.cmp(cr4, r29, r27, comment="i < n")
    fb.bt("CL.0", cr4, CR_LT)
"""

from __future__ import annotations

from .function import Function
from .basic_block import BasicBlock
from .instruction import Instruction
from .opcodes import Opcode
from .operand import CR_EQ, CR_GT, CR_LT, MemRef, Reg


class Builder:
    """Incremental construction of a :class:`Function`."""

    def __init__(self, func: Function):
        self.func = func
        self.block: BasicBlock | None = None

    # -- block plumbing ---------------------------------------------------

    def new_block(self, label: str | None = None) -> BasicBlock:
        return self.func.add_block(label)

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def start_block(self, label: str | None = None) -> BasicBlock:
        """Create a new block and make it current."""
        return self.set_block(self.new_block(label))

    def emit(self, ins: Instruction) -> Instruction:
        if self.block is None:
            raise ValueError("no current block; call start_block() first")
        return self.func.emit(self.block, ins)

    # -- loads / stores ---------------------------------------------------

    def load(self, rd: Reg, base: Reg, disp: int = 0, *, symbol: str = "",
             width: int = 4, comment: str = "") -> Instruction:
        mem = MemRef(base, disp, width, symbol)
        return self.emit(Instruction(Opcode.L, defs=(rd,), uses=(base,),
                                     mem=mem, comment=comment))

    def load_update(self, rd: Reg, base: Reg, disp: int, *, symbol: str = "",
                    width: int = 4, comment: str = "") -> Instruction:
        """``LU rd,base = sym(base,disp)``: load from base+disp, then
        ``base += disp`` (the post-increment form used by I2 of Figure 2)."""
        mem = MemRef(base, disp, width, symbol)
        return self.emit(Instruction(Opcode.LU, defs=(rd, base), uses=(base,),
                                     mem=mem, comment=comment))

    def store(self, rs: Reg, base: Reg, disp: int = 0, *, symbol: str = "",
              width: int = 4, comment: str = "") -> Instruction:
        mem = MemRef(base, disp, width, symbol)
        return self.emit(Instruction(Opcode.ST, uses=(rs, base), mem=mem,
                                     comment=comment))

    def store_update(self, rs: Reg, base: Reg, disp: int, *, symbol: str = "",
                     width: int = 4, comment: str = "") -> Instruction:
        mem = MemRef(base, disp, width, symbol)
        return self.emit(Instruction(Opcode.STU, defs=(base,),
                                     uses=(rs, base), mem=mem, comment=comment))

    # -- moves / immediates -----------------------------------------------

    def li(self, rd: Reg, value: int, *, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.LI, defs=(rd,), imm=value,
                                     comment=comment))

    def lr(self, rd: Reg, rs: Reg, *, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.LR, defs=(rd,), uses=(rs,),
                                     comment=comment))

    # -- arithmetic / logical ----------------------------------------------

    def _binary(self, op: Opcode, rd: Reg, ra: Reg, rb: Reg,
                comment: str) -> Instruction:
        return self.emit(Instruction(op, defs=(rd,), uses=(ra, rb),
                                     comment=comment))

    def _binary_imm(self, op: Opcode, rd: Reg, ra: Reg, imm: int,
                    comment: str) -> Instruction:
        return self.emit(Instruction(op, defs=(rd,), uses=(ra,), imm=imm,
                                     comment=comment))

    def add(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.A, rd, ra, rb, comment)

    def ai(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.AI, rd, ra, imm, comment)

    def sub(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.S, rd, ra, rb, comment)

    def si(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.SI, rd, ra, imm, comment)

    def mul(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.MUL, rd, ra, rb, comment)

    def div(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.DIV, rd, ra, rb, comment)

    def rem(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.REM, rd, ra, rb, comment)

    def and_(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.AND, rd, ra, rb, comment)

    def andi(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.ANDI, rd, ra, imm, comment)

    def or_(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.OR, rd, ra, rb, comment)

    def ori(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.ORI, rd, ra, imm, comment)

    def xor(self, rd, ra, rb, *, comment=""):
        return self._binary(Opcode.XOR, rd, ra, rb, comment)

    def xori(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.XORI, rd, ra, imm, comment)

    def sl(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.SL, rd, ra, imm, comment)

    def sr(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.SR, rd, ra, imm, comment)

    def sra(self, rd, ra, imm, *, comment=""):
        return self._binary_imm(Opcode.SRA, rd, ra, imm, comment)

    def neg(self, rd, ra, *, comment=""):
        return self.emit(Instruction(Opcode.NEG, defs=(rd,), uses=(ra,),
                                     comment=comment))

    def not_(self, rd, ra, *, comment=""):
        return self.emit(Instruction(Opcode.NOT, defs=(rd,), uses=(ra,),
                                     comment=comment))

    # -- compares -----------------------------------------------------------

    def cmp(self, crd: Reg, ra: Reg, rb: Reg, *, comment="") -> Instruction:
        """Fixed point compare: sets the LT/GT/EQ bits of ``crd``."""
        return self.emit(Instruction(Opcode.C, defs=(crd,), uses=(ra, rb),
                                     comment=comment))

    def cmpi(self, crd: Reg, ra: Reg, imm: int, *, comment="") -> Instruction:
        return self.emit(Instruction(Opcode.CI, defs=(crd,), uses=(ra,),
                                     imm=imm, comment=comment))

    # -- branches -------------------------------------------------------------

    def b(self, target: str, *, comment="") -> Instruction:
        return self.emit(Instruction(Opcode.B, target=target, comment=comment))

    def bt(self, target: str, crs: Reg, mask: int, *, comment="") -> Instruction:
        """Branch to ``target`` if the ``mask`` bit of ``crs`` is set."""
        return self.emit(Instruction(Opcode.BT, uses=(crs,), target=target,
                                     mask=mask, comment=comment))

    def bf(self, target: str, crs: Reg, mask: int, *, comment="") -> Instruction:
        """Branch to ``target`` if the ``mask`` bit of ``crs`` is clear."""
        return self.emit(Instruction(Opcode.BF, uses=(crs,), target=target,
                                     mask=mask, comment=comment))

    def call(self, name: str, args: tuple[Reg, ...] = (),
             rets: tuple[Reg, ...] = (), *, comment="") -> Instruction:
        return self.emit(Instruction(Opcode.CALL, defs=rets, uses=args,
                                     target=name, comment=comment))

    def ret(self, value: Reg | None = None, *, comment="") -> Instruction:
        uses = (value,) if value is not None else ()
        return self.emit(Instruction(Opcode.RET, uses=uses, comment=comment))

    def nop(self, *, comment="") -> Instruction:
        return self.emit(Instruction(Opcode.NOP, comment=comment))

    # -- counter register ------------------------------------------------------

    def mtctr(self, ctr: Reg, rs: Reg, *, comment="") -> Instruction:
        return self.emit(Instruction(Opcode.MTCTR, defs=(ctr,), uses=(rs,),
                                     comment=comment))

    def bdnz(self, target: str, ctr: Reg, *, comment="") -> Instruction:
        return self.emit(Instruction(Opcode.BDNZ, defs=(ctr,), uses=(ctr,),
                                     target=target, comment=comment))


__all__ = ["Builder", "CR_LT", "CR_GT", "CR_EQ"]
