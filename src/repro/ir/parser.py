"""Parser for the textual IR format produced by :mod:`repro.ir.printer`.

This lets tests and examples write programs directly in the paper's
pseudo-assembly notation (Figure 2) and feed them to the scheduler::

    func = parse_function('''
    function minmax_loop
    CL.0:
        L     r12=a(r31,4)      ; load u
        LU    r0,r31=a(r31,8)
        C     cr7=r12,r0
        BF    CL.4,cr7,0x2/gt
    ...
    ''')

Explicit ``(I<n>)`` uids are honoured when present (so round-trips preserve
original program order); otherwise uids are assigned in textual order.
"""

from __future__ import annotations

import re

from .function import Function
from .instruction import Instruction
from .opcodes import MNEMONIC_TO_OPCODE, Opcode
from .operand import CR_NAME_BITS, MemRef, Reg, parse_reg


class ParseError(ValueError):
    """Raised for malformed IR text, with a line number and (when the
    offending token can be located) a 1-based column."""

    def __init__(self, lineno: int, message: str,
                 column: int | None = None):
        where = (f"line {lineno}, col {column}" if column is not None
                 else f"line {lineno}")
        super().__init__(f"{where}: {message}")
        self.lineno = lineno
        self.column = column


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_INS_RE = re.compile(r"^(?:\(I(\d+)\)\s+)?([A-Z]+)\s*(.*)$")
_MEM_RE = re.compile(
    r"^(?:([A-Za-z_][\w]*))?\((\w+),(-?\d+)\)(?::(\d+))?$"
)
_CALL_RE = re.compile(r"^(?:(.*)=)?([A-Za-z_][\w.$]*)\((.*)\)$")
_MASK_RE = re.compile(r"^(0x[0-9a-fA-F]+|\d+)(?:/(\w+))?$")


def _parse_mem(text: str, lineno: int) -> MemRef:
    m = _MEM_RE.match(text.strip())
    if m is None:
        raise ParseError(lineno, f"bad memory reference: {text!r}")
    symbol, base, disp, width = m.groups()
    return MemRef(parse_reg(base), int(disp),
                  int(width) if width else 4, symbol or "")


def _parse_regs(text: str, lineno: int) -> list[Reg]:
    regs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            regs.append(parse_reg(part))
        except ValueError as exc:
            raise ParseError(lineno, str(exc)) from None
    return regs


def _parse_mask(text: str, lineno: int) -> int:
    m = _MASK_RE.match(text.strip())
    if m is None:
        raise ParseError(lineno, f"bad condition mask: {text!r}")
    value = int(m.group(1), 0)
    name = m.group(2)
    if name is not None and CR_NAME_BITS.get(name) not in (None, value):
        raise ParseError(lineno, f"mask {value:#x} does not match /{name}")
    return value


def _split_eq(text: str, lineno: int, arrow: bool = False) -> tuple[str, str]:
    sep = "=>" if arrow else "="
    if arrow:
        idx = text.find("=>")
    else:
        # plain '=' that is not part of '=>'
        idx = -1
        for i, ch in enumerate(text):
            if ch == "=" and (i + 1 >= len(text) or text[i + 1] != ">"):
                idx = i
                break
    if idx < 0:
        raise ParseError(lineno, f"expected {sep!r} in operands: {text!r}")
    return text[:idx].strip(), text[idx + len(sep):].strip()


def _parse_operands(op: Opcode, text: str, lineno: int) -> Instruction:
    """Build an Instruction from a mnemonic's operand text."""
    text = text.strip()
    if op in (Opcode.L, Opcode.FL):
        lhs, rhs = _split_eq(text, lineno)
        (rd,) = _parse_regs(lhs, lineno)
        mem = _parse_mem(rhs, lineno)
        return Instruction(op, defs=(rd,), uses=(mem.base,), mem=mem)
    if op is Opcode.LU:
        lhs, rhs = _split_eq(text, lineno)
        rd, rb = _parse_regs(lhs, lineno)
        mem = _parse_mem(rhs, lineno)
        return Instruction(op, defs=(rd, rb), uses=(mem.base,), mem=mem)
    if op in (Opcode.ST, Opcode.FST):
        lhs, rhs = _split_eq(text, lineno, arrow=True)
        (rs,) = _parse_regs(lhs, lineno)
        mem = _parse_mem(rhs, lineno)
        return Instruction(op, uses=(rs, mem.base), mem=mem)
    if op is Opcode.STU:
        lhs, rhs = _split_eq(text, lineno, arrow=True)
        rs, rb = _parse_regs(lhs, lineno)
        mem = _parse_mem(rhs, lineno)
        return Instruction(op, defs=(rb,), uses=(rs, mem.base), mem=mem)
    if op is Opcode.LI:
        lhs, rhs = _split_eq(text, lineno)
        (rd,) = _parse_regs(lhs, lineno)
        return Instruction(op, defs=(rd,), imm=int(rhs, 0))
    if op in (Opcode.LR, Opcode.FMR, Opcode.NEG, Opcode.NOT, Opcode.MTCTR):
        lhs, rhs = _split_eq(text, lineno)
        (rd,) = _parse_regs(lhs, lineno)
        (rs,) = _parse_regs(rhs, lineno)
        return Instruction(op, defs=(rd,), uses=(rs,))
    if op in (Opcode.C, Opcode.FC):
        lhs, rhs = _split_eq(text, lineno)
        (crd,) = _parse_regs(lhs, lineno)
        ra, rb = _parse_regs(rhs, lineno)
        return Instruction(op, defs=(crd,), uses=(ra, rb))
    if op is Opcode.CI:
        lhs, rhs = _split_eq(text, lineno)
        (crd,) = _parse_regs(lhs, lineno)
        ra_text, imm_text = [p.strip() for p in rhs.split(",", 1)]
        return Instruction(op, defs=(crd,), uses=(parse_reg(ra_text),),
                           imm=int(imm_text, 0))
    if op is Opcode.B:
        return Instruction(op, target=text)
    if op is Opcode.BDNZ:
        from .operand import CTR
        return Instruction(op, defs=(CTR,), uses=(CTR,), target=text)
    if op in (Opcode.BT, Opcode.BF):
        parts = [p.strip() for p in text.split(",")]
        if len(parts) != 3:
            raise ParseError(lineno, f"BT/BF needs target,cr,mask: {text!r}")
        target, cr_text, mask_text = parts
        return Instruction(op, uses=(parse_reg(cr_text),), target=target,
                           mask=_parse_mask(mask_text, lineno))
    if op is Opcode.CALL:
        m = _CALL_RE.match(text)
        if m is None:
            raise ParseError(lineno, f"bad call: {text!r}")
        rets_text, name, args_text = m.groups()
        rets = tuple(_parse_regs(rets_text or "", lineno))
        args = tuple(_parse_regs(args_text or "", lineno))
        return Instruction(op, defs=rets, uses=args, target=name)
    if op is Opcode.RET:
        uses = tuple(_parse_regs(text, lineno)) if text else ()
        return Instruction(op, uses=uses)
    if op is Opcode.NOP:
        return Instruction(op)
    # generic binary forms: rd=ra,rb (register) or rd=ra,imm (immediate)
    lhs, rhs = _split_eq(text, lineno)
    (rd,) = _parse_regs(lhs, lineno)
    parts = [p.strip() for p in rhs.split(",")]
    if len(parts) != 2:
        raise ParseError(lineno, f"{op.mnemonic} needs two sources: {text!r}")
    ra = parse_reg(parts[0])
    try:
        rb = parse_reg(parts[1])
    except ValueError:
        return Instruction(op, defs=(rd,), uses=(ra,), imm=int(parts[1], 0))
    return Instruction(op, defs=(rd,), uses=(ra, rb))


def parse_function(text: str) -> Function:
    """Parse one function from ``text``.  See module docstring for format."""
    func: Function | None = None
    block = None
    explicit_uids: list[tuple[Instruction, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)
        comment = line[1].strip() if len(line) > 1 else ""
        stripped = line[0].strip()
        if not stripped:
            continue
        column = raw.index(stripped[0]) + 1
        if stripped.startswith("function "):
            if func is not None:
                raise ParseError(lineno, "second 'function' line", column)
            func = Function(stripped[len("function "):].strip())
            continue
        if func is None:
            raise ParseError(lineno,
                             "expected a 'function <name>' line first",
                             column)
        label_match = _LABEL_RE.match(stripped)
        if label_match is not None:
            block = func.add_block(label_match.group(1))
            continue
        ins_match = _INS_RE.match(stripped)
        if ins_match is None:
            raise ParseError(lineno, f"unrecognised line: {stripped!r}",
                             column)
        uid_text, mnemonic, operands = ins_match.groups()
        opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
        if opcode is None:
            raise ParseError(lineno, f"unknown mnemonic {mnemonic!r}",
                             column + stripped.index(mnemonic))
        if block is None:
            block = func.add_block()
        found = raw.find(operands) if operands else -1
        operand_column = found + 1 if found >= 0 else column
        try:
            ins = _parse_operands(opcode, operands, lineno)
        except ParseError:
            raise
        except ValueError as exc:
            # stray int()/parse_reg failures become located errors too
            raise ParseError(lineno, str(exc), operand_column) from None
        ins.comment = comment
        func.emit(block, ins)
        if uid_text is not None:
            explicit_uids.append((ins, int(uid_text)))
    if func is None:
        raise ParseError(0, "no 'function' line found")
    if explicit_uids:
        if len(explicit_uids) != sum(len(b) for b in func.blocks):
            raise ParseError(0, "either all or no instructions may carry (I<n>) uids")
        seen = set()
        for ins, uid in explicit_uids:
            if uid in seen:
                raise ParseError(0, f"duplicate uid I{uid}")
            seen.add(uid)
            ins.uid = uid
        func._next_uid = max(seen) + 1
    return func
