"""Chaos harness: prove injected faults never escape the safety net.

For each case seed the harness derives a :class:`FaultPlan` and a
generated program, compiles the program *clean* for a reference
observation, then compiles it again with the fault armed and the
resilient pipeline on (verification forced at every rung).  The
resilience property, checked per case:

* the faulted compile either finishes -- in which case every emitted
  schedule was certified at some ladder rung *and* the program's
  observable behaviour (return value, array contents, call sequence)
  matches the clean compile -- or raises a *typed*, reported error;
* an uncaught traceback, or a surviving miscompile, is a property
  violation and fails the case.

``repro chaos --n 200 --seed 1991`` sweeps 200 plans; CI runs a 50-plan
smoke on every push.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable

from ..sched.candidates import ScheduleLevel
from .errors import ResilienceError
from .faults import ActiveFault, FaultPlan, plan_for_seed
from .ladder import ResilienceConfig, worst_rung


@dataclass
class ChaosResult:
    """Outcome of one fault plan against one generated program."""

    case_seed: int
    plan: FaultPlan
    #: "absorbed" (compile finished, observation matched),
    #: "typed-error" (a typed error was reported),
    #: "baseline-error" (the *clean* compile failed -- a pre-existing
    #: bug, not a resilience violation), or "VIOLATION"
    outcome: str
    #: least aggressive rung any function of the unit landed on
    final_rung: str | None = None
    degradations: int = 0
    fired: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome != "VIOLATION"

    def format(self) -> str:
        rung = f" rung={self.final_rung}" if self.final_rung else ""
        note = f" -- {self.detail}" if self.detail else ""
        return (f"seed {self.case_seed}: {self.plan.describe()} -> "
                f"{self.outcome}{rung}"
                f" degradations={self.degradations}{note}")


@dataclass
class ChaosReport:
    """One chaos sweep: every case and the property verdict."""

    master_seed: int
    results: list[ChaosResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def violations(self) -> list[ChaosResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        absorbed = sum(r.outcome == "absorbed" for r in self.results)
        typed = sum(r.outcome == "typed-error" for r in self.results)
        fired = sum(r.fired for r in self.results)
        status = ("ok" if self.ok
                  else f"{len(self.violations)} PROPERTY VIOLATION(S)")
        return (f"chaos: {len(self.results)} fault plans, seed "
                f"{self.master_seed}: {absorbed} absorbed, {typed} typed "
                f"errors, {fired} fired: {status}")


def _observe(unit, program):
    run = unit.run(program.entry, *program.entry_args)
    return (run.return_value, run.arrays, list(run.execution.calls))


def run_chaos_case(case_seed: int, *,
                   machine_name: str = "rs6k") -> ChaosResult:
    """Run one fault plan against one generated program (see module
    docstring for the property checked)."""
    # imported here (not at module level): repro.verify.fuzz pulls in the
    # resilience package for its watchdog, so a module-level import back
    # into repro.verify would be circular
    from ..compiler import compile_c
    from ..machine.configs import CONFIGS
    from ..verify.generator import generate_program
    from ..verify.verifier import ScheduleVerificationError
    from ..xform.pipeline import PipelineConfig

    plan = plan_for_seed(case_seed)
    program = generate_program(case_seed)

    try:
        clean = compile_c(
            program.source, machine=CONFIGS[machine_name](),
            level=ScheduleLevel.SPECULATIVE,
            config=PipelineConfig(verify=True))
        reference = _observe(clean, program)
    except Exception as exc:
        return ChaosResult(case_seed=case_seed, plan=plan,
                           outcome="baseline-error",
                           detail=f"clean compile failed: {exc!r}")

    fault = ActiveFault(plan)
    config = PipelineConfig(
        verify=True,
        resilience=ResilienceConfig(fault=fault))
    try:
        with fault.installed():
            unit = compile_c(
                program.source, machine=CONFIGS[machine_name](),
                level=ScheduleLevel.SPECULATIVE, config=config)
    except (ResilienceError, ScheduleVerificationError) as exc:
        return ChaosResult(case_seed=case_seed, plan=plan,
                           outcome="typed-error", fired=fault.fired,
                           detail=f"{type(exc).__name__}: {exc}")
    except Exception:
        return ChaosResult(
            case_seed=case_seed, plan=plan, outcome="VIOLATION",
            fired=fault.fired,
            detail="uncaught exception:\n" + traceback.format_exc())

    reports = [u.report for u in unit]
    final = worst_rung(getattr(r, "final_rung", "speculative")
                       for r in reports)
    degradations = sum(len(getattr(r, "degradations", ())) for r in reports)
    try:
        observation = _observe(unit, program)
    except Exception as exc:
        # the degraded binary must still run: identity restores the
        # original order, and every other rung was verifier-certified
        return ChaosResult(
            case_seed=case_seed, plan=plan, outcome="VIOLATION",
            final_rung=final, degradations=degradations, fired=fault.fired,
            detail=f"faulted binary crashed at runtime: {exc!r}")
    if observation != reference:
        return ChaosResult(
            case_seed=case_seed, plan=plan, outcome="VIOLATION",
            final_rung=final, degradations=degradations, fired=fault.fired,
            detail=(f"surviving miscompile: observation {observation!r} "
                    f"!= clean {reference!r}"))
    return ChaosResult(case_seed=case_seed, plan=plan, outcome="absorbed",
                       final_rung=final, degradations=degradations,
                       fired=fault.fired)


def run_chaos(n: int, seed: int, *,
              machine_name: str = "rs6k",
              on_progress: Callable[[ChaosResult], None] | None = None,
              ) -> ChaosReport:
    """Sweep ``n`` seeded fault plans; case ``i`` uses
    ``derive_seed(seed, i)`` so any violation reproduces from (seed, i)."""
    from ..verify.fuzz import derive_seed

    report = ChaosReport(master_seed=seed)
    for index in range(n):
        result = run_chaos_case(derive_seed(seed, index),
                                machine_name=machine_name)
        report.results.append(result)
        if on_progress is not None:
            on_progress(result)
    return report
