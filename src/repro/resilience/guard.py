"""Per-stage pass isolation for the pipeline.

One :class:`StageGuard` lives for one rung attempt of one function.  The
pipeline brackets every Section 6 stage with :meth:`StageGuard.stage`,
which layers three protections around the stage body:

* **fault injection** -- an armed chaos fault targeting this stage fires
  here (``pass.exception:*`` raises, ``pass.hang:*`` models the watchdog
  having fired);
* **budgets** -- the per-pass watchdog bounds the body, and the shared
  per-program deadline is checked at every stage boundary;
* **isolation** -- a *skippable* stage (the optional transforms: strength
  reduction, ctr conversion, ahead-of-time renaming, unroll, rotate) that
  fails is rolled back from a pre-stage snapshot and skipped, recording a
  :class:`~repro.obs.events.DegradationEvent`; the function continues at
  the same rung.  A scheduling stage that fails propagates, and the
  ladder runner retries the whole function one rung down.

The program deadline is never absorbed by a skip: running out of the
whole function's budget must reach the runner, which jumps to identity.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext

from ..obs.events import DegradationEvent
from .budget import PROGRAM_SITE, Deadline, watchdog
from .errors import BudgetExceeded, InjectedFault
from .ladder import ResilienceConfig, Rung


def describe_fault(exc: BaseException, limit: int = 200) -> str:
    """One-line, length-capped rendering of a fault for events/reports."""
    text = f"{type(exc).__name__}: {exc}".splitlines()[0]
    return text if len(text) <= limit else text[:limit - 3] + "..."


def classify_fault(exc: BaseException) -> str:
    """The DegradationEvent ``reason`` tag for an exception."""
    if isinstance(exc, BudgetExceeded):
        return "timeout"
    if isinstance(exc, InjectedFault):
        return "injected"
    return "exception"


class StageGuard:
    """Wraps the stages of one rung attempt (see module docstring)."""

    def __init__(self, func, config: ResilienceConfig, rung: Rung,
                 program_deadline: Deadline | None, tracer, metrics):
        self.func = func
        self.config = config
        self.rung = rung
        self.program_deadline = program_deadline
        self.tracer = tracer
        self.metrics = metrics
        #: DegradationEvents for passes skipped during this attempt
        self.degradations: list[DegradationEvent] = []
        #: Per-stage protection (pre-stage snapshots, in-place skips) is
        #: only bought when something can actually fire inside a stage:
        #: a pass budget or an armed fault.  Unarmed, a genuine crash
        #: still fails soft -- it propagates to the ladder runner, which
        #: restores the pristine clone and retries one rung down -- and
        #: the inert path skips the per-stage clones (the <2% bench gate).
        self.armed = (config.fault is not None
                      or config.pass_budget_s is not None)
        #: With no deadline either, the guard has nothing to watch at a
        #: stage boundary; :meth:`stage` degenerates to a nullcontext so
        #: the inert resilient pipeline costs no per-stage generators.
        self.inert = not self.armed and program_deadline is None
        self._null = nullcontext()

    def stage(self, name: str, *, skippable: bool = False,
              on_restore=None):
        if self.inert:
            # exceptions still propagate to the ladder runner unchanged
            return self._null
        return self._guarded_stage(name, skippable=skippable,
                                   on_restore=on_restore)

    @contextmanager
    def _guarded_stage(self, name: str, *, skippable: bool = False,
                       on_restore=None):
        if self.program_deadline is not None:
            self.program_deadline.check()
        skippable = skippable and self.armed
        fault = self.config.fault
        snapshot = self.func.clone() if skippable else None
        try:
            with watchdog(self.config.pass_budget_s, f"pass:{name}",
                          preemptive=self.config.preemptive):
                yield
                # injection fires *after* the body: a @contextmanager must
                # yield exactly once, so a pre-body raise could not be
                # suppressed here.  Rolling the snapshot back makes this
                # indistinguishable from the pass crashing at its end.
                if fault is not None:
                    fault.fire_stage(name)
        except BudgetExceeded as exc:
            if exc.site == PROGRAM_SITE or not skippable:
                raise
            self._skip(name, snapshot, exc, on_restore)
        except Exception as exc:
            if not skippable:
                raise
            self._skip(name, snapshot, exc, on_restore)

    def _skip(self, name: str, snapshot, exc: Exception, on_restore) -> None:
        """Roll the function back and record the skipped stage."""
        self.func.restore_from(snapshot)
        if on_restore is not None:
            on_restore()
        event = DegradationEvent(
            function=self.func.name,
            site=f"pass:{name}",
            action="pass-skipped",
            from_rung=self.rung.value,
            to_rung=self.rung.value,
            reason=classify_fault(exc),
            detail=describe_fault(exc),
        )
        self.degradations.append(event)
        if self.tracer.enabled:
            self.tracer.emit(event)
        if self.metrics.enabled:
            self.metrics.inc("resilience.degradations")
            self.metrics.inc("resilience.pass_skips")
            if event.reason == "timeout":
                self.metrics.inc("resilience.timeouts")
