"""Monotonic-clock budgets and the pass/program watchdog.

:class:`Deadline` measures against :func:`time.monotonic`, so budgets are
immune to wall-clock adjustments.  :func:`watchdog` bounds a block of code
by one:

* **preemptively** when possible -- on a Unix main thread it arms
  ``SIGALRM`` (via ``setitimer``) so even a pass stuck in a loop that
  never returns is interrupted mid-flight with
  :class:`~repro.resilience.errors.BudgetExceeded`;
* **cooperatively** otherwise (non-main threads, platforms without
  ``SIGALRM``) -- the overrun is detected when the block finishes.

Watchdogs nest: the pipeline arms a per-program deadline around each
ladder attempt and a per-pass deadline inside it; the alarm always tracks
the soonest-expiring deadline on the stack, and an expired *outer*
deadline wins over an inner one (a program that is out of budget must not
be saved by a pass that still has some).
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager

from .errors import BudgetExceeded

#: the ``site`` of the whole-program deadline -- stage guards treat it
#: specially (it is never absorbed by skipping a pass)
PROGRAM_SITE = "program"

#: active deadlines, outermost first (single scheduler thread by design)
_stack: list["Deadline"] = []
_previous_handler = None


class Deadline:
    """One named wall-clock budget, started at construction."""

    __slots__ = ("site", "budget_s", "started")

    def __init__(self, budget_s: float, site: str = "budget"):
        self.site = site
        self.budget_s = float(budget_s)
        self.started = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started

    @property
    def remaining(self) -> float:
        return self.budget_s - self.elapsed

    @property
    def expired(self) -> bool:
        return self.remaining <= 0.0

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the budget is spent."""
        if self.expired:
            raise BudgetExceeded(self.site, self.budget_s, self.elapsed)

    def __repr__(self) -> str:
        return (f"<Deadline {self.site}: {self.remaining * 1e3:.0f} ms of "
                f"{self.budget_s * 1e3:.0f} ms left>")


def can_preempt() -> bool:
    """Is the preemptive (SIGALRM) watchdog available right now?"""
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def _arm() -> None:
    """(Re)arm the alarm for the soonest deadline on the stack."""
    if not _stack:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        return
    soonest = min(d.remaining for d in _stack)
    # an already-expired deadline still needs a positive timer value
    signal.setitimer(signal.ITIMER_REAL, max(soonest, 1e-4))


def _fire(signum, frame) -> None:
    # outermost-first: an exhausted program budget outranks a pass budget
    for deadline in _stack:
        if deadline.expired:
            raise BudgetExceeded(deadline.site, deadline.budget_s,
                                 deadline.elapsed)
    _arm()  # raced a pop/re-push: nothing actually expired, keep watching


@contextmanager
def watchdog(budget, site: str = "budget", *, preemptive: bool = True,
             check_on_exit: bool = True):
    """Bound the enclosed block by a wall-clock budget.

    ``budget`` is seconds, an existing :class:`Deadline` (shared across
    several blocks, e.g. the per-program deadline spanning ladder rungs),
    or None (no-op).  ``check_on_exit=False`` suppresses the cooperative
    post-hoc check -- used for the program deadline so an attempt that
    *finished* just past its budget still ships its verified result.
    """
    if budget is None:
        yield None
        return
    deadline = budget if isinstance(budget, Deadline) else Deadline(budget,
                                                                    site)
    use_alarm = preemptive and can_preempt()
    global _previous_handler
    if use_alarm:
        if not _stack:
            _previous_handler = signal.signal(signal.SIGALRM, _fire)
        _stack.append(deadline)
        _arm()
    try:
        yield deadline
        if check_on_exit:
            deadline.check()
    finally:
        if use_alarm:
            _stack.remove(deadline)
            _arm()
            if not _stack:
                signal.signal(signal.SIGALRM,
                              _previous_handler or signal.SIG_DFL)
                _previous_handler = None
