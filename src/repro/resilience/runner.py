"""The fail-soft pipeline driver: retry down the degradation ladder.

:func:`resilient_optimize` is what :func:`repro.xform.pipeline.optimize`
delegates to when ``PipelineConfig.resilience`` is set.  It runs the
normal Section 6 flow (``_optimize_once``) under a :class:`StageGuard`
and, when an attempt fails outright -- a scheduling stage crashed, a
budget expired, the verifier rejected the result -- restores the function
from a pristine snapshot and retries one rung down:

    speculative -> useful -> bb -> identity

An exhausted *program* budget short-circuits straight to identity.  The
identity rung restores the original instruction order and cannot fail,
so every compile terminates with either a scheduled-and-(optionally)
verified function or the untouched input -- never a traceback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields

from ..ir.function import Function
from ..machine.model import MachineModel
from ..obs.events import DegradationEvent
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..sched.candidates import ScheduleLevel
from ..verify.verifier import ScheduleVerificationError
from ..xform.pipeline import PipelineConfig, PipelineReport, _optimize_once
from .budget import PROGRAM_SITE, Deadline, watchdog
from .errors import BudgetExceeded, DegradationExhausted
from .guard import StageGuard, classify_fault, describe_fault
from .ladder import Rung, ladder_for, rung_config


@dataclass
class AttemptRecord:
    """One ladder rung tried for one function."""

    rung: str
    #: "ok" | "failed"
    outcome: str
    #: failure classification ("" when ok)
    reason: str = ""
    detail: str = ""
    elapsed_s: float = 0.0


@dataclass
class ResilientPipelineReport(PipelineReport):
    """A :class:`PipelineReport` plus the resilience story of the compile.

    The inherited fields describe the *successful* attempt (all empty for
    an identity-rung outcome); ``attempts`` records every rung tried.
    """

    final_rung: str = Rung.SPECULATIVE.value
    attempts: list[AttemptRecord] = field(default_factory=list)
    degradations: list[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return (self.final_rung != self.attempts[0].rung
                if self.attempts else False)


_REPORT_FIELDS = fields(PipelineReport)


def _promote(inner: PipelineReport | None, level: ScheduleLevel,
             elapsed_s: float) -> ResilientPipelineReport:
    """Lift the winning attempt's plain report into the resilient one."""
    if inner is None:
        return ResilientPipelineReport(level=level, elapsed_seconds=elapsed_s)
    values = {f.name: getattr(inner, f.name) for f in _REPORT_FIELDS}
    values["elapsed_seconds"] = elapsed_s
    return ResilientPipelineReport(**values)


def resilient_optimize(
    func: Function,
    machine: MachineModel,
    config: PipelineConfig,
    *,
    live_at_exit=None,
) -> ResilientPipelineReport:
    """Run the pipeline on ``func`` with pass isolation and the ladder."""
    rcfg = config.resilience
    assert rcfg is not None
    tracer = config.trace if config.trace is not None else NULL_TRACER
    metrics = config.metrics if config.metrics is not None else NULL_METRICS
    started = time.perf_counter()
    pristine = func.clone()
    program_deadline = (Deadline(rcfg.program_budget_s, PROGRAM_SITE)
                        if rcfg.program_budget_s is not None else None)
    rungs = ladder_for(config)
    attempts: list[AttemptRecord] = []
    degradations: list[DegradationEvent] = []

    def descend(rung: Rung, to: Rung, exc: Exception) -> None:
        reason = ("verify-failed"
                  if isinstance(exc, ScheduleVerificationError)
                  else classify_fault(exc))
        detail = describe_fault(exc)
        attempts.append(AttemptRecord(
            rung=rung.value, outcome="failed", reason=reason, detail=detail))
        event = DegradationEvent(
            function=func.name,
            site=getattr(exc, "site", "pipeline"),
            action="rung-descent",
            from_rung=rung.value,
            to_rung=to.value,
            reason=reason,
            detail=detail,
        )
        degradations.append(event)
        if tracer.enabled:
            tracer.emit(event)
        if metrics.enabled:
            metrics.inc("resilience.degradations")
            metrics.inc("resilience.rung_descents")
            if reason == "timeout":
                metrics.inc("resilience.timeouts")

    index = 0
    while index < len(rungs):
        rung = rungs[index]
        fallback = index > 0
        if fallback:
            func.restore_from(pristine)
        if rung is Rung.IDENTITY:
            attempts.append(AttemptRecord(rung=rung.value, outcome="ok"))
            break
        if program_deadline is not None and program_deadline.expired:
            # out of time for the whole function: straight to identity
            exc = BudgetExceeded(PROGRAM_SITE, program_deadline.budget_s,
                                 program_deadline.elapsed)
            descend(rung, rungs[-1], exc)
            index = len(rungs) - 1
            continue
        attempt_config = rung_config(
            config, rung, fallback=fallback,
            verify_on_fallback=rcfg.verify_on_fallback)
        guard = StageGuard(func, rcfg, rung, program_deadline,
                           tracer, metrics)
        attempt_started = time.perf_counter()
        try:
            with watchdog(program_deadline, PROGRAM_SITE,
                          preemptive=rcfg.preemptive, check_on_exit=False):
                inner = _optimize_once(func, machine, attempt_config,
                                       live_at_exit=live_at_exit,
                                       guard=guard)
        except Exception as exc:
            degradations.extend(guard.degradations)
            if (isinstance(exc, BudgetExceeded)
                    and exc.site == PROGRAM_SITE):
                descend(rung, rungs[-1], exc)
                index = len(rungs) - 1
            else:
                descend(rung, rungs[index + 1], exc)
                index += 1
            continue
        degradations.extend(guard.degradations)
        attempts.append(AttemptRecord(
            rung=rung.value, outcome="ok",
            elapsed_s=time.perf_counter() - attempt_started))
        report = _promote(inner, config.level,
                          time.perf_counter() - started)
        report.final_rung = rung.value
        report.attempts = attempts
        report.degradations = degradations
        if metrics.enabled and attempts[0].outcome != "ok":
            metrics.inc("resilience.functions_degraded")
        return report
    else:  # pragma: no cover - unreachable while IDENTITY ends every ladder
        raise DegradationExhausted(
            func.name, [(a.rung, a.reason) for a in attempts])

    # identity rung: ship the pristine original order, trivially correct
    func.restore_from(pristine)
    report = _promote(None, config.level, time.perf_counter() - started)
    report.final_rung = Rung.IDENTITY.value
    report.attempts = attempts
    report.degradations = degradations
    if metrics.enabled:
        metrics.inc("resilience.identity_fallbacks")
        if attempts[0].outcome != "ok":
            metrics.inc("resilience.functions_degraded")
    return report
