"""The degradation ladder: aggressiveness rungs and their pipeline configs.

The paper's safety argument (Section 2: hardware interlocks guarantee
correctness, freeing the scheduler to be aggressive) has a software
analogue here: because the PR-1 verifier can certify any schedule after
the fact, a failing compile never has to die -- it retries one rung down:

    speculative  ->  useful  ->  bb  ->  identity

* ``speculative`` -- the full Section 6 flow with 1-branch speculation;
* ``useful``      -- global motion between equivalent blocks only;
* ``bb``          -- no global scheduling, :mod:`repro.sched.bb_sched`
  per block (the BASE compiler);
* ``identity``    -- the original instruction order, untouched; it cannot
  fail and needs no verification, so the ladder always terminates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum

from ..sched.candidates import ScheduleLevel


class Rung(Enum):
    """One aggressiveness level of the degradation ladder."""

    SPECULATIVE = "speculative"
    USEFUL = "useful"
    BB = "bb"
    IDENTITY = "identity"


#: most- to least-aggressive; every ladder is a suffix of this
LADDER: tuple[Rung, ...] = (Rung.SPECULATIVE, Rung.USEFUL, Rung.BB,
                            Rung.IDENTITY)

_RUNG_LEVEL = {
    Rung.SPECULATIVE: ScheduleLevel.SPECULATIVE,
    Rung.USEFUL: ScheduleLevel.USEFUL,
    Rung.BB: ScheduleLevel.NONE,
}


@dataclass
class ResilienceConfig:
    """Knobs of the fail-soft pipeline (``PipelineConfig.resilience``).

    All defaults are inert: no budgets, no faults -- the guards then cost
    a few context managers and one pristine clone per function (gated
    below 2% by ``benchmarks/perf/run_pipeline_bench.py``).
    """

    #: wall-clock budget per pipeline stage (None = unlimited)
    pass_budget_s: float | None = None
    #: wall-clock budget for the whole function, across every rung
    #: attempt; once spent, the ladder jumps straight to ``identity``
    program_budget_s: float | None = None
    #: arm SIGALRM so hung passes are interrupted mid-flight (Unix main
    #: thread only; elsewhere overruns are detected cooperatively)
    preemptive: bool = True
    #: force the PR-1 verifier on for every fallback rung, so a degraded
    #: schedule is always certified before it ships
    verify_on_fallback: bool = True
    #: an armed chaos fault (:class:`repro.resilience.faults.ActiveFault`)
    #: -- None outside fault-injection runs
    fault: object | None = None


def start_rung(config) -> Rung:
    """The rung matching a :class:`~repro.xform.pipeline.PipelineConfig`'s
    requested aggressiveness."""
    if config.level is ScheduleLevel.SPECULATIVE:
        return Rung.SPECULATIVE
    if config.level is ScheduleLevel.USEFUL:
        return Rung.USEFUL
    return Rung.BB if config.post_bb_pass else Rung.IDENTITY


def ladder_for(config) -> list[Rung]:
    """The rungs to attempt, most aggressive first, ending in IDENTITY."""
    first = LADDER.index(start_rung(config))
    rungs = [r for r in LADDER[first:]
             # a caller that disabled the block post-pass never asked for
             # bb scheduling, so that rung is not a valid fallback either
             if not (r is Rung.BB and not config.post_bb_pass)]
    return rungs


def rung_config(base, rung: Rung, *, fallback: bool,
                verify_on_fallback: bool):
    """Derive the pipeline config for one rung attempt (None = identity:
    no pipeline runs at all)."""
    if rung is Rung.IDENTITY:
        return None
    verify = base.verify or (fallback and verify_on_fallback)
    return dataclasses.replace(base, level=_RUNG_LEVEL[rung], verify=verify)


def worst_rung(names) -> str:
    """The least aggressive (furthest degraded) of several rung names --
    campaign tooling summarises per-function reports with it."""
    order = [r.value for r in LADDER]
    names = list(names)
    if not names:
        return Rung.IDENTITY.value
    return max(names, key=order.index)
