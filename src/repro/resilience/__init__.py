"""Fail-soft compilation: pass isolation, budgets, degradation, chaos.

The paper trusts hardware interlocks to keep aggressive scheduling safe
(Section 2); this package is the software analogue for the *compiler
itself*.  Because the PR-1 verifier can certify any schedule after the
fact, no pipeline failure needs to be fatal:

* :mod:`~repro.resilience.guard` isolates each Section 6 stage --
  optional transforms that crash or overrun are rolled back and skipped;
* :mod:`~repro.resilience.budget` bounds passes and whole functions with
  monotonic-clock watchdogs (preemptive SIGALRM where available);
* :mod:`~repro.resilience.ladder` + :mod:`~repro.resilience.runner`
  retry failed compiles down speculative -> useful -> bb -> identity,
  verifying every fallback rung;
* :mod:`~repro.resilience.faults` + :mod:`~repro.resilience.chaos`
  prove it all works by injecting seeded faults and checking that none
  ever escapes as a traceback or a miscompile.

Enable via ``PipelineConfig(resilience=ResilienceConfig(...))``.
"""

from .budget import Deadline, can_preempt, watchdog
from .chaos import ChaosReport, ChaosResult, run_chaos, run_chaos_case
from .errors import (
    BudgetExceeded,
    CheckpointError,
    DegradationExhausted,
    InjectedFault,
    ResilienceError,
)
from .faults import (
    SERVICE_SITES,
    SITES,
    ActiveFault,
    FaultPlan,
    ServiceFaultPlan,
    plan_for_seed,
    service_plan_for_seed,
)
from .ladder import LADDER, ResilienceConfig, Rung, worst_rung
from .service_chaos import run_service_chaos, run_service_chaos_case
from .runner import (
    AttemptRecord,
    ResilientPipelineReport,
    resilient_optimize,
)

__all__ = [
    "LADDER",
    "SITES",
    "ActiveFault",
    "AttemptRecord",
    "BudgetExceeded",
    "ChaosReport",
    "ChaosResult",
    "CheckpointError",
    "Deadline",
    "DegradationExhausted",
    "FaultPlan",
    "InjectedFault",
    "ResilienceConfig",
    "ResilienceError",
    "ResilientPipelineReport",
    "Rung",
    "SERVICE_SITES",
    "ServiceFaultPlan",
    "can_preempt",
    "plan_for_seed",
    "resilient_optimize",
    "run_chaos",
    "run_chaos_case",
    "run_service_chaos",
    "run_service_chaos_case",
    "service_plan_for_seed",
    "watchdog",
    "worst_rung",
]
