"""Seeded fault injection for the resilient pipeline.

A :class:`FaultPlan` is a pure function of its seed: which of the named
:data:`SITES` misbehaves, which stage it targets, and a small numeric
parameter.  :class:`ActiveFault` arms one plan for one compile --
``fire_stage`` is consulted by the :class:`~repro.resilience.guard.StageGuard`
at every stage entry, and :meth:`ActiveFault.installed` monkey-patches the
environment-corruption sites for the duration of the compile.

Corruption sites patch the *scheduler's* view only: ``repro.pdg.pdg`` and
``repro.sched.bb_sched`` bind their DDG builders at import time, so
swapping those module attributes poisons scheduling while the PR-1
verifier keeps an honest dependence graph to judge the result with -- it
imports ``build_block_ddg`` from ``repro.pdg.data_deps`` at call time
for its per-block check, and injects ``data_deps.build_region_ddg`` as
an explicit ``ddg_builder`` into :class:`~repro.pdg.pdg.RegionPDG` for
its region check.  That separation is what the chaos property tests
exercise: an injected miscompile must be *caught*, so the fault must not
be able to corrupt the judge.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass

from .errors import BudgetExceeded, InjectedFault

#: every fault site the chaos layer can exercise
SITES: tuple[str, ...] = (
    "pass.exception",      # a pipeline stage raises mid-flight
    "pass.hang",           # a pipeline stage hangs (models the watchdog)
    "ddg.drop-edge",       # dependence edges silently vanish
    "ddg.zero-delay",      # flow-edge delays collapse to zero
    "cache.stale-liveness",  # liveness invalidation stops working
    "live.truncate",       # the Section 5.3 live-on-exit veto goes blind
)

#: stages a pass.* fault may target (ctr is off in default configs)
STAGES: tuple[str, ...] = (
    "strength-reduce", "rename-ahead", "unroll",
    "global-pass-1", "rotate", "global-pass-2", "bb-post",
)

#: service-boundary fault sites (``repro chaos --service``); injected
#: against a live daemon by :mod:`repro.resilience.service_chaos`
SERVICE_SITES: tuple[str, ...] = (
    "worker.kill",          # SIGKILL the pool workers mid-batch
    "worker.hang",          # a worker wedges past the hang deadline
    "client.disconnect",    # the client vanishes before reading replies
    "journal.torn-write",   # the WAL's final record is half-flushed
    "socket.partial-frame",  # frames arrive split, oversized, or cut off
)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """One deterministic service-boundary fault, described by its seed."""

    seed: int
    site: str
    #: site-specific knob (bytes torn off the journal tail, frame splits)
    param: int

    def describe(self) -> str:
        return f"{self.site} (seed {self.seed}, param {self.param})"


def service_plan_for_seed(seed: int) -> ServiceFaultPlan:
    """The service fault plan of ``seed`` -- same seed, same plan."""
    rng = random.Random(seed)
    site = rng.choice(SERVICE_SITES)
    param = rng.randrange(2, 6)
    return ServiceFaultPlan(seed=seed, site=site, param=param)


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault, fully described by its seed."""

    seed: int
    site: str
    #: target stage for ``pass.*`` sites, None otherwise
    stage: str | None
    #: site-specific knob (modulus for ``ddg.drop-edge``)
    param: int

    def describe(self) -> str:
        target = f":{self.stage}" if self.stage else ""
        return f"{self.site}{target} (seed {self.seed}, param {self.param})"


def plan_for_seed(seed: int) -> FaultPlan:
    """The fault plan of ``seed`` -- same seed, same plan, forever."""
    rng = random.Random(seed)
    site = rng.choice(SITES)
    stage = rng.choice(STAGES) if site.startswith("pass.") else None
    param = rng.randrange(2, 6)
    return FaultPlan(seed=seed, site=site, stage=stage, param=param)


class ActiveFault:
    """One armed :class:`FaultPlan`; attach as ``ResilienceConfig.fault``
    and wrap the compile in :meth:`installed`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: did the fault actually trigger during the compile?
        self.fired = False

    def fire_stage(self, name: str) -> None:
        """Called by the stage guard at every stage entry."""
        plan = self.plan
        if plan.stage != name:
            return
        if plan.site == "pass.exception":
            self.fired = True
            raise InjectedFault(f"pass:{name}")
        if plan.site == "pass.hang":
            # a hang IS a watchdog firing; model it as the budget error
            # the preemptive alarm would have raised
            self.fired = True
            raise BudgetExceeded(f"pass:{name}", 0.0, 0.0)

    # -- environment corruption ---------------------------------------------

    def _corrupt_ddg(self, ddg) -> None:
        plan = self.plan
        edges = list(ddg.iter_edges())
        if plan.site == "ddg.drop-edge":
            victims = [e for i, e in enumerate(edges) if i % plan.param == 0]
            for edge in victims:
                ddg.remove_edge(edge)
            self.fired = self.fired or bool(victims)
        elif plan.site == "ddg.zero-delay":
            victims = [e for e in edges if e.delay > 0]
            for edge in victims:
                ddg.remove_edge(edge)
                ddg.add_edge(edge.src, edge.dst, edge.kind, 0, edge.reg)
            self.fired = self.fired or bool(victims)

    @contextmanager
    def installed(self):
        """Patch the plan's corruption site in for the enclosed compile."""
        plan = self.plan
        if plan.site in ("ddg.drop-edge", "ddg.zero-delay"):
            from ..pdg import pdg as region_pdg_module
            from ..sched import bb_sched

            def wrap(real):
                def corrupted(*args, **kwargs):
                    ddg = real(*args, **kwargs)
                    self._corrupt_ddg(ddg)
                    return ddg
                return corrupted

            saved = (region_pdg_module.build_region_ddg,
                     bb_sched.build_block_ddg)
            region_pdg_module.build_region_ddg = wrap(saved[0])
            bb_sched.build_block_ddg = wrap(saved[1])
            try:
                yield
            finally:
                region_pdg_module.build_region_ddg = saved[0]
                bb_sched.build_block_ddg = saved[1]
        elif plan.site == "cache.stale-liveness":
            from ..dataflow import cache as cache_module

            saved_invalidate = cache_module.AnalysisCache.invalidate_liveness

            def stale(cache_self):
                self.fired = True  # liveness silently kept stale

            cache_module.AnalysisCache.invalidate_liveness = stale
            try:
                yield
            finally:
                cache_module.AnalysisCache.invalidate_liveness = (
                    saved_invalidate)
        elif plan.site == "live.truncate":
            from ..sched import driver as driver_module

            real_tracker = driver_module.LiveOnExitTracker
            fault = self

            class TruncatedTracker(real_tracker):
                """Live-on-exit sets read as empty: every speculative
                motion looks legal (the paper's x=5/x=3 clobber)."""

                def blocks_motion(self, ins, target):
                    fault.fired = True
                    return False

                def blocking_regs(self, ins, target):
                    return ()

            driver_module.LiveOnExitTracker = TruncatedTracker
            try:
                yield
            finally:
                driver_module.LiveOnExitTracker = real_tracker
        else:
            yield
