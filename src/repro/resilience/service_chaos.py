"""Service-boundary chaos: prove the daemon survives its environment.

PR 4's chaos harness injects faults *inside* one compile; this module
injects them at the *service* boundary -- ``repro chaos --service`` --
where the failure modes are processes and sockets, not passes:

* ``worker.kill``         -- SIGKILL every pool worker mid-batch;
* ``worker.hang``         -- a worker wedges past the hang deadline;
* ``client.disconnect``   -- the client vanishes before reading replies;
* ``journal.torn-write``  -- the WAL's final record is half-flushed and
  the daemon restarts with ``--resume-journal``;
* ``socket.partial-frame`` -- frames arrive split across packets,
  oversized, or cut off by EOF.

Each case derives a deterministic request batch from its seed (distinct
sources with ``verify`` forced on, a duplicate, a malformed line, and --
for the worker sites -- a ``chaos_hang_s`` sleeper), computes a clean
single-process **reference** response set, certifies the reference
compiles against the BSP lower-bound gate (Papp et al.), then runs the
batch through a daemon with the fault armed.  The service resilience
property, per case:

* every request id is answered, and each answer is byte-identical to
  the reference (``cache-hit`` and ``ok`` count as the same answer --
  the artifact bytes are what matters) **or** a typed substitute
  (``error`` / ``quarantined`` / ``overloaded``);
* the daemon never hangs (a case deadline backstops every scenario),
  never dies, and never emits an answer that diverges from the
  verified, BSP-checked reference -- that would be a serving miscompile.

Outcomes reuse the PR-4 vocabulary: ``absorbed`` (every answer matched
the reference), ``typed-error`` (some answers were typed substitutes),
``baseline-error`` (the clean reference itself failed), ``VIOLATION``.
"""

from __future__ import annotations

import io
import json
import os
import signal
import socket
import tempfile
import threading
import time
import traceback
from random import Random
from typing import Callable

from .budget import watchdog
from .chaos import ChaosReport, ChaosResult
from .errors import BudgetExceeded
from .faults import service_plan_for_seed

#: statuses that are acceptable typed substitutes for a reference answer
TYPED_STATUSES = frozenset({"error", "quarantined", "overloaded"})

#: wall-clock backstop per case: a scenario past this is a hang VIOLATION
CASE_DEADLINE_S = 60.0


# -- deterministic request batches -------------------------------------------

def _case_requests(case_seed: int, site: str):
    """(lines, expected_ids): the seed's request batch.  Every
    well-formed request carries an explicit id and ``verify: true`` so
    anything the daemon answers with an artifact was verifier-certified."""
    rng = Random(case_seed)
    lines: list[str] = []
    expected: list[int] = []
    sources: list[str] = []
    for i in range(3):
        a, b = rng.randrange(1, 50), rng.randrange(1, 20)
        source = (f"int f{i}(int x) {{ int y; y = x * {a} + {b}; "
                  f"if (y > {a}) y = y - {b}; return y + {i}; }}")
        sources.append(source)
        lines.append(json.dumps({"id": i, "source": source,
                                 "config": {"verify": True}}))
        expected.append(i)
    # a duplicate of source 0 under its own id: exercises in-batch dedupe
    lines.append(json.dumps({"id": 3, "source": sources[0],
                             "config": {"verify": True}}))
    expected.append(3)
    # one malformed line: a typed error in every run, faulted or not
    lines.append('{"id": 4, "source": unterminated')
    if site in ("worker.kill", "worker.hang"):
        # a *distinct* source: a duplicate would ride the dedupe path
        # and the injected sleep would never run
        c = rng.randrange(1, 30)
        sleeper = (f"int f3(int x) {{ int z; z = x + {c}; "
                   f"return z * 2 - {c}; }}")
        sources.append(sleeper)
        hang_s = 0.25 if site == "worker.kill" else 3.0
        lines.append(json.dumps({"id": 5, "source": sleeper,
                                 "config": {"verify": True},
                                 "chaos_hang_s": hang_s}))
        expected.append(5)
    return lines, expected, sources


def _normalize(response: dict) -> dict:
    """``cache-hit`` and ``ok`` are the same answer: the cache serves
    byte-identical artifacts by construction."""
    out = dict(response)
    if out.get("status") == "cache-hit":
        out["status"] = "ok"
    return out


def _reference(lines: list[str], machine_name: str,
               sources: list[str]) -> dict[int, dict]:
    """Clean single-process response set, BSP-certified."""
    from ..machine.configs import CONFIGS
    from ..sched.candidates import ScheduleLevel
    from ..sim.bsp import check_bsp
    from ..xform.pipeline import PipelineConfig

    # certify the reference compiles against the BSP lower-bound gate:
    # a reference answer that under-runs the cost model is not a real
    # schedule and must never become the yardstick
    from ..compiler import compile_c

    for i, source in enumerate(sources):
        unit = compile_c(source, machine=CONFIGS[machine_name](),
                         level=ScheduleLevel.SPECULATIVE,
                         config=PipelineConfig(verify=True))[f"f{i}"]
        run = unit.run(i + 2)
        bsp = check_bsp(run.execution.instr_trace, unit.machine, run.cycles)
        if not bsp.ok:
            raise RuntimeError(
                f"BSP cross-check failed for f{i}: {bsp.violations}")

    from ..service import Daemon, ServeConfig

    config = ServeConfig(jobs=1, machine=machine_name, allow_chaos=True,
                         timeout_s=0.5)
    with Daemon(config) as daemon:
        responses = daemon.serve_batch_lines(lines)
    return {r["id"]: _normalize(r) for r in responses
            if isinstance(r.get("id"), int)}


def _classify(reference: dict[int, dict], expected_ids: list[int],
              collected: list[dict]) -> tuple[str, str]:
    """Apply the service resilience property to one scenario's answers."""
    substituted = 0
    for rid in expected_ids:
        answers = [r for r in collected if r.get("id") == rid]
        if not answers:
            return "VIOLATION", f"request id {rid} was never answered"
        for answer in answers:
            if _normalize(answer) == reference.get(rid):
                continue
            if answer.get("status") in TYPED_STATUSES:
                substituted += 1
                continue
            return "VIOLATION", (
                f"id {rid}: non-typed divergence from the reference: "
                f"got {json.dumps(answer, sort_keys=True)[:200]}")
    for answer in collected:
        if answer.get("id") not in reference \
                and answer.get("status") not in TYPED_STATUSES:
            return "VIOLATION", (
                f"unexpected non-typed response "
                f"{json.dumps(answer, sort_keys=True)[:200]}")
    if substituted:
        return "typed-error", f"{substituted} typed substitution(s)"
    return "absorbed", ""


# -- scenarios ----------------------------------------------------------------

def _scenario_worker_kill(lines, machine_name, jobs, param):
    """SIGKILL every worker mid-batch; the supervisor must rebuild and
    the batch must still complete with reference answers."""
    from ..service import Daemon, ServeConfig

    config = ServeConfig(jobs=max(jobs, 2), machine=machine_name,
                         allow_chaos=True, timeout_s=None,
                         hang_timeout_s=5.0)
    with Daemon(config) as daemon:
        pool = daemon.pool
        pids = list(pool.worker_pids())

        def storm():
            time.sleep(0.1)
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

        killer = threading.Thread(target=storm, daemon=True)
        killer.start()
        responses = daemon.serve_batch_lines(lines)
        killer.join()
    return responses


def _scenario_worker_hang(lines, machine_name, jobs, param):
    """One request wedges far past the supervisor's hang deadline; the
    supervisor must quarantine it and answer everything else."""
    from ..service import Daemon, ServeConfig

    config = ServeConfig(jobs=max(jobs, 2), machine=machine_name,
                         allow_chaos=True, timeout_s=None,
                         hang_timeout_s=0.5)
    with Daemon(config) as daemon:
        return daemon.serve_batch_lines(lines)


def _socket_daemon(config, sock_path):
    """A daemon serving ``sock_path`` on a background thread."""
    from ..service import Daemon

    daemon = Daemon(config)
    ready = threading.Event()
    thread = threading.Thread(target=daemon.serve_socket,
                              args=(sock_path,),
                              kwargs={"ready": ready}, daemon=True)
    thread.start()
    if not ready.wait(10.0):
        raise RuntimeError("daemon socket never came up")
    return daemon, thread


def _finish_socket_daemon(daemon, thread) -> None:
    daemon.request_shutdown()
    thread.join(timeout=15.0)
    alive = thread.is_alive()
    daemon.close()
    if alive:
        raise RuntimeError("daemon failed to shut down -- service hang")


def _recv_responses(sk) -> list[dict]:
    sk.settimeout(30.0)
    data = b""
    while True:
        chunk = sk.recv(65536)
        if not chunk:
            break
        data += chunk
    return [json.loads(line) for line in data.decode("utf-8").splitlines()
            if line.strip()]


def _scenario_client_disconnect(lines, machine_name, jobs, param):
    """Session 1 sends the batch and vanishes without reading; the
    daemon must survive and serve session 2 the full reference set."""
    from ..service import ServeConfig

    payload = "".join(line + "\n" for line in lines).encode("utf-8")
    with tempfile.TemporaryDirectory() as tmp:
        sock_path = os.path.join(tmp, "serve.sock")
        config = ServeConfig(jobs=jobs, machine=machine_name,
                             allow_chaos=True, timeout_s=0.5)
        daemon, thread = _socket_daemon(config, sock_path)
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sk:
                sk.connect(sock_path)
                sk.sendall(payload)
                # vanish: no shutdown handshake, no reads
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sk:
                sk.settimeout(30.0)
                deadline = time.monotonic() + 20.0
                while True:  # the listener is busy until session 1 drops
                    try:
                        sk.connect(sock_path)
                        break
                    except (ConnectionRefusedError, FileNotFoundError):
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.05)
                sk.sendall(payload)
                sk.shutdown(socket.SHUT_WR)
                responses = _recv_responses(sk)
        finally:
            _finish_socket_daemon(daemon, thread)
    return responses


def _scenario_partial_frame(lines, machine_name, jobs, param):
    """Frames arrive split across packets, oversized, and cut off by
    EOF; every well-formed request still gets its reference answer and
    every broken frame a typed error."""
    from ..service import ServeConfig

    with tempfile.TemporaryDirectory() as tmp:
        sock_path = os.path.join(tmp, "serve.sock")
        config = ServeConfig(jobs=jobs, machine=machine_name,
                             allow_chaos=True, timeout_s=0.5,
                             max_request_bytes=4096,
                             read_deadline_s=10.0)
        daemon, thread = _socket_daemon(config, sock_path)
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sk:
                sk.connect(sock_path)
                first = (lines[0] + "\n").encode("utf-8")
                split = max(1, len(first) // param)
                sk.sendall(first[:split])
                time.sleep(0.15)  # straddle a batch-gather window
                sk.sendall(first[split:])
                rest = "".join(line + "\n" for line in lines[1:])
                sk.sendall(rest.encode("utf-8"))
                sk.sendall(b"x" * 5000 + b"\n")       # oversized frame
                sk.sendall(b'{"id": 99, "source"')    # cut off by EOF
                sk.shutdown(socket.SHUT_WR)
                responses = _recv_responses(sk)
        finally:
            _finish_socket_daemon(daemon, thread)
    return responses


def _scenario_journal_torn(lines, machine_name, jobs, param):
    """Serve with the WAL on, tear its final record as a crash mid-write
    would, and resume: the replayed answers must match the reference."""
    from ..service import Daemon, ServeConfig

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "serve.wal")
        config = ServeConfig(jobs=jobs, machine=machine_name,
                             allow_chaos=True, timeout_s=0.5,
                             journal_path=journal_path)
        out = io.StringIO()
        with Daemon(config) as daemon:
            daemon.start_journal()
            daemon.serve_stream(
                io.StringIO("".join(line + "\n" for line in lines)), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()
                     if line.strip()]

        with open(journal_path, "rb") as fh:
            raw = fh.read()
        body = raw.rstrip(b"\n")
        last_line = body[body.rfind(b"\n") + 1:]
        cut = min(param, max(1, len(last_line) - 1))
        with open(journal_path, "wb") as fh:
            fh.write(body[:-cut])

        resume = ServeConfig(jobs=jobs, machine=machine_name,
                             allow_chaos=True, timeout_s=0.5,
                             journal_path=journal_path,
                             resume_journal=True)
        out2 = io.StringIO()
        with Daemon(resume) as daemon:
            daemon.resume_from_journal(out2)
        responses += [json.loads(line)
                      for line in out2.getvalue().splitlines()
                      if line.strip()]
    return responses


_SCENARIOS = {
    "worker.kill": _scenario_worker_kill,
    "worker.hang": _scenario_worker_hang,
    "client.disconnect": _scenario_client_disconnect,
    "socket.partial-frame": _scenario_partial_frame,
    "journal.torn-write": _scenario_journal_torn,
}


# -- the sweep ----------------------------------------------------------------

def run_service_chaos_case(case_seed: int, *, machine_name: str = "rs6k",
                           jobs: int = 2) -> ChaosResult:
    """Run one service fault plan end to end (see module docstring)."""
    plan = service_plan_for_seed(case_seed)
    lines, expected_ids, sources = _case_requests(case_seed, plan.site)
    try:
        reference = _reference(lines, machine_name, sources)
    except Exception as exc:
        return ChaosResult(case_seed=case_seed, plan=plan,
                           outcome="baseline-error",
                           detail=f"clean reference failed: {exc!r}")
    scenario = _SCENARIOS[plan.site]
    try:
        with watchdog(CASE_DEADLINE_S, f"service-chaos:{case_seed}"):
            collected = scenario(lines, machine_name, jobs, plan.param)
    except BudgetExceeded:
        return ChaosResult(case_seed=case_seed, plan=plan,
                           outcome="VIOLATION", fired=True,
                           detail=f"scenario exceeded the "
                                  f"{CASE_DEADLINE_S:.0f}s case deadline "
                                  f"-- service hang")
    except Exception:
        return ChaosResult(
            case_seed=case_seed, plan=plan, outcome="VIOLATION", fired=True,
            detail="uncaught exception:\n" + traceback.format_exc())
    outcome, detail = _classify(reference, expected_ids, collected)
    return ChaosResult(case_seed=case_seed, plan=plan, outcome=outcome,
                       fired=True, detail=detail)


def run_service_chaos(n: int, seed: int, *, machine_name: str = "rs6k",
                      jobs: int = 2,
                      on_progress: Callable[[ChaosResult], None] | None
                      = None) -> ChaosReport:
    """Sweep ``n`` seeded service fault plans; case ``i`` uses
    ``derive_seed(seed, i)`` so any violation reproduces from (seed, i)."""
    from ..verify.fuzz import derive_seed

    report = ChaosReport(master_seed=seed)
    for index in range(n):
        result = run_service_chaos_case(derive_seed(seed, index),
                                        machine_name=machine_name,
                                        jobs=jobs)
        report.results.append(result)
        if on_progress is not None:
            on_progress(result)
    return report
