"""Typed errors of the resilience subsystem.

Everything the fail-soft pipeline can signal is one of the classes below:
a caller that catches :class:`ResilienceError` has, by construction,
caught every non-bug outcome of a guarded compile.  The chaos property
tests lean on this -- "typed, reported error" means an instance of this
hierarchy (or a :class:`~repro.verify.ScheduleVerificationError`), never a
bare traceback.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base of every typed error the resilience layer raises."""


class BudgetExceeded(ResilienceError):
    """A pass or program ran past its wall-clock budget.

    ``site`` names what overran (``"pass:<phase>"`` or ``"program"``);
    chaos-injected hangs reuse this type because a simulated hang *is* a
    watchdog firing.
    """

    def __init__(self, site: str, budget_s: float, elapsed_s: float):
        super().__init__(
            f"{site}: exceeded {budget_s * 1e3:.0f} ms budget "
            f"after {elapsed_s * 1e3:.0f} ms")
        self.site = site
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class InjectedFault(ResilienceError):
    """A chaos-plan fault fired at a named site (see
    :mod:`repro.resilience.faults`)."""

    def __init__(self, site: str):
        super().__init__(f"chaos: injected fault at {site}")
        self.site = site


class DegradationExhausted(ResilienceError):
    """Every ladder rung failed -- should be unreachable while the
    identity rung exists, so reaching it indicates a resilience bug."""

    def __init__(self, function: str, attempts: list[tuple[str, str]]):
        detail = "; ".join(f"{rung}: {reason}" for rung, reason in attempts)
        super().__init__(f"{function}: every degradation rung failed "
                         f"({detail})")
        self.function = function
        self.attempts = attempts


class CheckpointError(ResilienceError):
    """A fuzz checkpoint file is unreadable, corrupt, or belongs to a
    different campaign (seed/size/machine mismatch)."""
