"""Top-level compiler API: mini-C source -> scheduled IR -> simulated runs.

This is the surface a downstream user touches first::

    from repro import compile_c, ScheduleLevel, rs6k

    unit = compile_c(MINMAX_SOURCE, level=ScheduleLevel.SPECULATIVE)
    minmax = unit["minmax"]
    print(minmax.assembly())                    # Figure 5/6-style listing
    run = minmax.run([3, 9, 1, 7], 4)           # execute + time on RS/6K
    print(run.return_value, run.cycles)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir.function import Function
from .ir.operand import Reg
from .ir.printer import format_function
from .lang.lower import CompiledFunction, lower_program
from .lang.parser import parse_c
from .machine.model import MachineModel
from .machine.rs6k import rs6k
from .sched.candidates import ScheduleLevel
from .sim.executor import CallHandler, ExecutionResult, Executor
from .sim.machine_sim import (
    SimConfig,
    SimulationResult,
    TraceSimulator,
    layout_addresses,
)
from .xform.pipeline import PipelineConfig, PipelineReport, optimize

#: where successive array arguments are placed in simulated memory
_ARRAY_BASE = 0x10000
_ARRAY_STRIDE = 0x10000


@dataclass
class RunResult:
    """One simulated execution of a compiled function."""

    execution: ExecutionResult
    timing: SimulationResult
    #: final contents of each array argument (same order as passed)
    arrays: list[list[int]] = field(default_factory=list)

    @property
    def return_value(self) -> int | None:
        return self.execution.return_value

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def instructions(self) -> int:
        return self.timing.instructions

    def timeline(self, machine: MachineModel, *, max_cycles: int = 120) -> str:
        """A per-cycle issue diagram of the executed trace (see
        :func:`repro.sim.format_timeline`)."""
        from .sim.timeline import format_timeline

        return format_timeline(self.execution.instr_trace, self.timing,
                               machine, max_cycles=max_cycles)


@dataclass
class CompiledUnit:
    """One function after the full pipeline, bound to its machine."""

    compiled: CompiledFunction
    machine: MachineModel
    report: PipelineReport

    @property
    def name(self) -> str:
        return self.compiled.name

    @property
    def func(self) -> Function:
        return self.compiled.func

    def assembly(self) -> str:
        """The Figure-2-style listing of the (scheduled) function."""
        return format_function(self.func)

    def run(
        self,
        *args,
        call_handlers: dict[str, CallHandler] | None = None,
        max_steps: int = 1_000_000,
        sim_config: SimConfig | None = None,
    ) -> RunResult:
        """Execute with positional arguments and time the trace.

        Scalar parameters take ints; array parameters take lists of ints
        (placed in simulated memory; final contents are returned).
        """
        params = self.compiled.params
        if len(args) != len(params):
            raise TypeError(
                f"{self.name}() takes {len(params)} arguments, got {len(args)}"
            )
        regs: dict[Reg, int] = {}
        memory: dict[int, int] = {}
        array_bases: list[tuple[int, int]] = []  # (base, length)
        next_base = _ARRAY_BASE
        for param, value in zip(params, args):
            reg = self.compiled.param_regs[param.name]
            if param.is_array:
                if not isinstance(value, (list, tuple)):
                    raise TypeError(
                        f"argument for array parameter {param.name!r} must "
                        f"be a list, got {type(value).__name__}"
                    )
                base = next_base
                next_base += _ARRAY_STRIDE
                for i, word in enumerate(value):
                    memory[base + 4 * i] = word
                regs[reg] = base
                array_bases.append((base, len(value)))
            else:
                if not isinstance(value, int):
                    raise TypeError(
                        f"argument for scalar parameter {param.name!r} must "
                        f"be an int, got {type(value).__name__}"
                    )
                regs[reg] = value

        execution = Executor(
            self.func, regs=regs, memory=memory,
            call_handlers=call_handlers, max_steps=max_steps,
        ).run()
        sim = TraceSimulator(self.machine, sim_config,
                             addresses=layout_addresses(self.func))
        issue_cycles = [sim.issue(ins) for ins in execution.instr_trace]
        timing = SimulationResult(
            cycles=(max(issue_cycles) + 1) if issue_cycles else 0,
            instructions=len(issue_cycles),
            issue_cycles=issue_cycles,
            icache_misses=sim.icache_misses,
            buffer_drains=sim.buffer_drains,
        )
        arrays = [
            [execution.memory.get(base + 4 * i, 0) for i in range(length)]
            for base, length in array_bases
        ]
        return RunResult(execution=execution, timing=timing, arrays=arrays)


@dataclass
class CompileResult:
    """All functions of one translation unit."""

    units: dict[str, CompiledUnit]
    level: ScheduleLevel
    machine: MachineModel
    #: memoised result of :meth:`linked_handlers` (the table is immutable
    #: once built -- recursion works because each handler closes over the
    #: shared dict, not over a copy)
    _handlers: dict[str, CallHandler] | None = field(
        default=None, init=False, repr=False, compare=False)

    def __getitem__(self, name: str) -> CompiledUnit:
        try:
            return self.units[name]
        except KeyError:
            raise KeyError(
                f"no function {name!r}; unit defines: {sorted(self.units)}"
            ) from None

    def __iter__(self):
        return iter(self.units.values())

    @property
    def total_elapsed_seconds(self) -> float:
        return sum(u.report.elapsed_seconds for u in self.units.values())

    def linked_handlers(self) -> dict[str, CallHandler]:
        """Call handlers that bind calls to this unit's own functions.

        Each scalar-only function (no array parameters) becomes callable
        from any other function in the unit -- including recursively and
        mutually, because every callee is executed with this same handler
        table.  Callees run functionally in their own fresh memory; as in
        the paper's model, calls stay opaque to the *timing* simulation
        (they occupy one issue slot and act as scheduling barriers).

        The table is built once per unit and cached; :meth:`run` builds a
        fresh (uncached) table only when the caller supplies overrides,
        because those must stay visible to nested calls without leaking
        into the cache.
        """
        if self._handlers is None:
            self._handlers = self._build_handlers()
        return self._handlers

    def _build_handlers(self) -> dict[str, CallHandler]:
        handlers: dict[str, CallHandler] = {}

        def make(unit: CompiledUnit) -> CallHandler:
            compiled = unit.compiled

            def handler(args: list[int]) -> list[int]:
                if len(args) != len(compiled.params):
                    raise TypeError(
                        f"{compiled.name}() called with {len(args)} "
                        f"arguments, takes {len(compiled.params)}"
                    )
                regs = {
                    compiled.param_regs[p.name]: v
                    for p, v in zip(compiled.params, args)
                }
                result = Executor(unit.func, regs=regs,
                                  call_handlers=handlers).run()
                if result.return_value is None:
                    return []
                return [result.return_value]

            return handler

        for unit in self:
            if any(p.is_array for p in unit.compiled.params):
                continue  # arrays cannot cross our call boundary
            handlers[unit.name] = make(unit)
        return handlers

    def run(self, name: str, *args, call_handlers=None, **kwargs) -> RunResult:
        """Run ``name`` with calls to sibling functions resolved.

        Explicit ``call_handlers`` win over linked siblings -- for nested
        calls too, which is why overrides force a fresh handler table (the
        closures must capture the dict that contains them).
        """
        if call_handlers:
            handlers = self._build_handlers()
            handlers.update(call_handlers)
        else:
            handlers = self.linked_handlers()
        return self[name].run(*args, call_handlers=handlers, **kwargs)


def compile_c(
    source: str,
    *,
    machine: MachineModel | None = None,
    level: ScheduleLevel = ScheduleLevel.SPECULATIVE,
    config: PipelineConfig | None = None,
) -> CompileResult:
    """Compile mini-C source through the full Section 6 pipeline.

    ``level`` selects the paper's three compiler configurations: ``NONE``
    is the BASE compiler (basic-block scheduling only), ``USEFUL`` enables
    global motion between equivalent blocks, ``SPECULATIVE`` adds 1-branch
    speculation.
    """
    machine = machine or rs6k()
    if config is None:
        config = PipelineConfig(level=level)
    elif config.level is not level:
        raise ValueError("config.level disagrees with the level argument")
    program = parse_c(source)
    units: dict[str, CompiledUnit] = {}
    for name, compiled in lower_program(program).items():
        report = optimize(compiled.func, machine, config,
                          live_at_exit=compiled.live_at_exit)
        units[name] = CompiledUnit(compiled=compiled, machine=machine,
                                   report=report)
    return CompileResult(units=units, level=level, machine=machine)
