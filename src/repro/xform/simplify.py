"""Control-flow cleanup: jump threading, fall-through folding, merging.

The paper's BASE compiler performs "all the possible machine independent
and peephole optimizations"; structured lowering, by contrast, produces
empty join blocks and jumps-to-jumps.  This pass normalises the CFG so the
generated minmax loop matches Figure 2 block for block:

1. *thread* branches whose target block is empty or holds a single
   unconditional jump;
2. delete unconditional branches to the layout fall-through block;
3. remove unreachable blocks;
4. merge a block into its unique predecessor when control can only flow
   between them.

Runs to a fixed point; preserves semantics (checked by the property tests
against the functional executor).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.opcodes import Opcode


@dataclass
class SimplifyReport:
    threaded: int = 0
    folded_jumps: int = 0
    removed_blocks: int = 0
    merged_blocks: int = 0

    @property
    def total(self) -> int:
        return (self.threaded + self.folded_jumps + self.removed_blocks
                + self.merged_blocks)


def simplify_cfg(func: Function, *, max_rounds: int = 20) -> SimplifyReport:
    """Simplify ``func`` in place until nothing changes."""
    report = SimplifyReport()
    for _ in range(max_rounds):
        changed = 0
        changed += _thread_jumps(func, report)
        changed += _fold_fallthrough_jumps(func, report)
        changed += _remove_unreachable(func, report)
        changed += _merge_chains(func, report)
        if not changed:
            break
    return report


def _final_target(func: Function, label: str) -> str:
    """Follow empty blocks and trivial ``B`` blocks to the real target."""
    seen = {label}
    while True:
        block = func.block(label)
        if not block.instrs:
            nxt = func.fallthrough(block)
            if nxt is None or nxt.label in seen:
                return label
            label = nxt.label
        elif (len(block.instrs) == 1
              and block.instrs[0].opcode is Opcode.B):
            nxt_label = block.instrs[0].target
            if nxt_label in seen:
                return label
            label = nxt_label
        else:
            return label
        seen.add(label)


def _thread_jumps(func: Function, report: SimplifyReport) -> int:
    changed = 0
    for block in func.blocks:
        term = block.terminator
        if term is None or term.target is None:
            continue
        if term.opcode is Opcode.BDNZ or term.opcode is Opcode.CALL:
            continue
        final = _final_target(func, term.target)
        if final != term.target:
            term.target = final
            report.threaded += 1
            changed += 1
    return changed


def _fold_fallthrough_jumps(func: Function, report: SimplifyReport) -> int:
    changed = 0
    for block in func.blocks:
        term = block.terminator
        if term is not None and term.opcode is Opcode.B:
            nxt = func.fallthrough(block)
            if nxt is not None and nxt.label == term.target:
                block.remove(term)
                report.folded_jumps += 1
                changed += 1
    return changed


def _remove_unreachable(func: Function, report: SimplifyReport) -> int:
    reached: set[str] = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block.label in reached:
            continue
        reached.add(block.label)
        stack.extend(func.successors(block))
    dead = [b for b in func.blocks if b.label not in reached]
    for block in dead:
        func.remove_block(block)
        report.removed_blocks += 1
    return len(dead)


def _merge_chains(func: Function, report: SimplifyReport) -> int:
    """Merge ``B`` into ``A`` when A's only way out is into B and B's only
    way in is from A (and A doesn't end the function)."""
    changed = 0
    preds = func.predecessors_map()
    for block in list(func.blocks):
        if not func.has_block(block.label):
            continue  # already merged away in this round
        succ_list = func.successors(block)
        if len(succ_list) != 1:
            continue
        succ = succ_list[0]
        if succ is block or len(preds[succ.label]) != 1:
            continue
        term = block.terminator
        if term is not None and term.opcode is not Opcode.B:
            continue  # conditional/RET terminators stay put
        # A single successor via fall-through or via an unconditional B.
        if term is not None:
            block.remove(term)
        elif func.fallthrough(block) is not succ:
            continue  # cannot happen given len(succs) == 1, but be safe
        block.instrs.extend(succ.instrs)
        func.remove_block(succ)
        report.merged_blocks += 1
        changed += 1
        preds = func.predecessors_map()
    return changed
