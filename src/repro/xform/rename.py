"""Standalone local register renaming.

Section 4.2: "To minimize the number of anti and output data dependences,
which may unnecessarily constrain the scheduling process, the XL compiler
does certain renaming of registers, which is similar to the effect of the
static single assignment form."

This pass renames *block-local def-use webs*: a definition of ``R`` whose
value is consumed entirely within its own block (cut off by a later
definition of ``R``, or dead on block exit) gets a fresh symbolic register.
That removes exactly the anti/output dependences that are artefacts of
register reuse, without needing phi nodes.

The global scheduler additionally performs this renaming *on demand* for
speculative candidates (see :func:`repro.sched.try_rename_for_motion`);
running this pass ahead of time is the more aggressive alternative explored
by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..dataflow.liveness import LivenessInfo, compute_liveness
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.operand import Reg, RegClass


@dataclass
class RenameReport:
    """Which webs were renamed."""

    #: (block label, old register, new register, def uid)
    renames: list[tuple[str, Reg, Reg, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.renames)


def rename_function(
    func: Function,
    *,
    live_at_exit: frozenset[Reg] = frozenset(),
    liveness: LivenessInfo | None = None,
    classes: tuple[RegClass, ...] = (RegClass.GPR, RegClass.FPR, RegClass.CR),
) -> RenameReport:
    """Rename all block-local webs in every block of ``func``."""
    if liveness is None:
        liveness = compute_liveness(func, live_at_exit, ControlFlowGraph(func))
    report = RenameReport()
    for block in func.blocks:
        live_out = liveness.live_out(block)
        _rename_block(func, block, live_out, classes, report)
    return report


def _rename_block(
    func: Function,
    block: BasicBlock,
    live_out: frozenset[Reg],
    classes: tuple[RegClass, ...],
    report: RenameReport,
) -> None:
    defined: dict[Reg, list[int]] = {}
    for i, ins in enumerate(block.instrs):
        for reg in ins.reg_defs():
            if reg.rclass in classes:
                defined.setdefault(reg, []).append(i)

    for reg, positions in defined.items():
        # Web m spans (positions[m], positions[m+1]]; the last web runs to
        # the end of the block and may only be renamed if dead on exit.
        for m, def_pos in enumerate(positions):
            is_last = m == len(positions) - 1
            if is_last and reg in live_out:
                continue
            end = positions[m + 1] if not is_last else len(block.instrs) - 1
            _rename_web(func, block, reg, def_pos, end, report)


def _rename_web(
    func: Function,
    block: BasicBlock,
    reg: Reg,
    def_pos: int,
    end: int,
    report: RenameReport,
) -> None:
    """Rename the def at ``def_pos`` and its uses up to ``end`` inclusive.

    ``end`` is either the position of the next definition of ``reg`` (whose
    *uses* still belong to this web but whose def starts the next one) or
    the last instruction of the block.
    """
    fresh = func.new_reg(reg.rclass)
    definer = block.instrs[def_pos]
    definer.defs = tuple(fresh if r == reg else r for r in definer.defs)
    for ins in block.instrs[def_pos + 1:end + 1]:
        if reg in ins.reg_uses():
            ins.rename_uses_of(reg, fresh)
    report.renames.append((block.label, reg, fresh, definer.uid))
