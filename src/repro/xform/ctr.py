"""Counter-register loop control (the paper's footnote 3).

"Keeping the iteration variable of the loop in a special *counter
register* allows it to be decremented and tested for zero in a single
instruction, effectively reducing the overhead for loop control
instructions."  The paper *disables* this feature for its running example
(so the compare->branch delay is visible for the scheduler to fill); we
implement it as an opt-in pass with the same default.

Pattern recognised (what the lowerer + strength reduction produce)::

    guard:  C  crg = i, n         ; i < n or the loop is skipped
            BF exit, crg, lt      ; (or BT header, crg, lt)
    header: ...
    latch:  AI i = i, step        ; single definition of i in the loop
            C  cr = i, n          ; cr used only by the BT
            BT header, cr, lt

becomes::

    guard:  ...
            S     t = n, i        ; trip count = ceil((n - i) / step)
            [AI   t = t, step-1]
            [SR   t = t, log2(step)]
            MTCTR ctr = t
    latch:  AI i = i, step        ; kept: i's final value may be observed
            BDNZ header           ; decrement-and-branch, no compare delay

Safety requires proving the trip count is at least 1 on loop entry, so
the pass only fires when every loop entry edge is guarded by an ``i < n``
test on the same registers.  Loops containing calls (which may clobber
the counter) or another CTR user are left alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.dominators import dominator_tree
from ..cfg.graph import ENTRY, ControlFlowGraph
from ..cfg.loops import Loop, LoopNest
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode
from ..ir.operand import CR_LT, CTR, Reg


@dataclass
class CtrReport:
    """Loops converted to counter-register form."""

    converted: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.converted)


@dataclass
class _CountedLoop:
    loop: Loop
    latch: BasicBlock
    increment: Instruction     # AI i = i, step
    compare: Instruction       # C cr = i, n
    branch: Instruction        # BT header, cr, lt
    iv: Reg
    bound: Reg
    step: int


def convert_counted_loops(func: Function) -> CtrReport:
    """Convert eligible innermost loops to MTCTR/BDNZ form, in place."""
    report = CtrReport()
    cfg = ControlFlowGraph(func)
    dom = dominator_tree(cfg.graph, ENTRY)
    nest = LoopNest(cfg.graph, dom)
    for loop in nest.loops:
        if loop.children:
            continue
        counted = _match(func, loop)
        if counted is not None and _entries_guarded(func, counted):
            _convert(func, counted)
            report.converted.append(loop.header)
    return report


def _match(func: Function, loop: Loop) -> _CountedLoop | None:
    if len(loop.latches) != 1:
        return None
    latch = func.block(loop.latches[0])
    branch = latch.terminator
    if (branch is None or branch.opcode is not Opcode.BT
            or branch.mask != CR_LT or branch.target != loop.header):
        return None
    body = latch.body
    if len(body) < 2:
        return None
    # find `C cr = i, n` defining the branch's register, then `AI i=i,step`
    cr = branch.uses[0]
    compare = None
    for ins in reversed(body):
        if cr in ins.reg_defs():
            compare = ins
            break
    if compare is None or compare.opcode is not Opcode.C:
        return None
    iv, bound = compare.uses
    increment = None
    for ins in body:
        if ins.opcode is Opcode.AI and ins.defs == (iv,) \
                and ins.uses == (iv,) and (ins.imm or 0) > 0:
            increment = ins
            break
    if increment is None:
        return None
    step = increment.imm
    if step not in (1, 2, 4, 8, 16):
        return None

    instrs = [i for label in loop.body for i in func.block(label).instrs]
    # single definitions of iv and cr; invariant bound; no CTR users/calls
    if sum(iv in i.reg_defs() for i in instrs) != 1:
        return None
    if sum(bound in i.reg_defs() for i in instrs) != 0:
        return None
    if sum(cr in i.reg_defs() for i in instrs) != 1:
        return None
    if any(cr in i.reg_uses() for i in instrs if i is not branch):
        return None
    if any(i.is_call or CTR in i.reg_defs() or CTR in i.reg_uses()
           for i in instrs):
        return None
    # the compare must come after the increment with no iv def between
    # (guaranteed by single-def) and nothing else may redefine `cr`
    # between compare and branch (cr single-def covers it)
    if latch.index_of(compare) < latch.index_of(increment):
        return None
    return _CountedLoop(loop, latch, increment, compare, branch,
                        iv, bound, step)


def _entries_guarded(func: Function, counted: _CountedLoop) -> bool:
    """Every edge entering the loop must be dominated by an ``iv < bound``
    test that holds on that edge (so the trip count is >= 1)."""
    loop = counted.loop
    preds = func.predecessors_map()[loop.header]
    outside = [p for p in preds if p.label not in loop.body]
    if not outside:
        return False
    for pred in outside:
        if not _edge_proves_less(func, pred, loop.header,
                                 counted.iv, counted.bound):
            return False
    return True


def _edge_proves_less(func: Function, pred: BasicBlock, header: str,
                      iv: Reg, bound: Reg) -> bool:
    """Does taking the edge pred -> header imply ``iv < bound``?"""
    term = pred.terminator
    if term is None or term.opcode not in (Opcode.BT, Opcode.BF):
        return False
    if term.mask != CR_LT:
        return False
    cr = term.uses[0]
    compare = None
    for ins in reversed(pred.body):
        if cr in ins.reg_defs():
            compare = ins
            break
        if iv in ins.reg_defs() or bound in ins.reg_defs():
            return False  # operands changed after the compare
    if (compare is None or compare.opcode is not Opcode.C
            or compare.uses != (iv, bound)):
        return False
    taken_edge = term.target == header
    if taken_edge:
        # BT lt taken => lt set; BF lt taken => lt clear
        return term.opcode is Opcode.BT
    # fall-through into the header: branch not taken
    fall = func.fallthrough(pred)
    if fall is None or fall.label != header:
        return False
    # BF lt not taken => lt set; BT lt not taken => lt clear
    return term.opcode is Opcode.BF


def _convert(func: Function, counted: _CountedLoop) -> None:
    loop, latch = counted.loop, counted.latch
    preds = func.predecessors_map()[loop.header]
    outside = [p for p in preds if p.label not in loop.body]

    # trip count = ceil((bound - iv) / step), computed on every entry
    for pred in outside:
        count = func.new_gpr()
        seq = [Instruction(Opcode.S, defs=(count,),
                           uses=(counted.bound, counted.iv),
                           comment="ctr trip count")]
        if counted.step > 1:
            shift = counted.step.bit_length() - 1
            seq.append(Instruction(Opcode.AI, defs=(count,), uses=(count,),
                                   imm=counted.step - 1,
                                   comment="ctr round up"))
            seq.append(Instruction(Opcode.SR, defs=(count,), uses=(count,),
                                   imm=shift, comment="ctr scale"))
        seq.append(Instruction(Opcode.MTCTR, defs=(CTR,), uses=(count,),
                               comment="ctr load"))
        for ins in seq:
            func.assign_uid(ins)
            func.note_registers(ins)
            pred.insert_before_terminator(ins)

    # replace the compare+branch with BDNZ; keep the iv increment
    bdnz = Instruction(Opcode.BDNZ, defs=(CTR,), uses=(CTR,),
                       target=loop.header,
                       comment="decrement count and branch")
    func.assign_uid(bdnz)
    latch.remove(counted.branch)
    latch.remove(counted.compare)
    latch.append(bdnz)
