"""Loop unrolling (Section 6, preparation step 1).

"In a preparation step, before the global scheduling is applied, the inner
regions that represent loops with up to 4 basic blocks are unrolled once
(i.e., after unrolling they include two iterations of a loop instead of
one)."

Unrolling duplicates the loop body; the original copy's back edges are
retargeted to the clone's header and the clone's back edges return to the
original header.  Loop-exit tests are replicated with the body (this is
plain unrolling of a while-shaped loop: both copies keep their exit
branches, so any trip count remains correct).

Preconditions (checked, raising :class:`TransformError`):

* the loop's blocks are contiguous in layout order, and
* the loop has a single natural-loop structure (one header).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.loops import Loop
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode


class TransformError(ValueError):
    """A transformation's precondition does not hold."""


@dataclass
class UnrollReport:
    header: str
    clone_header: str
    cloned_blocks: list[str] = field(default_factory=list)


def loop_blocks_in_layout(func: Function, loop: Loop) -> list[BasicBlock]:
    """The loop's blocks in layout order, checked for contiguity."""
    members = [b for b in func.blocks if b.label in loop.body]
    first = func.layout_index(members[0])
    for offset, block in enumerate(members):
        if func.layout_index(block) != first + offset:
            raise TransformError(
                f"loop at {loop.header!r} is not contiguous in layout"
            )
    return members


def _ensure_fallthrough_exit(func: Function, after: BasicBlock) -> str:
    """Label that ``after``'s fall-through leaves to (creating an empty
    sentinel block at the function end when control just falls off)."""
    nxt = func.fallthrough(after)
    if nxt is not None:
        return nxt.label
    sentinel = func.add_block(func.fresh_label("EXIT"))
    return sentinel.label


_INVERSES = {Opcode.BT: Opcode.BF, Opcode.BF: Opcode.BT}


def _prepare_tail(func: Function, last: BasicBlock, header_label: str,
                  *, invert_ok: bool) -> BasicBlock:
    """Make room for blocks to be inserted right after ``last``.

    If ``last`` can fall through, that fall-through currently leaves the
    loop; blocks inserted behind ``last`` would capture it.  Two fixes:

    * when ``last`` is the latch (conditional branch back to the header)
      and ``invert_ok``, *invert* the branch -- the exit becomes the taken
      target and the fall-through continues into the inserted copy, which
      is exactly where the back edge should now lead;
    * otherwise insert a trampoline block holding an explicit jump to the
      old fall-through target.

    Returns the block after which the copies should be inserted.
    """
    term = last.terminator
    if term is not None and not term.opcode.is_conditional:
        return last  # B/RET: no fall-through to protect
    exit_label = _ensure_fallthrough_exit(func, last)
    if (invert_ok and term is not None and term.target == header_label
            and term.opcode in _INVERSES):
        term.opcode = _INVERSES[term.opcode]
        term.target = exit_label
        return last
    trampoline = func.add_block(func.fresh_label("XT"), after=last)
    func.emit(trampoline, Instruction(Opcode.B, target=exit_label,
                                      comment="loop exit"))
    return trampoline


def unroll_loop(func: Function, loop: Loop) -> UnrollReport:
    """Unroll ``loop`` once, in place."""
    members = loop_blocks_in_layout(func, loop)
    header = loop.header
    last = members[-1]

    # Snapshot the bodies before the tail branch may be inverted: the
    # clone must keep the original latch (its back edge returns to the
    # original header with the original taken/fall-through split).
    snapshots = {b.label: [ins.clone() for ins in b.instrs] for b in members}

    # Protect the loop's fall-through exit from the blocks about to be
    # inserted behind ``last``.  Inverting the latch is only valid when the
    # header is the first inserted clone (it becomes the fall-through).
    insert_after = _prepare_tail(
        func, last, header, invert_ok=members[0].label == header
    )

    # Clone the blocks, preserving their relative order.
    clone_label = {b.label: func.fresh_label(f"{b.label}.u") for b in members}
    clones: list[BasicBlock] = []
    for block in members:
        clone = func.add_block(clone_label[block.label], after=insert_after)
        insert_after = clone
        for ins in snapshots[block.label]:
            func.emit(clone, ins)
        clones.append(clone)

    # Original copy: explicit back edges now continue into the clone
    # (iteration 2).  An inverted latch reaches the clone by fall-through.
    for block in members:
        t = block.terminator
        if t is not None and t.target == header and t.opcode is not Opcode.CALL:
            t.target = clone_label[header]

    # Clone copy: intra-loop targets map to clone labels, except the back
    # edge, which returns to the original header (iteration 3, 5, ...).
    for clone, original in zip(clones, members):
        t = clone.terminator
        if t is None or t.target is None or t.opcode is Opcode.CALL:
            continue
        if t.target == header:
            pass  # back edge: stays on the original header
        elif t.target in clone_label:
            t.target = clone_label[t.target]

    # The clone region's internal fall-throughs mirror the originals'
    # because the clones are contiguous and in the same order.  The last
    # clone's fall-through lands on whatever followed the loop -- which is
    # exactly where the original's fall-through (via the trampoline) goes.
    return UnrollReport(
        header=header,
        clone_header=clone_label[header],
        cloned_blocks=[c.label for c in clones],
    )


def unrollable_inner_loops(func: Function, loops: list[Loop],
                           max_blocks: int = 4) -> list[Loop]:
    """The paper's unroll policy: inner loops with at most 4 basic blocks
    (that are contiguous in layout)."""
    chosen = []
    for loop in loops:
        if loop.children or len(loop.body) > max_blocks:
            continue
        try:
            loop_blocks_in_layout(func, loop)
        except TransformError:
            continue
        chosen.append(loop)
    return chosen
