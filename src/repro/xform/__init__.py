"""Code transformations: renaming, unrolling, rotation, and the full flow."""

from .ctr import CtrReport, convert_counted_loops
from .pipeline import PipelineConfig, PipelineReport, optimize
from .rename import RenameReport, rename_function
from .rotate import RotateReport, rotatable, rotate_loop
from .simplify import SimplifyReport, simplify_cfg
from .strength import StrengthReductionReport, strength_reduce
from .unroll import (
    TransformError,
    UnrollReport,
    loop_blocks_in_layout,
    unroll_loop,
    unrollable_inner_loops,
)

__all__ = [
    "CtrReport",
    "PipelineConfig",
    "convert_counted_loops",
    "PipelineReport",
    "RenameReport",
    "RotateReport",
    "SimplifyReport",
    "StrengthReductionReport",
    "TransformError",
    "simplify_cfg",
    "strength_reduce",
    "UnrollReport",
    "loop_blocks_in_layout",
    "optimize",
    "rename_function",
    "rotatable",
    "rotate_loop",
    "unroll_loop",
    "unrollable_inner_loops",
]
