"""Induction-variable strength reduction for array address chains.

The XL BASE compiler's output in Figure 2 walks the array with a single
pointer register (``r31``) and constant displacements -- no per-access
shift/add address arithmetic.  Structured lowering instead emits, for
every ``a[i]``::

    SL t = i, 2
    A  addr = base, t
    L  v = (addr, 0)

This pass restores the Figure 2 form.  For each innermost loop it finds

* *basic induction variables*: registers with exactly one in-loop
  definition, of the form ``AI i = i, c`` / ``SI i = i, c``;
* *derived offsets*: ``AI j = i, c`` (single def, ``i`` basic) -- the
  ``i + 1`` of ``a[i + 1]``;
* address chains ``SL t = j, k`` + ``A addr = base, t`` with a
  loop-invariant ``base``,

and replaces each memory access through ``addr`` with an access through a
*pointer register* ``p`` (one per ``(i, base, k)`` triple):

* ``p = base + (i << k)`` is computed in every loop predecessor;
* ``AI p = p, c << k`` is inserted immediately next to the induction
  variable's own increment, so ``p == base + (i << k)`` holds at every
  other point of the loop;
* a derived offset ``j = i + c`` folds into the access displacement, so
  ``a[i]`` / ``a[i + 1]`` become ``(p,0)`` / ``(p,4)`` -- the paper's
  ``a(r31,4)`` / ``a(r31,8)`` modulo the initial offset.

A chain is only transformed when its shift, add, (optional) derived
offset, and every use of the address sit in one block with no induction
step between them -- which guarantees the address equals ``p`` plus the
folded displacement at each use.  Dead address arithmetic is swept
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.dominators import dominator_tree
from ..cfg.graph import ENTRY, ControlFlowGraph
from ..cfg.loops import Loop, LoopNest
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode
from ..ir.operand import MemRef, Reg


@dataclass
class StrengthReductionReport:
    """What the pass did."""

    #: (loop header, pointer register, base, induction variable)
    pointers: list[tuple[str, Reg, Reg, Reg]] = field(default_factory=list)
    rewritten_accesses: int = 0
    deleted_instructions: int = 0

    def __bool__(self) -> bool:
        return bool(self.pointers)


@dataclass
class _BasicIV:
    reg: Reg
    step: int           # signed per-iteration delta
    increment: Instruction
    block: BasicBlock


@dataclass
class _Chain:
    """One address chain: ``addr = base + ((iv + offset) << shift)``."""

    iv: _BasicIV
    offset: int
    shift: int
    base: Reg
    addr: Reg
    sl: Instruction
    add: Instruction
    derived: Instruction | None
    block: BasicBlock
    #: memory instructions (within ``block``) to rewrite
    accesses: list[Instruction]


def strength_reduce(func: Function,
                    *, live_at_exit: frozenset[Reg] = frozenset()
                    ) -> StrengthReductionReport:
    """Run the pass over every innermost loop of ``func``, in place."""
    report = StrengthReductionReport()
    cfg = ControlFlowGraph(func)
    dom = dominator_tree(cfg.graph, ENTRY)
    nest = LoopNest(cfg.graph, dom)
    for loop in nest.loops:
        if not loop.children:
            _reduce_loop(func, loop, live_at_exit, report)
    return report


def _loop_instructions(func: Function, loop: Loop) -> list[Instruction]:
    return [ins for label in loop.body for ins in func.block(label).instrs]


def _def_counts(instrs: list[Instruction]) -> dict[Reg, int]:
    counts: dict[Reg, int] = {}
    for ins in instrs:
        for reg in ins.reg_defs():
            counts[reg] = counts.get(reg, 0) + 1
    return counts


def _find_basic_ivs(func: Function, loop: Loop,
                    counts: dict[Reg, int]) -> dict[Reg, _BasicIV]:
    ivs: dict[Reg, _BasicIV] = {}
    for label in loop.body:
        block = func.block(label)
        for ins in block.instrs:
            if ins.opcode not in (Opcode.AI, Opcode.SI):
                continue
            (dest,) = ins.defs
            if ins.uses != (dest,) or counts.get(dest) != 1:
                continue
            step = ins.imm if ins.opcode is Opcode.AI else -ins.imm
            ivs[dest] = _BasicIV(dest, step, ins, block)
    return ivs


def _find_chains(func: Function, loop: Loop, ivs: dict[Reg, _BasicIV],
                 counts: dict[Reg, int]) -> list[_Chain]:
    # derived offsets: j = i + c with i basic and j single-def
    derived: dict[Reg, tuple[_BasicIV, int, Instruction]] = {}
    for label in loop.body:
        for ins in func.block(label).instrs:
            if ins.opcode not in (Opcode.AI, Opcode.SI):
                continue
            (dest,) = ins.defs
            src = ins.uses[0]
            if dest == src or counts.get(dest) != 1 or src not in ivs:
                continue
            offset = ins.imm if ins.opcode is Opcode.AI else -ins.imm
            derived[dest] = (ivs[src], offset, ins)

    # single-def shifts of (derived) induction variables
    shifts: dict[Reg, tuple[_BasicIV, int, int, Instruction,
                            Instruction | None]] = {}
    for label in loop.body:
        for ins in func.block(label).instrs:
            if ins.opcode is not Opcode.SL:
                continue
            (dest,) = ins.defs
            src = ins.uses[0]
            if counts.get(dest) != 1:
                continue
            if src in ivs:
                shifts[dest] = (ivs[src], 0, ins.imm, ins, None)
            elif src in derived:
                iv, offset, producer = derived[src]
                shifts[dest] = (iv, offset, ins.imm, ins, producer)

    chains: list[_Chain] = []
    for label in loop.body:
        block = func.block(label)
        for ins in block.instrs:
            if ins.opcode is not Opcode.A:
                continue
            (dest,) = ins.defs
            if counts.get(dest) != 1:
                continue
            lhs, rhs = ins.uses
            for t, base in ((lhs, rhs), (rhs, lhs)):
                if t in shifts and counts.get(base, 0) == 0:
                    iv, offset, shift, sl_ins, producer = shifts[t]
                    chain = _validate_chain(
                        func, loop, _Chain(iv, offset, shift, base, dest,
                                           sl_ins, ins, producer, block, []))
                    if chain is not None:
                        chains.append(chain)
                    break
    return chains


def _validate_chain(func: Function, loop: Loop,
                    chain: _Chain) -> _Chain | None:
    """Check the single-block / no-intervening-step safety condition and
    collect the memory accesses to rewrite."""
    block = chain.block
    members = {id(i) for i in block.instrs}
    pieces = [chain.sl, chain.add]
    if chain.derived is not None:
        pieces.append(chain.derived)
    if any(id(p) not in members for p in pieces):
        return None

    # every use of addr anywhere must be a memory base in this block
    use_indices: list[int] = []
    for label in loop.body:
        for ins in func.block(label).instrs:
            if chain.addr not in ins.reg_uses():
                continue
            if ins is chain.add:
                continue
            is_clean_access = (
                id(ins) in members
                and ins.mem is not None
                and ins.mem.base == chain.addr
                and ins.opcode not in (Opcode.LU, Opcode.STU)
                and list(ins.reg_uses()).count(chain.addr) == 1
            )
            if not is_clean_access:
                return None
            use_indices.append(block.index_of(ins))
            chain.accesses.append(ins)
    # ... and not outside the loop either
    loop_ids = {id(i) for i in _loop_instructions(func, loop)}
    for ins in func.instructions():
        if id(ins) not in loop_ids and chain.addr in ins.reg_uses():
            return None
    if not chain.accesses:
        return None

    # no induction step between the first chain piece and the last use
    start = min(block.index_of(p) for p in pieces)
    end = max(use_indices)
    if chain.iv.block is block:
        inc_index = block.index_of(chain.iv.increment)
        if start <= inc_index <= end:
            return None
    return chain


def _reduce_loop(func: Function, loop: Loop,
                 live_at_exit: frozenset[Reg],
                 report: StrengthReductionReport) -> None:
    instrs = _loop_instructions(func, loop)
    counts = _def_counts(instrs)
    ivs = _find_basic_ivs(func, loop, counts)
    if not ivs:
        return
    chains = _find_chains(func, loop, ivs, counts)
    if not chains:
        return

    preds_map = func.predecessors_map()
    outside_preds = [b for b in preds_map[loop.header]
                     if b.label not in loop.body]
    if not outside_preds:
        return  # unreachable loop; leave it alone

    pointers: dict[tuple[Reg, Reg, int], Reg] = {}
    for chain in chains:
        key = (chain.iv.reg, chain.base, chain.shift)
        pointer = pointers.get(key)
        if pointer is None:
            pointer = func.new_gpr()
            pointers[key] = pointer
            _emit_pointer_init(func, outside_preds, chain, pointer)
            _emit_pointer_step(func, chain, pointer)
            report.pointers.append(
                (loop.header, pointer, chain.base, chain.iv.reg))
        for access in chain.accesses:
            new_disp = access.mem.disp + (chain.offset << chain.shift)
            access.rename_uses_of(chain.addr, pointer)
            access.mem = MemRef(pointer, new_disp, access.mem.width,
                                access.mem.symbol)
            report.rewritten_accesses += 1

    report.deleted_instructions += _sweep_dead_chains(
        func, loop, chains, live_at_exit)


def _emit_pointer_init(func: Function, outside_preds: list[BasicBlock],
                       chain: _Chain, pointer: Reg) -> None:
    """``p = base + (i << k)`` at the end of every loop predecessor."""
    for pred in outside_preds:
        tmp = func.new_gpr()
        sl = Instruction(Opcode.SL, defs=(tmp,), uses=(chain.iv.reg,),
                         imm=chain.shift, comment="strength-reduce init")
        add = Instruction(Opcode.A, defs=(pointer,),
                          uses=(chain.base, tmp),
                          comment="strength-reduce init")
        func.assign_uid(sl)
        func.assign_uid(add)
        func.note_registers(sl)
        func.note_registers(add)
        pred.insert_before_terminator(sl)
        pred.insert_before_terminator(add)


def _emit_pointer_step(func: Function, chain: _Chain, pointer: Reg) -> None:
    """``p += step << k`` immediately after the IV's own increment."""
    bump = Instruction(
        Opcode.AI, defs=(pointer,), uses=(pointer,),
        imm=chain.iv.step * (1 << chain.shift),
        comment="strength-reduce step",
    )
    func.assign_uid(bump)
    func.note_registers(bump)
    block = chain.iv.block
    block.instrs.insert(block.index_of(chain.iv.increment) + 1, bump)


def _sweep_dead_chains(func: Function, loop: Loop, chains: list[_Chain],
                       live_at_exit: frozenset[Reg]) -> int:
    """Delete chain instructions whose results are no longer used."""
    candidates: list[tuple[Reg, Instruction]] = []
    seen: set[int] = set()
    for chain in chains:
        pieces = [(chain.addr, chain.add), (chain.sl.defs[0], chain.sl)]
        if chain.derived is not None:
            pieces.append((chain.derived.defs[0], chain.derived))
        for reg, ins in pieces:
            if id(ins) not in seen:
                seen.add(id(ins))
                candidates.append((reg, ins))

    owner = {id(ins): func.block(label)
             for label in loop.body
             for ins in func.block(label).instrs}

    deleted = 0
    changed = True
    while changed:
        changed = False
        used: set[Reg] = set(live_at_exit)
        for ins in func.instructions():
            used.update(ins.reg_uses())
        for reg, ins in list(candidates):
            if reg in used or id(ins) not in owner:
                continue
            owner[id(ins)].remove(ins)
            del owner[id(ins)]
            candidates.remove((reg, ins))
            deleted += 1
            changed = True
    return deleted
