"""The Section 6 compilation flow, end to end.

"The general flow of the global scheduling is as follows:

1. certain inner loops are unrolled;
2. the global scheduling is applied the first time to the inner regions
   only;
3. certain inner loops are rotated;
4. the global scheduling is applied the second time to the rotated inner
   loops and the outer regions."

followed by the basic-block scheduler over every block ("the basic block
scheduler is applied to every single basic block of a program after the
global scheduling is completed", Section 5.1).  Every step is individually
switchable so the ablation benches can measure its contribution.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..dataflow.cache import AnalysisCache
from ..ir.function import Function
from ..ir.operand import Reg
from ..ir.verify import verify_function
from ..machine.model import MachineModel
from ..obs.events import FunctionBegin, FunctionEnd, PhaseBegin, PhaseEnd
from ..obs.metrics import NULL_METRICS, MetricsCollector
from ..obs.tracer import NULL_TRACER, Tracer
from ..sched.bb_sched import schedule_function_blocks
from ..sched.candidates import ScheduleLevel
from ..sched.driver import GlobalScheduleReport, global_schedule
from ..sched.profiling import BranchProfile, make_profile_priority_fn
from .ctr import CtrReport, convert_counted_loops
from .rename import RenameReport, rename_function
from .rotate import RotateReport, rotatable, rotate_loop
from .strength import StrengthReductionReport, strength_reduce
from .unroll import UnrollReport, unroll_loop, unrollable_inner_loops


@dataclass
class PipelineConfig:
    """Knobs of the Section 6 prototype, all defaulted to the paper's."""

    level: ScheduleLevel = ScheduleLevel.SPECULATIVE
    #: step 1: unroll inner loops with at most this many blocks (0 = off)
    unroll_max_blocks: int = 4
    #: step 3: rotate inner loops with at most this many blocks (0 = off)
    rotate_max_blocks: int = 4
    #: Section 5.1: post-pass basic-block scheduling
    post_bb_pass: bool = True
    #: Section 6: only schedule "small" regions
    apply_size_limits: bool = True
    #: Section 6: only the two inner levels of regions
    inner_levels_only: bool = True
    #: Definition 7 bound (the paper ships 1)
    max_speculation: int = 1
    #: scheduler-integrated renaming (Figure 6's cr5)
    rename_on_demand: bool = True
    #: run the standalone local renaming pass ahead of scheduling instead
    rename_ahead: bool = False
    #: induction-variable strength reduction, part of the BASE compiler's
    #: "machine independent optimizations" (it is what gives Figure 2 its
    #: pointer-walk form); applied at every level including NONE
    strength_reduce: bool = True
    #: footnote 3: keep counted-loop control in the counter register
    #: (MTCTR/BDNZ).  The paper disables it for its example; same default
    use_counter_register: bool = False
    #: optional branch profile (Section 1's "branch probabilities,
    #: whenever available"); speculation then prefers hot home blocks
    profile: "BranchProfile | None" = None
    #: Definition 6 / future-work extension: allow motion that requires
    #: duplicating the instruction into a join's other predecessors.  Off
    #: by default ("no duplication of code is allowed" in the prototype)
    allow_duplication: bool = False
    #: self-checking mode: snapshot the function before every scheduling
    #: sweep and run the static schedule verifier
    #: (:func:`repro.verify.verify_schedule`) on the result, raising
    #: :class:`repro.verify.ScheduleVerificationError` on any violation
    verify: bool = False
    #: observability (see :mod:`repro.obs`): a :class:`~repro.obs.Tracer`
    #: receiving every pipeline/scheduler decision event, and a
    #: :class:`~repro.obs.MetricsCollector` aggregating counters and
    #: per-phase timers.  None (the default) uses the no-op singletons --
    #: tracing off must be byte-identical to tracing on.
    trace: Tracer | None = None
    metrics: MetricsCollector | None = None


@dataclass
class PipelineReport:
    """Everything the pipeline did, plus its own wall-clock cost."""

    level: ScheduleLevel
    unrolled: list[UnrollReport] = field(default_factory=list)
    rotated: list[RotateReport] = field(default_factory=list)
    rename: RenameReport | None = None
    strength: StrengthReductionReport | None = None
    ctr: CtrReport | None = None
    first_pass: GlobalScheduleReport | None = None
    second_pass: GlobalScheduleReport | None = None
    bb_cycles: dict[str, int] = field(default_factory=dict)
    #: one VerifyReport per verified sweep, when PipelineConfig.verify is on
    verify_reports: list = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def motions(self):
        out = []
        for sweep in (self.first_pass, self.second_pass):
            if sweep is not None:
                out.extend(sweep.motions)
        return out


def optimize(
    func: Function,
    machine: MachineModel,
    config: PipelineConfig | None = None,
    *,
    live_at_exit: frozenset[Reg] | None = None,
) -> PipelineReport:
    """Run the full global-scheduling flow on ``func`` in place."""
    config = config or PipelineConfig()
    report = PipelineReport(level=config.level)
    tracer = config.trace if config.trace is not None else NULL_TRACER
    metrics = config.metrics if config.metrics is not None else NULL_METRICS
    started = time.perf_counter()
    if tracer.enabled:
        tracer.emit(FunctionBegin(function=func.name,
                                  level=config.level.value))

    @contextmanager
    def phase(name: str):
        """Bracket one Section 6 stage with trace + timer events."""
        if tracer.enabled:
            tracer.emit(PhaseBegin(function=func.name, phase=name))
        phase_started = time.perf_counter()
        try:
            with metrics.phase(name):
                yield
        finally:
            if tracer.enabled:
                tracer.emit(PhaseEnd(
                    function=func.name, phase=name,
                    elapsed_ms=(time.perf_counter() - phase_started) * 1e3))

    def finish() -> PipelineReport:
        report.elapsed_seconds = time.perf_counter() - started
        if tracer.enabled:
            tracer.emit(FunctionEnd(function=func.name,
                                    elapsed_ms=report.elapsed_seconds * 1e3))
        return report
    # One memoised CFG/dominators/loop-nest/liveness bundle shared by every
    # stage below.  Transform stages rewrite block structure and drop it
    # wholesale; scheduling sweeps move instructions between existing
    # blocks (terminators stay put), which keeps the CFG-shape analyses
    # valid and invalidates only liveness.
    analyses = AnalysisCache(func)

    def snapshot() -> Function | None:
        return func.clone() if config.verify else None

    def check(before: Function | None, *, level: ScheduleLevel,
              motions=()) -> None:
        if before is None:
            return
        from ..verify.verifier import verify_schedule

        with metrics.phase("verify"):
            report.verify_reports.append(verify_schedule(
                before, func, machine,
                level=level,
                live_at_exit=live_at_exit,
                motions=motions,
                max_speculation=config.max_speculation,
                allow_duplication=config.allow_duplication,
            ))

    # Machine-independent optimizations the BASE compiler also performs.
    if config.strength_reduce:
        with phase("strength-reduce"):
            report.strength = strength_reduce(
                func, live_at_exit=live_at_exit or frozenset())
            verify_function(func)
        analyses.invalidate()
    if config.use_counter_register:
        with phase("ctr"):
            report.ctr = convert_counted_loops(func)
            verify_function(func)
        analyses.invalidate()

    if config.level is ScheduleLevel.NONE:
        # The BASE compiler still runs its basic-block scheduler.
        if config.post_bb_pass:
            before = snapshot()
            with phase("bb-post"):
                report.bb_cycles = schedule_function_blocks(func, machine)
                verify_function(func)
            check(before, level=ScheduleLevel.NONE)
        return finish()

    if config.rename_ahead:
        with phase("rename-ahead"):
            report.rename = rename_function(
                func, live_at_exit=live_at_exit or frozenset())
            verify_function(func)
        analyses.invalidate_liveness()

    # Step 1: unroll small inner loops.
    if config.unroll_max_blocks:
        with phase("unroll"):
            nest = analyses.loop_nest()
            for loop in unrollable_inner_loops(func, nest.loops,
                                               config.unroll_max_blocks):
                report.unrolled.append(unroll_loop(func, loop))
            verify_function(func)
        if report.unrolled:
            analyses.invalidate()

    priority_fn = (make_profile_priority_fn(config.profile, func)
                   if config.profile else None)

    # Step 2: first global pass, inner regions only.
    before = snapshot()
    with phase("global-pass-1"):
        report.first_pass = global_schedule(
            func, machine, config.level,
            live_at_exit=live_at_exit,
            max_speculation=config.max_speculation,
            rename_on_demand=config.rename_on_demand,
            apply_size_limits=config.apply_size_limits,
            inner_levels_only=config.inner_levels_only,
            region_filter=lambda spec: (spec.kind == "loop"
                                        and not spec.subloops),
            priority_fn=priority_fn,
            allow_duplication=config.allow_duplication,
            analyses=analyses,
            tracer=tracer,
            metrics=metrics,
        )
        verify_function(func)
    analyses.invalidate_liveness()
    check(before, level=config.level, motions=report.first_pass.motions)

    # Step 3: rotate small inner loops.
    rotated_headers: set[str] = set()
    if config.rotate_max_blocks:
        with phase("rotate"):
            nest = analyses.loop_nest()
            for loop in list(nest.loops):
                if loop.children:
                    continue
                if rotatable(func, loop, config.rotate_max_blocks):
                    rotated = rotate_loop(func, loop)
                    report.rotated.append(rotated)
                    rotated_headers.add(rotated.new_loop_header)
            verify_function(func)
        if report.rotated:
            analyses.invalidate()

    # Step 4: second global pass -- the rotated inner loops and the
    # regions that are not inner loops (outer loops + subroutine body).
    def second_filter(spec) -> bool:
        if spec.kind == "loop" and not spec.subloops:
            return spec.header_node in rotated_headers
        return True

    before = snapshot()
    with phase("global-pass-2"):
        report.second_pass = global_schedule(
            func, machine, config.level,
            live_at_exit=live_at_exit,
            max_speculation=config.max_speculation,
            rename_on_demand=config.rename_on_demand,
            apply_size_limits=config.apply_size_limits,
            inner_levels_only=config.inner_levels_only,
            region_filter=second_filter,
            priority_fn=(make_profile_priority_fn(config.profile, func)
                         if config.profile else None),
            allow_duplication=config.allow_duplication,
            analyses=analyses,
            tracer=tracer,
            metrics=metrics,
        )
        verify_function(func)
    analyses.invalidate_liveness()
    check(before, level=config.level, motions=report.second_pass.motions)

    # Post-pass: local scheduling of every block.
    if config.post_bb_pass:
        before = snapshot()
        with phase("bb-post"):
            report.bb_cycles = schedule_function_blocks(func, machine)
            verify_function(func)
        check(before, level=ScheduleLevel.NONE)

    return finish()
