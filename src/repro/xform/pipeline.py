"""The Section 6 compilation flow, end to end.

"The general flow of the global scheduling is as follows:

1. certain inner loops are unrolled;
2. the global scheduling is applied the first time to the inner regions
   only;
3. certain inner loops are rotated;
4. the global scheduling is applied the second time to the rotated inner
   loops and the outer regions."

followed by the basic-block scheduler over every block ("the basic block
scheduler is applied to every single basic block of a program after the
global scheduling is completed", Section 5.1).  Every step is individually
switchable so the ablation benches can measure its contribution.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import TYPE_CHECKING

from ..dataflow.cache import AnalysisCache
from ..ir.function import Function
from ..ir.operand import Reg
from ..ir.verify import verify_function
from ..machine.model import MachineModel
from ..obs.events import FunctionBegin, FunctionEnd, PhaseBegin, PhaseEnd
from ..obs.metrics import NULL_METRICS, MetricsCollector
from ..obs.tracer import NULL_TRACER, Tracer
from ..sched.bb_sched import schedule_function_blocks
from ..sched.candidates import ScheduleLevel
from ..sched.driver import GlobalScheduleReport, global_schedule
from ..sched.profiling import BranchProfile, make_profile_priority_fn
from .ctr import CtrReport, convert_counted_loops
from .rename import RenameReport, rename_function
from .rotate import RotateReport, rotatable, rotate_loop
from .strength import StrengthReductionReport, strength_reduce
from .unroll import UnrollReport, unroll_loop, unrollable_inner_loops

if TYPE_CHECKING:  # import cycle: repro.resilience.runner imports this module
    from ..resilience.guard import StageGuard
    from ..resilience.ladder import ResilienceConfig


@dataclass
class PipelineConfig:
    """Knobs of the Section 6 prototype, all defaulted to the paper's."""

    level: ScheduleLevel = ScheduleLevel.SPECULATIVE
    #: step 1: unroll inner loops with at most this many blocks (0 = off)
    unroll_max_blocks: int = 4
    #: step 3: rotate inner loops with at most this many blocks (0 = off)
    rotate_max_blocks: int = 4
    #: Section 5.1: post-pass basic-block scheduling
    post_bb_pass: bool = True
    #: Section 6: only schedule "small" regions
    apply_size_limits: bool = True
    #: Section 6: only the two inner levels of regions
    inner_levels_only: bool = True
    #: Definition 7 bound (the paper ships 1)
    max_speculation: int = 1
    #: scheduler-integrated renaming (Figure 6's cr5)
    rename_on_demand: bool = True
    #: run the standalone local renaming pass ahead of scheduling instead
    rename_ahead: bool = False
    #: induction-variable strength reduction, part of the BASE compiler's
    #: "machine independent optimizations" (it is what gives Figure 2 its
    #: pointer-walk form); applied at every level including NONE
    strength_reduce: bool = True
    #: footnote 3: keep counted-loop control in the counter register
    #: (MTCTR/BDNZ).  The paper disables it for its example; same default
    use_counter_register: bool = False
    #: optional branch profile (Section 1's "branch probabilities,
    #: whenever available"); speculation then prefers hot home blocks
    profile: "BranchProfile | None" = None
    #: Definition 6 / future-work extension: allow motion that requires
    #: duplicating the instruction into a join's other predecessors.  Off
    #: by default ("no duplication of code is allowed" in the prototype)
    allow_duplication: bool = False
    #: self-checking mode: snapshot the function before every scheduling
    #: sweep and run the static schedule verifier
    #: (:func:`repro.verify.verify_schedule`) on the result, raising
    #: :class:`repro.verify.ScheduleVerificationError` on any violation
    verify: bool = False
    #: observability (see :mod:`repro.obs`): a :class:`~repro.obs.Tracer`
    #: receiving every pipeline/scheduler decision event, and a
    #: :class:`~repro.obs.MetricsCollector` aggregating counters and
    #: per-phase timers.  None (the default) uses the no-op singletons --
    #: tracing off must be byte-identical to tracing on.
    trace: Tracer | None = None
    metrics: MetricsCollector | None = None
    #: fail-soft mode (see :mod:`repro.resilience`): pass isolation,
    #: per-pass/per-program budgets, and the degradation ladder
    #: speculative -> useful -> bb -> identity.  None (the default) keeps
    #: the pipeline exactly as fast and as brittle as before.
    resilience: "ResilienceConfig | None" = None


@dataclass
class PipelineReport:
    """Everything the pipeline did, plus its own wall-clock cost."""

    level: ScheduleLevel
    unrolled: list[UnrollReport] = field(default_factory=list)
    rotated: list[RotateReport] = field(default_factory=list)
    rename: RenameReport | None = None
    strength: StrengthReductionReport | None = None
    ctr: CtrReport | None = None
    first_pass: GlobalScheduleReport | None = None
    second_pass: GlobalScheduleReport | None = None
    bb_cycles: dict[str, int] = field(default_factory=dict)
    #: one VerifyReport per verified sweep, when PipelineConfig.verify is on
    verify_reports: list = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def motions(self):
        out = []
        for sweep in (self.first_pass, self.second_pass):
            if sweep is not None:
                out.extend(sweep.motions)
        return out


def optimize(
    func: Function,
    machine: MachineModel,
    config: PipelineConfig | None = None,
    *,
    live_at_exit: frozenset[Reg] | None = None,
) -> PipelineReport:
    """Run the full global-scheduling flow on ``func`` in place.

    With ``config.resilience`` set this delegates to the fail-soft driver
    (:func:`repro.resilience.runner.resilient_optimize`), which wraps the
    same flow in pass isolation, budgets and the degradation ladder and
    returns a :class:`~repro.resilience.runner.ResilientPipelineReport`
    (a :class:`PipelineReport` subclass).
    """
    config = config or PipelineConfig()
    if config.resilience is not None:
        from ..resilience.runner import resilient_optimize

        return resilient_optimize(func, machine, config,
                                  live_at_exit=live_at_exit)
    return _optimize_once(func, machine, config, live_at_exit=live_at_exit)


def _optimize_once(
    func: Function,
    machine: MachineModel,
    config: PipelineConfig,
    *,
    live_at_exit: frozenset[Reg] | None = None,
    guard: "StageGuard | None" = None,
) -> PipelineReport:
    """One un-laddered run of the flow; ``guard`` (when present) brackets
    every stage with the resilience layer's pass isolation."""
    report = PipelineReport(level=config.level)
    tracer = config.trace if config.trace is not None else NULL_TRACER
    metrics = config.metrics if config.metrics is not None else NULL_METRICS
    started = time.perf_counter()
    if tracer.enabled:
        tracer.emit(FunctionBegin(function=func.name,
                                  level=config.level.value))

    @contextmanager
    def phase(name: str, *, skippable: bool = False, on_restore=None):
        """Bracket one Section 6 stage with trace + timer events (and,
        under a guard, fault injection / budgets / rollback-on-failure --
        a skipped stage resumes *after* the with-block, so stage bodies
        mutate ``report`` as their final statement only)."""
        if tracer.enabled:
            tracer.emit(PhaseBegin(function=func.name, phase=name))
        phase_started = time.perf_counter()
        try:
            if guard is not None:
                if guard.armed:
                    # On a skip the guard restores func from its snapshot;
                    # restore the report's fields alongside so a post-body
                    # injection cannot leave entries for rolled-back work.
                    saved = {f.name: getattr(report, f.name)
                             for f in dataclass_fields(report)}

                    def restore() -> None:
                        for key, value in saved.items():
                            setattr(report, key, value)
                        if on_restore is not None:
                            on_restore()
                else:
                    # unarmed guards never skip, so nothing to roll back
                    restore = on_restore
                with guard.stage(name, skippable=skippable,
                                 on_restore=restore):
                    with metrics.phase(name):
                        yield
            else:
                with metrics.phase(name):
                    yield
        finally:
            if tracer.enabled:
                tracer.emit(PhaseEnd(
                    function=func.name, phase=name,
                    elapsed_ms=(time.perf_counter() - phase_started) * 1e3))

    def finish() -> PipelineReport:
        report.elapsed_seconds = time.perf_counter() - started
        if tracer.enabled:
            tracer.emit(FunctionEnd(function=func.name,
                                    elapsed_ms=report.elapsed_seconds * 1e3))
        return report
    # One memoised CFG/dominators/loop-nest/liveness bundle shared by every
    # stage below.  Transform stages rewrite block structure and drop it
    # wholesale; scheduling sweeps move instructions between existing
    # blocks (terminators stay put), which keeps the CFG-shape analyses
    # valid and invalidates only liveness.
    analyses = AnalysisCache(func, metrics=metrics)

    def snapshot() -> Function | None:
        return func.clone() if config.verify else None

    def check(before: Function | None, *, level: ScheduleLevel,
              motions=()) -> None:
        if before is None:
            return
        from ..verify.verifier import verify_schedule

        with metrics.phase("verify"):
            report.verify_reports.append(verify_schedule(
                before, func, machine,
                level=level,
                live_at_exit=live_at_exit,
                motions=motions,
                max_speculation=config.max_speculation,
                allow_duplication=config.allow_duplication,
            ))

    # Machine-independent optimizations the BASE compiler also performs.
    # Optional transforms are `skippable`: under a guard a failure inside
    # the with-block rolls the function back and execution resumes after
    # it, so each body assigns into `report` as its very last statement.
    if config.strength_reduce:
        with phase("strength-reduce", skippable=True,
                   on_restore=analyses.invalidate):
            strength = strength_reduce(
                func, live_at_exit=live_at_exit or frozenset())
            verify_function(func)
            report.strength = strength
        analyses.invalidate()
    if config.use_counter_register:
        with phase("ctr", skippable=True, on_restore=analyses.invalidate):
            ctr = convert_counted_loops(func)
            verify_function(func)
            report.ctr = ctr
        analyses.invalidate()

    if config.level is ScheduleLevel.NONE:
        # The BASE compiler still runs its basic-block scheduler.
        if config.post_bb_pass:
            before = snapshot()
            with phase("bb-post"):
                bb_cycles = schedule_function_blocks(func, machine)
                verify_function(func)
                report.bb_cycles = bb_cycles
            check(before, level=ScheduleLevel.NONE)
        return finish()

    if config.rename_ahead:
        with phase("rename-ahead", skippable=True,
                   on_restore=analyses.invalidate):
            rename = rename_function(
                func, live_at_exit=live_at_exit or frozenset())
            verify_function(func)
            report.rename = rename
        analyses.invalidate_liveness()

    # Step 1: unroll small inner loops.
    if config.unroll_max_blocks:
        with phase("unroll", skippable=True,
                   on_restore=analyses.invalidate):
            unrolled = []
            nest = analyses.loop_nest()
            for loop in unrollable_inner_loops(func, nest.loops,
                                               config.unroll_max_blocks):
                unrolled.append(unroll_loop(func, loop))
            verify_function(func)
            report.unrolled = unrolled
        if report.unrolled:
            analyses.invalidate()

    priority_fn = (make_profile_priority_fn(config.profile, func)
                   if config.profile else None)

    # Step 2: first global pass, inner regions only.
    before = snapshot()
    with phase("global-pass-1"):
        first_pass = global_schedule(
            func, machine, config.level,
            live_at_exit=live_at_exit,
            max_speculation=config.max_speculation,
            rename_on_demand=config.rename_on_demand,
            apply_size_limits=config.apply_size_limits,
            inner_levels_only=config.inner_levels_only,
            region_filter=lambda spec: (spec.kind == "loop"
                                        and not spec.subloops),
            priority_fn=priority_fn,
            allow_duplication=config.allow_duplication,
            analyses=analyses,
            tracer=tracer,
            metrics=metrics,
        )
        verify_function(func)
        report.first_pass = first_pass
    analyses.invalidate_liveness()
    check(before, level=config.level, motions=report.first_pass.motions)

    # Step 3: rotate small inner loops.
    rotated_headers: set[str] = set()
    if config.rotate_max_blocks:
        with phase("rotate", skippable=True,
                   on_restore=analyses.invalidate):
            rotated = []
            nest = analyses.loop_nest()
            for loop in list(nest.loops):
                if loop.children:
                    continue
                if rotatable(func, loop, config.rotate_max_blocks):
                    rotated.append(rotate_loop(func, loop))
            verify_function(func)
            report.rotated = rotated
            rotated_headers = {r.new_loop_header for r in rotated}
        if report.rotated:
            analyses.invalidate()

    # Step 4: second global pass -- the rotated inner loops and the
    # regions that are not inner loops (outer loops + subroutine body).
    def second_filter(spec) -> bool:
        if spec.kind == "loop" and not spec.subloops:
            return spec.header_node in rotated_headers
        return True

    before = snapshot()
    with phase("global-pass-2"):
        second_pass = global_schedule(
            func, machine, config.level,
            live_at_exit=live_at_exit,
            max_speculation=config.max_speculation,
            rename_on_demand=config.rename_on_demand,
            apply_size_limits=config.apply_size_limits,
            inner_levels_only=config.inner_levels_only,
            region_filter=second_filter,
            priority_fn=(make_profile_priority_fn(config.profile, func)
                         if config.profile else None),
            allow_duplication=config.allow_duplication,
            analyses=analyses,
            tracer=tracer,
            metrics=metrics,
        )
        verify_function(func)
        report.second_pass = second_pass
    analyses.invalidate_liveness()
    check(before, level=config.level, motions=report.second_pass.motions)

    # Post-pass: local scheduling of every block.
    if config.post_bb_pass:
        before = snapshot()
        with phase("bb-post"):
            bb_cycles = schedule_function_blocks(func, machine)
            verify_function(func)
            report.bb_cycles = bb_cycles
        check(before, level=ScheduleLevel.NONE)

    return finish()
