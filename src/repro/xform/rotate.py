"""Loop rotation (Section 6, step 3).

"After the global scheduling is applied to the inner regions, such regions
that represent loops with up to 4 basic blocks are rotated, by copying
their first basic block after the end of the loop.  By applying the global
scheduling the second time to the rotated inner loops, we achieve the
partial effect of the software pipelining, i.e., some of the instructions
of the next iteration of the loop are executed within the body of the
previous iteration."

Mechanically: the header ``H`` is cloned as ``H'`` at the end of the loop
and every back edge ``X -> H`` is retargeted to ``H'``.  The original ``H``
is then only executed on loop entry (it has become the first iteration's
prologue), and the rotated loop's body is ``B2 .. Bk, H'`` -- whose *last*
block holds the next iteration's leading instructions, ready to be moved up
into the body by the second global scheduling pass.

Preconditions: contiguous layout, and the header has exactly one successor
inside the loop that is not the header itself (so the rotated loop stays
single-entry / reducible).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.loops import Loop
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.opcodes import Opcode
from .unroll import TransformError, _prepare_tail, loop_blocks_in_layout


@dataclass
class RotateReport:
    header: str
    clone_header: str
    new_loop_header: str


def rotatable(func: Function, loop: Loop, max_blocks: int = 4) -> bool:
    """Does the paper's rotation policy apply to ``loop``?"""
    if loop.children or len(loop.body) > max_blocks or len(loop.body) < 2:
        return False
    if loop.header in loop.latches:
        return False  # the header may not be its own latch
    try:
        loop_blocks_in_layout(func, loop)
    except TransformError:
        return False
    header = func.block(loop.header)
    inside = [s for s in func.successors(header)
              if s.label in loop.body and s.label != loop.header]
    return len(inside) == 1


def rotate_loop(func: Function, loop: Loop) -> RotateReport:
    """Rotate ``loop`` in place (see module docstring)."""
    if not rotatable(func, loop, max_blocks=len(loop.body)):
        raise TransformError(
            f"loop at {loop.header!r} cannot be rotated (multiple in-loop "
            f"header successors, nested loops, or non-contiguous layout)"
        )
    members = loop_blocks_in_layout(func, loop)
    header = func.block(loop.header)
    last = members[-1]

    inside = [s for s in func.successors(header)
              if s.label in loop.body and s.label != loop.header]
    new_loop_header = inside[0].label

    # Snapshot the header before the latch may be inverted, then protect
    # the loop's fall-through exit from the clone inserted behind `last`.
    # Inversion is always acceptable here: the inserted block *is* the
    # header copy the back edge should fall into.
    header_snapshot = [ins.clone() for ins in header.instrs]
    insert_after = _prepare_tail(func, last, header.label, invert_ok=True)

    # Clone the header after the end of the loop.
    clone = func.add_block(func.fresh_label(f"{header.label}.r"),
                           after=insert_after)
    for ins in header_snapshot:
        func.emit(clone, ins)

    # The clone needs explicit control flow for the header's fall-through
    # successor (the clone sits at the end of the loop, so its layout
    # fall-through differs from the header's).
    term = clone.terminator
    if term is None or term.opcode.is_conditional:
        fall = func.fallthrough(header)
        if fall is None:
            raise TransformError(
                f"header {header.label!r} falls off the function end")
        trampoline = func.add_block(func.fresh_label("RX"), after=clone)
        func.emit(trampoline, Instruction(
            Opcode.B, target=fall.label, comment="rotated header fall-through"
        ))

    # Retarget every back edge to the clone: the loop now closes through
    # the copied header.
    for block in members:
        t = block.terminator
        if t is not None and not t.is_call and t.target == header.label:
            t.target = clone.label

    return RotateReport(
        header=header.label,
        clone_header=clone.label,
        new_loop_header=new_loop_header,
    )
