"""repro -- a reproduction of Bernstein & Rodeh, "Global Instruction
Scheduling for Superscalar Machines" (PLDI 1991).

The package implements the paper's full stack from scratch:

* :mod:`repro.ir` -- an RS/6000-flavoured IR with a Figure-2-style
  textual format;
* :mod:`repro.lang` -- a mini-C front end producing that IR;
* :mod:`repro.cfg`, :mod:`repro.dataflow` -- dominators, loops, liveness;
* :mod:`repro.pdg` -- the Program Dependence Graph (forward control
  dependences, equivalence classes, data dependences with delays);
* :mod:`repro.machine` -- the parametric superscalar machine description
  and the RS/6K instance (Section 2);
* :mod:`repro.sched` -- the global scheduler (useful + 1-branch
  speculative) and the basic-block list scheduler (Section 5);
* :mod:`repro.xform` -- renaming, unrolling, rotation, and the Section 6
  compilation flow;
* :mod:`repro.sim` -- a functional interpreter and a cycle-level
  simulator calibrated to the paper's cycle counts;
* :mod:`repro.bench` -- SPEC-like workloads and the harness regenerating
  the paper's Figures 7 and 8.

Quickstart::

    from repro import compile_c, ScheduleLevel

    result = compile_c(source, level=ScheduleLevel.SPECULATIVE)
    print(result["minmax"].assembly())
    print(result["minmax"].run([5, 2, 9, 4], 4).cycles)
"""

from .compiler import CompileResult, CompiledUnit, RunResult, compile_c
from .machine.configs import CONFIGS, superscalar, vliw_like
from .machine.model import DelayModel, MachineModel
from .machine.rs6k import RS6K, rs6k
from .sched.candidates import ScheduleLevel
from .sched.driver import GlobalScheduleReport, global_schedule
from .xform.pipeline import PipelineConfig, PipelineReport, optimize

__version__ = "1.0.0"

__all__ = [
    "CONFIGS",
    "CompileResult",
    "CompiledUnit",
    "DelayModel",
    "GlobalScheduleReport",
    "MachineModel",
    "PipelineConfig",
    "PipelineReport",
    "RS6K",
    "RunResult",
    "ScheduleLevel",
    "compile_c",
    "global_schedule",
    "optimize",
    "rs6k",
    "superscalar",
    "vliw_like",
    "__version__",
]
