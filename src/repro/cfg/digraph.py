"""A small generic directed-graph type used by all CFG-level analyses.

Dominators, postdominators, control dependences and loop detection all run
over plain digraphs; keeping them generic lets the scheduler reuse the exact
same code on (a) the function CFG augmented with ENTRY/EXIT and (b) the
*collapsed* region graphs in which nested inner loops appear as single
abstract nodes (Section 5.1 schedules region by region and never moves
instructions across region boundaries).

Nodes may be any hashable objects.  Insertion order is preserved everywhere
so analyses are deterministic.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Node = Hashable


class Digraph:
    """Directed graph with deterministic iteration order."""

    def __init__(self) -> None:
        self._succs: dict[Node, list[Node]] = {}
        self._preds: dict[Node, list[Node]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node not in self._succs:
            self._succs[node] = []
            self._preds[node] = []

    def add_edge(self, src: Node, dst: Node) -> None:
        """Add an edge (parallel edges are collapsed)."""
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succs[src]:
            self._succs[src].append(dst)
            self._preds[dst].append(src)

    # -- queries -------------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        return list(self._succs)

    def __contains__(self, node: Node) -> bool:
        return node in self._succs

    def __len__(self) -> int:
        return len(self._succs)

    def succs(self, node: Node) -> list[Node]:
        return list(self._succs[node])

    def preds(self, node: Node) -> list[Node]:
        return list(self._preds[node])

    def adjacency(self) -> tuple[dict[Node, list[Node]],
                                 dict[Node, list[Node]]]:
        """The internal ``(succs, preds)`` adjacency dicts.

        A zero-copy view for the dense snapshot builders (``succs()`` /
        ``preds()`` copy their row on every call, which dominates tight
        interning loops).  Callers must not mutate the returned dicts.
        """
        return self._succs, self._preds

    def edges(self) -> Iterator[tuple[Node, Node]]:
        for src, dsts in self._succs.items():
            for dst in dsts:
                yield (src, dst)

    def reversed(self) -> "Digraph":
        """A new graph with every edge flipped."""
        rev = Digraph()
        for node in self._succs:
            rev.add_node(node)
        for src, dst in self.edges():
            rev.add_edge(dst, src)
        return rev

    def subgraph(self, nodes: Iterable[Node]) -> "Digraph":
        """The induced subgraph on ``nodes`` (order preserved)."""
        keep = set(nodes)
        sub = Digraph()
        for node in self._succs:
            if node in keep:
                sub.add_node(node)
        for src, dst in self.edges():
            if src in keep and dst in keep:
                sub.add_edge(src, dst)
        return sub

    # -- traversals -------------------------------------------------------------

    def reachable_from(self, root: Node) -> set[Node]:
        seen: set[Node] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succs.get(node, ()))
        return seen

    def postorder(self, root: Node) -> list[Node]:
        """Iterative DFS postorder from ``root`` (deterministic)."""
        order: list[Node] = []
        seen: set[Node] = set()
        # stack holds (node, iterator over successors)
        stack: list[tuple[Node, Iterator[Node]]] = []
        if root in self._succs:
            seen.add(root)
            stack.append((root, iter(self._succs[root])))
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self._succs[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        return order

    def rpo(self, root: Node) -> list[Node]:
        """Reverse postorder from ``root``."""
        order = self.postorder(root)
        order.reverse()
        return order

    def topological_order(self, root: Node) -> list[Node]:
        """Topological order of an *acyclic* graph reachable from ``root``.

        Raises ``ValueError`` if a cycle is reachable.  Reverse postorder of
        a DAG is a topological order; we verify no retreating edge exists.
        """
        order = self.rpo(root)
        position = {node: i for i, node in enumerate(order)}
        for src in order:
            for dst in self._succs[src]:
                if position.get(dst, len(order)) <= position[src]:
                    raise ValueError(
                        f"graph has a cycle (retreating edge {src!r}->{dst!r})"
                    )
        return order

    def __repr__(self) -> str:
        return f"<Digraph {len(self)} nodes, {sum(1 for _ in self.edges())} edges>"
