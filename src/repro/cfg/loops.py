"""Back edges, natural loops, the loop nesting forest, and reducibility.

The paper schedules *regions*: "a region represents either a strongly
connected component that corresponds to a loop (which has at least one back
edge) or a body of a subroutine without the enclosed loops" (Section 5.1),
and assumes reducible control flow ("the assumption of a control flow graph
having a single entry corresponds to the assumption that the control flow
graph is reducible", Section 4.1).

A *back edge* is an edge ``u -> h`` whose target dominates its source; the
*natural loop* of the back edge is ``h`` plus every node that can reach ``u``
without passing through ``h``.  Loops sharing a header are merged.  The CFG
is reducible iff deleting all back edges leaves an acyclic graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from .digraph import Digraph
from .dominators import DominatorTree

Node = Hashable


@dataclass
class Loop:
    """A natural loop: single-entry strongly connected region."""

    header: Node
    #: all nodes in the loop, header included
    body: set[Node]
    #: sources of the back edges targeting the header
    latches: list[Node]
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth; 1 for an outermost loop."""
        depth, loop = 1, self
        while loop.parent is not None:
            depth += 1
            loop = loop.parent
        return depth

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def __contains__(self, node: Node) -> bool:
        return node in self.body

    def __repr__(self) -> str:
        return (f"<Loop header={self.header!r} |body|={len(self.body)} "
                f"depth={self.depth}>")


def back_edges(graph: Digraph, dom: DominatorTree) -> list[tuple[Node, Node]]:
    """All edges whose target dominates their source."""
    result = []
    for src, dst in graph.edges():
        if dom.dominates(dst, src):
            result.append((src, dst))
    return result


def natural_loop(graph: Digraph, latch: Node, header: Node) -> set[Node]:
    """Body of the natural loop of back edge ``latch -> header``."""
    body = {header, latch}
    stack = [latch] if latch != header else []
    while stack:
        node = stack.pop()
        for pred in graph.preds(node):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def is_reducible(graph: Digraph, dom: DominatorTree) -> bool:
    """Is the graph reducible (all cycles entered through their headers)?"""
    backs = set(back_edges(graph, dom))
    forward = Digraph()
    for node in graph.nodes:
        forward.add_node(node)
    for edge in graph.edges():
        if edge not in backs:
            forward.add_edge(*edge)
    try:
        forward.topological_order(dom.root)
    except ValueError:
        return False
    return True


class LoopNest:
    """The loop nesting forest of a CFG."""

    def __init__(self, graph: Digraph, dom: DominatorTree):
        self.graph = graph
        self.dom = dom
        self.loops: list[Loop] = []
        self._loop_of_header: dict[Node, Loop] = {}
        self._build()

    def _build(self) -> None:
        by_header: dict[Node, Loop] = {}
        # the backward body walk can pull in forward-unreachable
        # predecessors; clamp to nodes the dominator tree knows about
        reachable = set(self.dom.nodes)
        for latch, header in back_edges(self.graph, self.dom):
            body = natural_loop(self.graph, latch, header) & reachable
            if header in by_header:
                by_header[header].body |= body
                by_header[header].latches.append(latch)
            else:
                by_header[header] = Loop(header, body, [latch])
        self.loops = sorted(by_header.values(), key=lambda l: len(l.body))
        self._loop_of_header = by_header
        # nest: each loop's parent is the smallest strictly-containing loop
        for i, inner in enumerate(self.loops):
            for outer in self.loops[i + 1:]:
                if inner.header in outer.body and inner is not outer:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    # -- queries ---------------------------------------------------------

    @property
    def top_level(self) -> list[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_with_header(self, header: Node) -> Loop | None:
        return self._loop_of_header.get(header)

    def innermost_containing(self, node: Node) -> Loop | None:
        """The smallest loop whose body contains ``node``."""
        best: Loop | None = None
        for loop in self.loops:  # sorted by body size ascending
            if node in loop.body:
                best = loop
                break
        return best

    def loops_innermost_first(self) -> list[Loop]:
        """All loops ordered so every loop precedes its ancestors."""
        order: list[Loop] = []
        seen: set[int] = set()

        def visit(loop: Loop) -> None:
            for child in loop.children:
                visit(child)
            if id(loop) not in seen:
                seen.add(id(loop))
                order.append(loop)

        for loop in self.top_level:
            visit(loop)
        return order

    def __repr__(self) -> str:
        return f"<LoopNest {len(self.loops)} loops>"
