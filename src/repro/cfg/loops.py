"""Back edges, natural loops, the loop nesting forest, and reducibility.

The paper schedules *regions*: "a region represents either a strongly
connected component that corresponds to a loop (which has at least one back
edge) or a body of a subroutine without the enclosed loops" (Section 5.1),
and assumes reducible control flow ("the assumption of a control flow graph
having a single entry corresponds to the assumption that the control flow
graph is reducible", Section 4.1).

A *back edge* is an edge ``u -> h`` whose target dominates its source; the
*natural loop* of the back edge is ``h`` plus every node that can reach ``u``
without passing through ``h``.  Loops sharing a header are merged.  The CFG
is reducible iff deleting all back edges leaves an acyclic graph.

Like the dominator tree, the detectors run dense: nodes are interned to
int indices once, loop bodies accumulate as int bitmasks (one OR per
merged back edge) and the reducibility DFS walks flattened int successor
rows instead of copying the graph.  The seed set-per-loop implementations
are preserved in :mod:`repro.cfg.reference` as the equivalence oracles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from .digraph import Digraph
from .dominators import DominatorTree

Node = Hashable


@dataclass
class Loop:
    """A natural loop: single-entry strongly connected region."""

    header: Node
    #: all nodes in the loop, header included
    body: set[Node]
    #: sources of the back edges targeting the header
    latches: list[Node]
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth; 1 for an outermost loop."""
        depth, loop = 1, self
        while loop.parent is not None:
            depth += 1
            loop = loop.parent
        return depth

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def __contains__(self, node: Node) -> bool:
        return node in self.body

    def __repr__(self) -> str:
        return (f"<Loop header={self.header!r} |body|={len(self.body)} "
                f"depth={self.depth}>")


def back_edges(graph: Digraph, dom: DominatorTree) -> list[tuple[Node, Node]]:
    """All edges whose target dominates their source."""
    result = []
    for src, dst in graph.edges():
        if dom.dominates(dst, src):
            result.append((src, dst))
    return result


def natural_loop(graph: Digraph, latch: Node, header: Node) -> set[Node]:
    """Body of the natural loop of back edge ``latch -> header``."""
    body = {header, latch}
    stack = [latch] if latch != header else []
    while stack:
        node = stack.pop()
        for pred in graph.preds(node):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def is_reducible(graph: Digraph, dom: DominatorTree) -> bool:
    """Is the graph reducible (all cycles entered through their headers)?

    Equivalent to the seed's copy-the-graph-and-toposort
    (:func:`repro.cfg.reference.is_reducible_reference`): drop every back
    edge, then look for a retreating edge w.r.t. a DFS reverse postorder
    from the root -- one exists iff a cycle survived.  Runs on int
    successor rows; only dense dominator trees carry the arrays, so a
    reference tree (from the oracle context managers) takes the seed path.
    """
    idom = getattr(dom, "_idom_arr", None)
    if idom is None:
        from .reference import is_reducible_reference
        return is_reducible_reference(graph, dom)
    index = dom._index
    depth = dom._depth_arr
    rpo = dom._rpo
    n = len(rpo)
    if n == 0:
        return True
    succ_map, _ = graph.adjacency()
    succs_f: list[list[int]] = []
    for v, node in enumerate(rpo):
        row = []
        for s in succ_map[node]:
            j = index.get(s)
            if j is None:
                continue  # edge into an unreachable node: never on a cycle
            a, b = j, v
            da = depth[a]
            while depth[b] > da:
                b = idom[b]
            if a == b:
                continue  # back edge: dropped
            row.append(j)
        succs_f.append(row)
    # DFS reverse postorder over the filtered rows (removing back edges
    # preserves reachability: any walk through u->h has already visited h)
    seen = bytearray(n)
    seen[0] = 1
    order: list[int] = []
    stack: list = [(0, iter(succs_f[0]))]
    while stack:
        v, it = stack[-1]
        advanced = False
        for s in it:
            if not seen[s]:
                seen[s] = 1
                stack.append((s, iter(succs_f[s])))
                advanced = True
                break
        if not advanced:
            order.append(v)
            stack.pop()
    pos = [n] * n
    for i, v in enumerate(reversed(order)):
        pos[v] = i
    for v in order:
        pv = pos[v]
        for d in succs_f[v]:
            if pos[d] <= pv:
                return False  # retreating edge: a cycle survived
    return True


class LoopNest:
    """The loop nesting forest of a CFG."""

    def __init__(self, graph: Digraph, dom: DominatorTree):
        self.graph = graph
        self.dom = dom
        self.loops: list[Loop] = []
        self._loop_of_header: dict[Node, Loop] = {}
        self._build()

    def _build(self) -> None:
        dom = self.dom
        graph = self.graph
        # all graph nodes (not just reachable ones): the backward body
        # walk must run through forward-unreachable predecessors exactly
        # like the seed's, and only then clamp to the reachable set
        succ_map, pred_map = graph.adjacency()
        nodes_all = list(succ_map)
        gindex = {node: i for i, node in enumerate(nodes_all)}
        preds_idx = [
            [gindex[p] for p in pred_map[node]] for node in nodes_all
        ]
        reachable_mask = 0
        for node in dom.nodes:
            reachable_mask |= 1 << gindex[node]

        by_header: dict[Node, Loop] = {}
        masks: dict[Node, int] = {}
        for latch, header in back_edges(graph, dom):
            h = gindex[header]
            l = gindex[latch]
            seed = masks.get(header, 0)
            mask = seed | (1 << h) | (1 << l)
            stack = [l] if l != h else []
            while stack:
                v = stack.pop()
                for p in preds_idx[v]:
                    bit = 1 << p
                    if not mask & bit:
                        mask |= bit
                        stack.append(p)
            if header in by_header:
                masks[header] = mask
                by_header[header].latches.append(latch)
            else:
                by_header[header] = Loop(header, set(), [latch])
                masks[header] = mask
        for header, loop in by_header.items():
            m = masks[header] & reachable_mask
            body = loop.body
            while m:
                low = m & -m
                body.add(nodes_all[low.bit_length() - 1])
                m ^= low
        self.loops = sorted(by_header.values(), key=lambda l: len(l.body))
        self._loop_of_header = by_header
        # nest: each loop's parent is the smallest strictly-containing loop
        for i, inner in enumerate(self.loops):
            for outer in self.loops[i + 1:]:
                if inner.header in outer.body and inner is not outer:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    # -- queries ---------------------------------------------------------

    @property
    def top_level(self) -> list[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_with_header(self, header: Node) -> Loop | None:
        return self._loop_of_header.get(header)

    def innermost_containing(self, node: Node) -> Loop | None:
        """The smallest loop whose body contains ``node``."""
        best: Loop | None = None
        for loop in self.loops:  # sorted by body size ascending
            if node in loop.body:
                best = loop
                break
        return best

    def loops_innermost_first(self) -> list[Loop]:
        """All loops ordered so every loop precedes its ancestors."""
        order: list[Loop] = []
        seen: set[int] = set()

        def visit(loop: Loop) -> None:
            for child in loop.children:
                visit(child)
            if id(loop) not in seen:
                seen.add(id(loop))
                order.append(loop)

        for loop in self.top_level:
            visit(loop)
        return order

    def __repr__(self) -> str:
        return f"<LoopNest {len(self.loops)} loops>"
