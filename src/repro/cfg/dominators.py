"""Dominator and postdominator trees.

Definitions 1-3 of the paper:

* ``A`` *dominates* ``B`` iff ``A`` appears on every path from ENTRY to ``B``;
* ``B`` *postdominates* ``A`` iff ``B`` appears on every path from ``A`` to
  EXIT;
* ``A`` and ``B`` are *equivalent* iff ``A`` dominates ``B`` and ``B``
  postdominates ``A`` (the precondition for *useful* code motion,
  Definition 4).

The implementation is the Cooper-Harvey-Kennedy iterative algorithm ("A
Simple, Fast Dominance Algorithm"), which runs in near-linear time on
reducible CFGs and is correct on arbitrary graphs.  Postdominators are
dominators of the reverse graph rooted at EXIT.
"""

from __future__ import annotations

from typing import Hashable

from .digraph import Digraph

Node = Hashable


class DominatorTree:
    """Immediate-dominator tree of the subgraph reachable from ``root``."""

    def __init__(self, graph: Digraph, root: Node):
        self.root = root
        self._rpo = graph.rpo(root)
        self._index = {node: i for i, node in enumerate(self._rpo)}
        self._idom: dict[Node, Node] = {root: root}
        self._compute(graph)
        self._children: dict[Node, list[Node]] = {n: [] for n in self._rpo}
        for node in self._rpo:
            if node != root:
                self._children[self._idom[node]].append(node)
        # depth of each node in the dominator tree, for O(depth) queries
        self._depth: dict[Node, int] = {root: 0}
        for node in self._rpo[1:]:
            self._depth[node] = self._depth[self._idom[node]] + 1

    def _compute(self, graph: Digraph) -> None:
        index = self._index
        idom = self._idom

        def intersect(a: Node, b: Node) -> Node:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in self._rpo[1:]:
                processed = [p for p in graph.preds(node)
                             if p in idom and p in index]
                if not processed:
                    continue
                new_idom = processed[0]
                for pred in processed[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True

    # -- queries ----------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        """All nodes reachable from the root, in reverse postorder."""
        return list(self._rpo)

    def idom(self, node: Node) -> Node | None:
        """Immediate dominator (``None`` for the root)."""
        if node == self.root:
            return None
        return self._idom[node]

    def children(self, node: Node) -> list[Node]:
        return list(self._children[node])

    def depth(self, node: Node) -> int:
        return self._depth[node]

    def dominates(self, a: Node, b: Node) -> bool:
        """Does ``a`` dominate ``b``?  (Reflexive: a node dominates itself.)"""
        if a not in self._depth or b not in self._depth:
            return False
        while self._depth[b] > self._depth[a]:
            b = self._idom[b]
        return a == b

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, node: Node) -> list[Node]:
        """All dominators of ``node``, from the node up to the root."""
        out = [node]
        while node != self.root:
            node = self._idom[node]
            out.append(node)
        return out


def dominator_tree(graph: Digraph, entry: Node) -> DominatorTree:
    """Dominator tree of ``graph`` rooted at ``entry``."""
    return DominatorTree(graph, entry)


def postdominator_tree(graph: Digraph, exit_node: Node) -> DominatorTree:
    """Postdominator tree: dominators of the reversed graph from EXIT.

    ``tree.dominates(b, a)`` then answers "``b`` postdominates ``a``".
    """
    return DominatorTree(graph.reversed(), exit_node)
