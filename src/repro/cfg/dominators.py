"""Dominator and postdominator trees.

Definitions 1-3 of the paper:

* ``A`` *dominates* ``B`` iff ``A`` appears on every path from ENTRY to ``B``;
* ``B`` *postdominates* ``A`` iff ``B`` appears on every path from ``A`` to
  EXIT;
* ``A`` and ``B`` are *equivalent* iff ``A`` dominates ``B`` and ``B``
  postdominates ``A`` (the precondition for *useful* code motion,
  Definition 4).

The implementation is the Cooper-Harvey-Kennedy iterative algorithm ("A
Simple, Fast Dominance Algorithm"), which runs in near-linear time on
reducible CFGs and is correct on arbitrary graphs.  Postdominators are
dominators of the reverse graph rooted at EXIT.

CHK is designed for exactly the dense form used here: nodes are interned
to their reverse-postorder index once, predecessor lists become flat int
rows, and the idom/depth relations are int lists indexed by RPO position
-- the two-finger ``intersect`` walk then compares machine ints instead
of hashing node objects.  The
seed dict-based implementation is preserved verbatim as
:class:`repro.cfg.reference.DominatorTreeReference` (the equivalence
oracle and measured baseline).
"""

from __future__ import annotations

from typing import Hashable

from .digraph import Digraph

Node = Hashable


class DominatorTree:
    """Immediate-dominator tree of the subgraph reachable from ``root``."""

    __slots__ = ("root", "_rpo", "_index", "_idom_arr", "_depth_arr",
                 "_children_idx")

    def __init__(self, graph: Digraph, root: Node):
        self.root = root
        rpo = self._rpo = graph.rpo(root)
        index = self._index = {node: i for i, node in enumerate(rpo)}
        n = len(rpo)

        # reachable predecessors by RPO index (zero-copy adjacency view;
        # plain int lists index faster than array('i') in the CHK loop)
        _, pred_map = graph.adjacency()
        get = index.get
        pred_rows = [
            [i for p in pred_map[node] if (i := get(p)) is not None]
            for node in rpo
        ]

        idom = self._idom_arr = [-1] * n
        if n:
            idom[0] = 0
        changed = n > 1
        while changed:
            changed = False
            for v in range(1, n):
                new_idom = -1
                for p in pred_rows[v]:
                    if idom[p] < 0:
                        continue  # predecessor not processed yet
                    if new_idom < 0:
                        new_idom = p
                    elif p != new_idom:
                        # two-finger intersect on RPO indices
                        a, b = p, new_idom
                        while a != b:
                            while a > b:
                                a = idom[a]
                            while b > a:
                                b = idom[b]
                        new_idom = a
                if new_idom >= 0 and idom[v] != new_idom:
                    idom[v] = new_idom
                    changed = True

        # the idom of a node always precedes it in RPO, so depth fills in
        # one forward pass
        depth = self._depth_arr = [0] * n
        for v in range(1, n):
            depth[v] = depth[idom[v]] + 1
        self._children_idx: list[list[int]] | None = None

    # -- queries ----------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        """All nodes reachable from the root, in reverse postorder."""
        return list(self._rpo)

    def idom(self, node: Node) -> Node | None:
        """Immediate dominator (``None`` for the root)."""
        if node == self.root:
            return None
        return self._rpo[self._idom_arr[self._index[node]]]

    def _children_rows(self) -> list[list[int]]:
        rows = self._children_idx
        if rows is None:
            rows = self._children_idx = [[] for _ in self._rpo]
            idom = self._idom_arr
            for v in range(1, len(self._rpo)):
                rows[idom[v]].append(v)
        return rows

    def children(self, node: Node) -> list[Node]:
        rpo = self._rpo
        return [rpo[c] for c in self._children_rows()[self._index[node]]]

    def depth(self, node: Node) -> int:
        return self._depth_arr[self._index[node]]

    def dominates(self, a: Node, b: Node) -> bool:
        """Does ``a`` dominate ``b``?  (Reflexive: a node dominates itself.)"""
        index = self._index
        ia = index.get(a)
        ib = index.get(b)
        if ia is None or ib is None:
            return False
        depth = self._depth_arr
        idom = self._idom_arr
        da = depth[ia]
        while depth[ib] > da:
            ib = idom[ib]
        return ia == ib

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, node: Node) -> list[Node]:
        """All dominators of ``node``, from the node up to the root."""
        rpo = self._rpo
        idom = self._idom_arr
        v = self._index[node]
        out = [rpo[v]]
        while v != 0:
            v = idom[v]
            out.append(rpo[v])
        return out


#: Implementation selected by the constructors below; the reference
#: context managers patch this to the seed class.
_IMPL = DominatorTree


def dominator_tree(graph: Digraph, entry: Node) -> DominatorTree:
    """Dominator tree of ``graph`` rooted at ``entry``."""
    return _IMPL(graph, entry)


def postdominator_tree(graph: Digraph, exit_node: Node) -> DominatorTree:
    """Postdominator tree: dominators of the reversed graph from EXIT.

    ``tree.dominates(b, a)`` then answers "``b`` postdominates ``a``".
    """
    return _IMPL(graph.reversed(), exit_node)
