"""The control flow graph of a function, with virtual ENTRY and EXIT nodes.

Following Section 4.1 of the paper, the CFG is augmented with unique ENTRY
and EXIT nodes: ENTRY has an edge to the single entry block, and every block
from which control can leave the function (or the region) has an edge to
EXIT.  Nodes are block *labels*; the virtual nodes use reserved names.
"""

from __future__ import annotations

from ..ir.function import Function
from .digraph import Digraph

#: Reserved virtual node names (never legal block labels -- labels cannot
#: contain spaces).
ENTRY = "<entry>"
EXIT = "<exit>"


class ControlFlowGraph:
    """A function's CFG over block labels, plus ENTRY/EXIT."""

    def __init__(self, func: Function):
        self.func = func
        self.graph = Digraph()
        self.graph.add_node(ENTRY)
        self.graph.add_node(EXIT)
        for block in func.blocks:
            self.graph.add_node(block.label)
        self.graph.add_edge(ENTRY, func.entry.label)
        for block in func.blocks:
            for succ in func.successors(block):
                self.graph.add_edge(block.label, succ.label)
            term = block.terminator
            if term is not None and term.opcode.mnemonic == "RET":
                self.graph.add_edge(block.label, EXIT)
            elif func.falls_off_end(block):
                self.graph.add_edge(block.label, EXIT)

    # -- delegation ---------------------------------------------------------

    @property
    def entry(self) -> str:
        return ENTRY

    @property
    def exit(self) -> str:
        return EXIT

    def block_labels(self) -> list[str]:
        return [b.label for b in self.func.blocks]

    def succs(self, label: str) -> list[str]:
        return self.graph.succs(label)

    def preds(self, label: str) -> list[str]:
        return self.graph.preds(label)

    def reachable_blocks(self) -> set[str]:
        reached = self.graph.reachable_from(ENTRY)
        reached.discard(ENTRY)
        reached.discard(EXIT)
        return reached

    def __repr__(self) -> str:
        return f"<ControlFlowGraph of {self.func.name}: {self.graph!r}>"
