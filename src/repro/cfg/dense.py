"""A CSR (compressed-sparse-row) snapshot of a function CFG.

The dense dataflow solvers (:mod:`repro.dataflow.engine`) and the
use/def-mask cache (:class:`repro.dataflow.cache.AnalysisCache`) work on
int block indices: every node of the label-keyed
:class:`repro.cfg.graph.ControlFlowGraph` is interned once, successor and
predecessor lists are flattened into shared CSR index rows, and each
analysis addresses blocks by index for the rest of the function's
pipeline run.  The snapshot is immutable; the owning ``AnalysisCache``
drops it when the block structure changes (its existing two-tier
invalidation contract).
"""

from __future__ import annotations

from ..ir.basic_block import BasicBlock
from .graph import ControlFlowGraph


class DenseCFG:
    """Int-indexed CSR view of a :class:`ControlFlowGraph`.

    Node order is the graph's deterministic insertion order, so index 0 is
    always ENTRY and index 1 always EXIT (see ``ControlFlowGraph``), with
    the function's blocks following in program order.
    """

    __slots__ = ("cfg", "nodes", "index", "blocks",
                 "succ_off", "succ_idx", "pred_off", "pred_idx")

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        succ_map, pred_map = cfg.graph.adjacency()
        nodes = self.nodes = list(succ_map)
        index = self.index = {label: i for i, label in enumerate(nodes)}

        # CSR rows as plain lists: built with one extend per node and
        # indexed without the per-element boxing of ``array('i')``
        succ_idx: list[int] = []
        succ_off = [0]
        pred_idx: list[int] = []
        pred_off = [0]
        for label in nodes:
            succ_idx.extend([index[s] for s in succ_map[label]])
            succ_off.append(len(succ_idx))
            pred_idx.extend([index[p] for p in pred_map[label]])
            pred_off.append(len(pred_idx))
        self.succ_off = succ_off
        self.succ_idx = succ_idx
        self.pred_off = pred_off
        self.pred_idx = pred_idx

        #: the BasicBlock at each index (None for the virtual ENTRY/EXIT)
        by_label = {b.label: b for b in cfg.func.blocks}
        self.blocks: list[BasicBlock | None] = [
            by_label.get(label) for label in nodes
        ]

    def __len__(self) -> int:
        return len(self.nodes)

    def succs(self, i: int) -> list[int]:
        return self.succ_idx[self.succ_off[i]:self.succ_off[i + 1]]

    def preds(self, i: int) -> list[int]:
        return self.pred_idx[self.pred_off[i]:self.pred_off[i + 1]]

    def block_indices(self) -> list[int]:
        """Indices of the real blocks, in program order."""
        index = self.index
        return [index[b.label] for b in self.cfg.func.blocks]
